//! Advection operators on the Arakawa-C grid.
//!
//! * Scalars (theta', water species, TKE) use first-order upwind fluxes —
//!   positive-definite and monotone, which the water species require. SCALE
//!   uses a higher-order scheme with FCT; the substitution is documented in
//!   DESIGN.md and costs some sharpness, not structure.
//! * Momentum uses second-order centered differences in advective form,
//!   stabilized by the Smagorinsky mixing and hyperdiffusion.

use bda_grid::{Field3, GridSpec};
use bda_num::Real;

/// Precomputed grid metrics at model precision.
#[derive(Clone, Debug)]
pub struct Metrics<T> {
    pub inv_dx: T,
    /// Layer thickness at centers, length nz.
    pub dz: Vec<T>,
    /// 1 / dz, length nz.
    pub inv_dz: Vec<T>,
    /// Center-to-center spacing across face k (`z_c[k] - z_c[k-1]`),
    /// length nz + 1 with sentinel values at 0 and nz.
    pub dzc: Vec<T>,
    pub nz: usize,
}

impl<T: Real> Metrics<T> {
    pub fn new(grid: &GridSpec) -> Self {
        let nz = grid.nz();
        let vc = &grid.vertical;
        let dz: Vec<T> = (0..nz).map(|k| T::of(vc.dz(k))).collect();
        let inv_dz: Vec<T> = dz.iter().map(|&d| T::one() / d).collect();
        let mut dzc = Vec::with_capacity(nz + 1);
        dzc.push(T::of(vc.z_center[0] * 2.0)); // below-surface sentinel
        for k in 1..nz {
            dzc.push(T::of(vc.z_center[k] - vc.z_center[k - 1]));
        }
        dzc.push(T::of(vc.dz(nz - 1))); // above-top sentinel
        Self {
            inv_dx: T::one() / T::of(grid.dx),
            dz,
            inv_dz,
            dzc,
            nz,
        }
    }
}

/// `w` interpolated to the center of cell `k` (w is stored on bottom faces;
/// the face above the top cell is the rigid lid, w = 0).
#[inline]
pub fn w_at_center<T: Real>(w: &Field3<T>, i: isize, j: isize, k: usize, nz: usize) -> T {
    let below = w.at(i, j, k);
    let above = if k + 1 < nz {
        w.at(i, j, k + 1)
    } else {
        T::zero()
    };
    (below + above) * T::half()
}

/// First-order upwind flux-form advection tendency for a cell-centered
/// scalar. Vertical fluxes are density-weighted with the base-state profile
/// so the scheme conserves `rho0 * q` columns under sedimentation-free flow.
///
/// The inner loop works on contiguous column slices (the `Field3` layout is
/// k-fastest), so the per-cell cost is pure arithmetic — no flat-index
/// recomputation per access. Arithmetic order per cell is unchanged, so the
/// results are bit-identical to the naive indexed form.
#[allow(clippy::too_many_arguments)]
// Every `k±1` access is guarded by the surrounding `k == 0` / `k + 1 < nz`
// branch; column slices all have length nz by the Field3 layout.
// bda-check: allow(panic_path)
pub fn scalar_advection_upwind<T: Real>(
    q: &Field3<T>,
    u: &Field3<T>,
    v: &Field3<T>,
    w: &Field3<T>,
    rho0: &[T],
    rho0_face: &[T],
    m: &Metrics<T>,
    tend: &mut Field3<T>,
) {
    let (nx, ny, nz, _) = q.shape();
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            let qc = q.column(i, j);
            let qxm = q.column(i - 1, j);
            let qxp = q.column(i + 1, j);
            let qym = q.column(i, j - 1);
            let qyp = q.column(i, j + 1);
            let uc = u.column(i, j);
            let uxp = u.column(i + 1, j);
            let vc = v.column(i, j);
            let vyp = v.column(i, j + 1);
            let wc = w.column(i, j);
            let tc = tend.column_mut(i, j);
            for k in 0..nz {
                // Horizontal upwind fluxes at the four faces of cell (i,j).
                let uw = uc[k];
                let ue = uxp[k];
                let vs = vc[k];
                let vn = vyp[k];
                let f_w = uw * upwind(uw, qxm[k], qc[k]);
                let f_e = ue * upwind(ue, qc[k], qxp[k]);
                let f_s = vs * upwind(vs, qym[k], qc[k]);
                let f_n = vn * upwind(vn, qc[k], qyp[k]);

                // Vertical upwind fluxes at the bottom and top faces.
                let wb = wc[k];
                let f_b = if k == 0 {
                    T::zero()
                } else {
                    rho0_face[k] * wb * upwind(wb, qc[k - 1], qc[k])
                };
                let f_t = if k + 1 < nz {
                    let wt = wc[k + 1];
                    rho0_face[k + 1] * wt * upwind(wt, qc[k], qc[k + 1])
                } else {
                    T::zero()
                };

                let horiz = (f_e - f_w + f_n - f_s) * m.inv_dx;
                let vert = (f_t - f_b) * m.inv_dz[k] / rho0[k];
                tc[k] = -(horiz + vert);
            }
        }
    }
}

#[inline]
fn upwind<T: Real>(vel: T, q_minus: T, q_plus: T) -> T {
    if vel >= T::zero() {
        q_minus
    } else {
        q_plus
    }
}

/// `w` interpolated to the center of cell `k`, column-slice form (see
/// [`w_at_center`]).
#[inline]
// `k + 1` is read only under the explicit `k + 1 < nz` guard.
// bda-check: allow(panic_path)
pub fn w_center_col<T: Real>(w: &[T], k: usize, nz: usize) -> T {
    let below = w[k];
    let above = if k + 1 < nz { w[k + 1] } else { T::zero() };
    (below + above) * T::half()
}

/// Second-order centered advective-form tendencies for the three momentum
/// components, written into the provided buffers. Column-sliced like
/// [`scalar_advection_upwind`]; bit-identical to the indexed form.
#[allow(clippy::too_many_arguments)]
// The z-face loop runs `1..nz` with `k+1` reads behind `k + 1 < nz` and
// `k-1` safe for k >= 1; column slices have length nz.
// bda-check: allow(panic_path)
pub fn momentum_advection<T: Real>(
    u: &Field3<T>,
    v: &Field3<T>,
    w: &Field3<T>,
    m: &Metrics<T>,
    tu: &mut Field3<T>,
    tv: &mut Field3<T>,
    tw: &mut Field3<T>,
) {
    let (nx, ny, nz, _) = u.shape();
    let half = T::half();
    let quarter = T::of(0.25);

    for i in 0..nx as isize {
        for j in 0..ny as isize {
            let ucl = u.column(i, j);
            let uxp = u.column(i + 1, j);
            let uxm = u.column(i - 1, j);
            let uyp = u.column(i, j + 1);
            let uym = u.column(i, j - 1);
            let uxp_ym = u.column(i + 1, j - 1);
            let vcl = v.column(i, j);
            let vxp = v.column(i + 1, j);
            let vxm = v.column(i - 1, j);
            let vyp = v.column(i, j + 1);
            let vym = v.column(i, j - 1);
            let vxm_yp = v.column(i - 1, j + 1);
            let wcl = w.column(i, j);
            let wxp = w.column(i + 1, j);
            let wxm = w.column(i - 1, j);
            let wyp = w.column(i, j + 1);
            let wym = w.column(i, j - 1);
            let tuc = tu.column_mut(i, j);
            for k in 0..nz {
                // ---- u tendency at the x-face (i,j,k) ----
                let uc = ucl[k];
                let dudx = (uxp[k] - uxm[k]) * half * m.inv_dx;
                let vf = (vxm[k] + vxm_yp[k] + vcl[k] + vyp[k]) * quarter;
                let dudy = (uyp[k] - uym[k]) * half * m.inv_dx;
                let wf = (w_center_col(wxm, k, nz) + w_center_col(wcl, k, nz)) * half;
                let dudz = vertical_gradient(ucl, k, nz, m);
                tuc[k] = -(uc * dudx + vf * dudy + wf * dudz);
            }
            let tvc = tv.column_mut(i, j);
            for k in 0..nz {
                // ---- v tendency at the y-face (i,j,k) ----
                let vc = vcl[k];
                let dvdy = (vyp[k] - vym[k]) * half * m.inv_dx;
                let uf = (uym[k] + uxp_ym[k] + ucl[k] + uxp[k]) * quarter;
                let dvdx = (vxp[k] - vxm[k]) * half * m.inv_dx;
                let wf = (w_center_col(wym, k, nz) + w_center_col(wcl, k, nz)) * half;
                let dvdz = vertical_gradient(vcl, k, nz, m);
                tvc[k] = -(uf * dvdx + vc * dvdy + wf * dvdz);
            }
            let twc = tw.column_mut(i, j);
            twc[0] = T::zero(); // surface face is rigid
            for k in 1..nz {
                // ---- w tendency at the z-face (i,j,k) ----
                let wc = wcl[k];
                let dwdx = (wxp[k] - wxm[k]) * half * m.inv_dx;
                let dwdy = (wyp[k] - wym[k]) * half * m.inv_dx;
                let uf = (ucl[k - 1] + uxp[k - 1] + ucl[k] + uxp[k]) * quarter;
                let vf = (vcl[k - 1] + vyp[k - 1] + vcl[k] + vyp[k]) * quarter;
                // dw/dz at the face uses the two adjacent faces.
                let w_above = if k + 1 < nz { wcl[k + 1] } else { T::zero() };
                let w_below = if k >= 2 { wcl[k - 1] } else { T::zero() };
                let dwdz = (w_above - w_below) / (m.dz[k] + m.dz[k - 1]);
                twc[k] = -(uf * dwdx + vf * dwdy + wc * dwdz);
            }
        }
    }
}

/// Vertical gradient of a cell-centered column at level k (one-sided at the
/// boundaries).
#[inline]
// The three branches partition `0..nz`, so each `k±1` access is in bounds
// for its branch (`f` and `dzc` both have length nz).
// bda-check: allow(panic_path)
pub fn vertical_gradient<T: Real>(f: &[T], k: usize, nz: usize, m: &Metrics<T>) -> T {
    if k == 0 {
        (f[1] - f[0]) / m.dzc[1]
    } else if k + 1 >= nz {
        (f[k] - f[k - 1]) / m.dzc[k]
    } else {
        (f[k + 1] - f[k - 1]) / (m.dzc[k] + m.dzc[k + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_grid::halo::fill_periodic;
    use bda_grid::VerticalCoord;

    fn grid(nx: usize, nz: usize) -> GridSpec {
        GridSpec::new(nx, nx, 100.0, VerticalCoord::uniform(nz, 1000.0))
    }

    #[test]
    fn uniform_scalar_in_uniform_flow_has_zero_tendency() {
        let g = grid(8, 4);
        let m = Metrics::<f64>::new(&g);
        let mut q = Field3::constant(8, 8, 4, 2, 3.0);
        let mut u = Field3::constant(8, 8, 4, 2, 5.0);
        let mut v = Field3::constant(8, 8, 4, 2, -2.0);
        let w = Field3::zeros(8, 8, 4, 2);
        fill_periodic(&mut q);
        fill_periodic(&mut u);
        fill_periodic(&mut v);
        let rho0 = vec![1.0; 4];
        let rho0f = vec![1.0; 5];
        let mut tend = Field3::zeros(8, 8, 4, 2);
        scalar_advection_upwind(&q, &u, &v, &w, &rho0, &rho0f, &m, &mut tend);
        assert!(tend.interior_max_abs() < 1e-12);
    }

    #[test]
    fn upwind_translates_a_spike_downstream() {
        let g = grid(8, 2);
        let m = Metrics::<f64>::new(&g);
        let mut q = Field3::zeros(8, 8, 2, 2);
        q.set(3, 4, 0, 1.0);
        fill_periodic(&mut q);
        let mut u = Field3::constant(8, 8, 2, 2, 1.0); // flow in +x
        fill_periodic(&mut u);
        let v = Field3::zeros(8, 8, 2, 2);
        let w = Field3::zeros(8, 8, 2, 2);
        let rho0 = vec![1.0; 2];
        let rho0f = vec![1.0; 3];
        let mut tend = Field3::zeros(8, 8, 2, 2);
        scalar_advection_upwind(&q, &u, &v, &w, &rho0, &rho0f, &m, &mut tend);
        // The spike cell loses mass, the cell to its east gains it.
        assert!(tend.at(3, 4, 0) < 0.0);
        assert!(tend.at(4, 4, 0) > 0.0);
        // Upstream cell unaffected by upwinding.
        assert_eq!(tend.at(2, 4, 0), 0.0);
        // Conservation: tendencies sum to ~0 over the periodic domain.
        let mut sum = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                sum += tend.at(i, j, 0);
            }
        }
        assert!(sum.abs() < 1e-12);
    }

    #[test]
    fn upwind_positivity_single_step() {
        // A forward-Euler step with CFL < 1 must keep q non-negative.
        let g = grid(8, 2);
        let m = Metrics::<f64>::new(&g);
        let mut q = Field3::zeros(8, 8, 2, 2);
        q.set(3, 3, 0, 1.0);
        q.set(4, 3, 0, 0.2);
        fill_periodic(&mut q);
        let mut u = Field3::constant(8, 8, 2, 2, 1.0);
        fill_periodic(&mut u);
        let v = Field3::zeros(8, 8, 2, 2);
        let w = Field3::zeros(8, 8, 2, 2);
        let rho0 = vec![1.0; 2];
        let rho0f = vec![1.0; 3];
        let mut tend = Field3::zeros(8, 8, 2, 2);
        scalar_advection_upwind(&q, &u, &v, &w, &rho0, &rho0f, &m, &mut tend);
        let dt = 50.0; // CFL = u dt / dx = 0.5
        for i in 0..8 {
            for j in 0..8 {
                let new = q.at(i, j, 0) + dt * tend.at(i, j, 0);
                assert!(new >= -1e-14, "negative q at ({i},{j}): {new}");
            }
        }
    }

    #[test]
    fn vertical_advection_conserves_column_mass() {
        let g = grid(4, 6);
        let m = Metrics::<f64>::new(&g);
        let mut q = Field3::zeros(4, 4, 6, 2);
        for k in 0..6 {
            q.set(1, 1, k, (k as f64 + 1.0) * 0.1);
        }
        fill_periodic(&mut q);
        let u = Field3::zeros(4, 4, 6, 2);
        let v = Field3::zeros(4, 4, 6, 2);
        let mut w = Field3::zeros(4, 4, 6, 2);
        for k in 1..6 {
            w.set(1, 1, k, 0.5);
        }
        let rho0 = vec![1.0; 6];
        let rho0f = vec![1.0; 7];
        let mut tend = Field3::zeros(4, 4, 6, 2);
        scalar_advection_upwind(&q, &u, &v, &w, &rho0, &rho0f, &m, &mut tend);
        // rho0 = 1, uniform dz: sum of dz*tend over the column must vanish
        // (rigid lid and surface -> zero boundary fluxes).
        let mut col_sum = 0.0;
        for k in 0..6 {
            col_sum += tend.at(1, 1, k) * (1000.0 / 6.0);
        }
        assert!(col_sum.abs() < 1e-12, "column mass change {col_sum}");
    }

    #[test]
    fn momentum_advection_zero_for_uniform_flow() {
        let g = grid(8, 4);
        let m = Metrics::<f64>::new(&g);
        let mut u = Field3::constant(8, 8, 4, 2, 3.0);
        let mut v = Field3::constant(8, 8, 4, 2, -1.0);
        let w = Field3::zeros(8, 8, 4, 2);
        fill_periodic(&mut u);
        fill_periodic(&mut v);
        let mut tu = Field3::zeros(8, 8, 4, 2);
        let mut tv = Field3::zeros(8, 8, 4, 2);
        let mut tw = Field3::zeros(8, 8, 4, 2);
        momentum_advection(&u, &v, &w, &m, &mut tu, &mut tv, &mut tw);
        assert!(tu.interior_max_abs() < 1e-12);
        assert!(tv.interior_max_abs() < 1e-12);
        assert!(tw.interior_max_abs() < 1e-12);
    }

    #[test]
    fn momentum_advection_of_linear_shear_by_uniform_flow() {
        // u = a * x (in index space), advecting flow U: du/dt = -U du/dx = -U*a/dx.
        let g = grid(8, 2);
        let m = Metrics::<f64>::new(&g);
        let a = 0.1;
        let mut u = Field3::from_fn(8, 8, 2, 2, |i, _, _| 10.0 + a * i as f64);
        // Fill halos linearly by hand to preserve the gradient.
        for j in -2..10 {
            for k in 0..2 {
                for i in [-2isize, -1, 8, 9] {
                    u.set(i, j, k, 10.0 + a * i as f64);
                }
                for i in 0..8 {
                    u.set(i, j.max(-2), k, 10.0 + a * i as f64);
                }
            }
        }
        let v = Field3::zeros(8, 8, 2, 2);
        let w = Field3::zeros(8, 8, 2, 2);
        let mut tu = Field3::zeros(8, 8, 2, 2);
        let mut tv = Field3::zeros(8, 8, 2, 2);
        let mut tw = Field3::zeros(8, 8, 2, 2);
        momentum_advection(&u, &v, &w, &m, &mut tu, &mut tv, &mut tw);
        // At cell 4: u = 10.4, du/dx = a/dx = 0.001 -> tend = -10.4e-3.
        let expect = -(10.0 + a * 4.0) * a / 100.0;
        assert!((tu.at(4, 4, 0) - expect).abs() < 1e-9, "{}", tu.at(4, 4, 0));
    }

    #[test]
    fn surface_w_face_tendency_is_zero() {
        let g = grid(6, 4);
        let m = Metrics::<f64>::new(&g);
        let mut u = Field3::constant(6, 6, 4, 2, 2.0);
        fill_periodic(&mut u);
        let v = Field3::zeros(6, 6, 4, 2);
        let mut w = Field3::from_fn(6, 6, 4, 2, |_, _, k| if k > 0 { 0.3 } else { 0.0 });
        fill_periodic(&mut w);
        let mut tu = Field3::zeros(6, 6, 4, 2);
        let mut tv = Field3::zeros(6, 6, 4, 2);
        let mut tw = Field3::zeros(6, 6, 4, 2);
        momentum_advection(&u, &v, &w, &m, &mut tu, &mut tv, &mut tw);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(tw.at(i, j, 0), 0.0);
            }
        }
    }

    #[test]
    fn metrics_match_grid() {
        let g = grid(4, 5);
        let m = Metrics::<f64>::new(&g);
        assert_eq!(m.nz, 5);
        assert!((m.inv_dx - 0.01).abs() < 1e-15);
        assert!((m.dz[0] - 200.0).abs() < 1e-9);
        assert!((m.dzc[2] - 200.0).abs() < 1e-9);
        assert_eq!(m.dzc.len(), 6);
    }
}
