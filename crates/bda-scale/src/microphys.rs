//! Single-moment 6-category cloud microphysics (Tomita 2008 class).
//!
//! Categories: vapor (qv), cloud water (qc), rain (qr), cloud ice (qi),
//! snow (qs), graupel (qg). Processes:
//!
//! * mixed-phase saturation adjustment with latent heating,
//! * autoconversion (qc→qr, qi→qs), accretion (rain/snow/graupel collecting
//!   cloud species), riming (qs + qc → qg),
//! * melting (qs, qg → qr above 0°C), freezing (qr → qg at strong
//!   supercooling), rain evaporation in subsaturated air,
//! * sedimentation with species-dependent terminal velocities and automatic
//!   sub-stepping to respect the fall CFL.
//!
//! Rates follow the Kessler/Lin-type bulk formulations the Tomita scheme is
//! built from; coefficients are the standard bulk values. The scheme operates
//! column-wise on contiguous slices (the layout [`bda_grid::Field3`]
//! guarantees), exactly like SCALE's physics drivers.

use crate::base::BaseState;
use crate::constants::*;
use bda_num::Real;

/// Tunable process coefficients (defaults are the standard bulk values).
#[derive(Clone, Debug)]
pub struct MicrophysParams {
    /// Cloud-water autoconversion rate, 1/s.
    pub auto_qc: f64,
    /// Cloud-water autoconversion threshold, kg/kg.
    pub qc_crit: f64,
    /// Ice autoconversion rate, 1/s.
    pub auto_qi: f64,
    /// Ice autoconversion threshold, kg/kg.
    pub qi_crit: f64,
    /// Rain-accretes-cloud coefficient (Kessler 2.2).
    pub accr_rain: f64,
    /// Snow-accretes-ice/cloud coefficient.
    pub accr_snow: f64,
    /// Riming (snow + cloud water -> graupel) coefficient.
    pub rime: f64,
    /// Melting rate per kelvin above freezing, 1/(s K).
    pub melt: f64,
    /// Homogeneous freezing temperature, K.
    pub t_freeze_all: f64,
    /// Rain evaporation coefficient.
    pub evap: f64,
}

impl Default for MicrophysParams {
    fn default() -> Self {
        Self {
            auto_qc: 1.0e-3,
            qc_crit: 0.5e-3,
            auto_qi: 1.0e-3,
            qi_crit: 0.3e-3,
            accr_rain: 2.2,
            accr_snow: 0.8,
            rime: 3.0,
            melt: 2.5e-3,
            t_freeze_all: T0 - 40.0,
            evap: 3.0e-4,
        }
    }
}

/// Inputs/outputs of one column update: slices over the vertical dimension.
pub struct ColumnView<'a, T> {
    pub theta: &'a mut [T],
    pub pi: &'a [T],
    pub qv: &'a mut [T],
    pub qc: &'a mut [T],
    pub qr: &'a mut [T],
    pub qi: &'a mut [T],
    pub qs: &'a mut [T],
    pub qg: &'a mut [T],
}

/// Result of one column microphysics update.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ColumnResult {
    /// Surface rain rate, mm/h (liquid-equivalent, includes melted species).
    pub rain_rate_mmh: f64,
}

/// Liquid fraction of new condensate as a function of temperature: all
/// liquid above freezing, all ice below -15°C, linear ramp between.
#[inline]
fn liquid_fraction(t: f64) -> f64 {
    ((t - (T0 - 15.0)) / 15.0).clamp(0.0, 1.0)
}

/// Terminal velocity (m/s) for rain as a function of rain water content
/// rho*qr (kg/m^3): a bulk power law giving ~5 m/s at 0.1 g/m^3 and ~7 m/s
/// at 1 g/m^3, capped at 10.
#[inline]
fn v_rain(rho_q: f64) -> f64 {
    if rho_q <= 1e-9 {
        return 0.0;
    }
    (16.0 * rho_q.powf(0.125)).min(10.0)
}

#[inline]
fn v_snow(rho_q: f64) -> f64 {
    if rho_q <= 1e-9 {
        return 0.0;
    }
    (4.0 * rho_q.powf(0.125)).min(2.5)
}

#[inline]
fn v_graupel(rho_q: f64) -> f64 {
    if rho_q <= 1e-9 {
        return 0.0;
    }
    (22.0 * rho_q.powf(0.125)).min(12.0)
}

/// Run the full microphysics update on one column.
///
/// `dz` are the layer thicknesses; `flux` is a caller-owned scratch buffer of
/// length `nz` reused across columns so sedimentation never allocates.
/// Returns the surface precipitation rate.
pub fn column_microphysics<T: Real>(
    col: &mut ColumnView<'_, T>,
    base: &BaseState<T>,
    params: &MicrophysParams,
    dz: &[T],
    dt: f64,
    flux: &mut [f64],
) -> ColumnResult {
    let nz = col.theta.len();
    debug_assert_eq!(dz.len(), nz);

    // --- grid-point processes (saturation adjustment + conversions) ---
    for k in 0..nz {
        let pi_tot = (base.pi0[k] + col.pi[k]).f64().max(1e-3);
        let p = P00 * pi_tot.powf(1.0 / KAPPA);
        let mut th = (base.theta0[k] + col.theta[k]).f64();
        let mut t = th * pi_tot;
        let mut qv = col.qv[k].f64().max(0.0);
        let mut qc = col.qc[k].f64().max(0.0);
        let mut qr = col.qr[k].f64().max(0.0);
        let mut qi = col.qi[k].f64().max(0.0);
        let mut qs = col.qs[k].f64().max(0.0);
        let mut qg = col.qg[k].f64().max(0.0);

        // -- saturation adjustment (two fixed-point iterations) --
        for _ in 0..2 {
            let fl = liquid_fraction(t);
            let qsat = fl * q_sat_liquid(t, p) + (1.0 - fl) * q_sat_ice(t, p);
            let lheat = fl * LV + (1.0 - fl) * LS;
            // Effective latent-heating denominator (linearized Clausius-
            // Clapeyron around t).
            let dqs_dt = qsat * lheat / (RV * t * t);
            let denom = 1.0 + lheat / CP * dqs_dt;
            if qv > qsat {
                // Condensation.
                let dq = (qv - qsat) / denom;
                qv -= dq;
                qc += dq * fl;
                qi += dq * (1.0 - fl);
                t += lheat / CP * dq;
            } else if qc + qi > 0.0 && qv < qsat {
                // Evaporation/sublimation of cloud condensate.
                let deficit = (qsat - qv) / denom;
                let evap_c = deficit.min(qc);
                qc -= evap_c;
                qv += evap_c;
                t -= LV / CP * evap_c;
                let deficit_i = (deficit - evap_c).max(0.0).min(qi);
                qi -= deficit_i;
                qv += deficit_i;
                t -= LS / CP * deficit_i;
            } else {
                // Neither branch changes (t, qv, qc, qi): the second pass
                // would recompute the same saturation point and do nothing.
                break;
            }
        }

        // -- warm-rain processes --
        if qc > 0.0 {
            let auto = params.auto_qc * (qc - params.qc_crit).max(0.0) * dt;
            let accr = params.accr_rain * qc * qr.powf(0.875) * dt;
            let to_rain = (auto + accr).min(qc);
            qc -= to_rain;
            qr += to_rain;
        }

        // -- ice-phase processes --
        if t < T0 {
            if qi > 0.0 {
                let auto_i = params.auto_qi * (qi - params.qi_crit).max(0.0) * dt;
                let accr_is = params.accr_snow * qi * qs.powf(0.875) * dt;
                let to_snow = (auto_i + accr_is).min(qi);
                qi -= to_snow;
                qs += to_snow;
            }

            // Riming: snow collecting supercooled cloud water makes graupel,
            // releasing the latent heat of fusion.
            let rimed = (params.rime * qs * qc * dt).min(qc);
            qc -= rimed;
            qg += rimed;
            t += LF / CP * rimed;

            // Strongly supercooled rain freezes to graupel.
            if t < params.t_freeze_all {
                qg += qr;
                t += LF / CP * qr;
                qr = 0.0;
            } else {
                // Gradual probabilistic freezing, stronger when colder.
                let frac = (0.05 * (T0 - t) / 40.0 * dt).min(1.0);
                let dq = qr * frac;
                qr -= dq;
                qg += dq;
                t += LF / CP * dq;
            }
        } else {
            // -- melting above freezing --
            let melt_s = (params.melt * (t - T0) * qs * dt * 50.0).min(qs);
            let melt_g = (params.melt * (t - T0) * qg * dt * 50.0).min(qg);
            qs -= melt_s;
            qg -= melt_g;
            qr += melt_s + melt_g;
            t -= LF / CP * (melt_s + melt_g);
            // Cloud ice melts instantly above freezing.
            qc += qi;
            t -= LF / CP * qi;
            qi = 0.0;
        }

        // -- rain evaporation in subsaturated air --
        if qr > 0.0 {
            let qsat_l = q_sat_liquid(t, p);
            if qv < qsat_l {
                let subsat = (qsat_l - qv) / qsat_l;
                let dq = (params.evap * subsat * qr.powf(0.65) * dt)
                    .min(qr)
                    .min(qsat_l - qv);
                qr -= dq;
                qv += dq;
                t -= LV / CP * dq;
            }
        }

        th = t / pi_tot;
        col.theta[k] = T::of(th) - base.theta0[k];
        col.qv[k] = T::of(qv.max(0.0));
        col.qc[k] = T::of(qc.max(0.0));
        col.qr[k] = T::of(qr.max(0.0));
        col.qi[k] = T::of(qi.max(0.0));
        col.qs[k] = T::of(qs.max(0.0));
        col.qg[k] = T::of(qg.max(0.0));
    }

    // --- sedimentation ---
    let mut surface_flux = 0.0; // kg m^-2 s^-1 of liquid-equivalent water
    surface_flux += sediment_species(col.qr, base, dz, dt, v_rain, flux);
    surface_flux += sediment_species(col.qs, base, dz, dt, v_snow, flux);
    surface_flux += sediment_species(col.qg, base, dz, dt, v_graupel, flux);

    ColumnResult {
        // kg m^-2 s^-1 == mm/s of water -> mm/h.
        rain_rate_mmh: surface_flux * 3600.0,
    }
}

/// Sediment one species down the column with upwind fluxes and CFL
/// sub-stepping; returns the surface mass flux (kg m^-2 s^-1). `flux` is a
/// caller-owned scratch slice of length `nz` (every entry is overwritten
/// before it is read, so stale contents are harmless).
// The single `flux[k + 1]` read is guarded by `k + 1 < nz` and `flux` is at
// least nz long per the debug_assert'ed contract.
// bda-check: allow(panic_path)
fn sediment_species<T: Real>(
    q: &mut [T],
    base: &BaseState<T>,
    dz: &[T],
    dt: f64,
    vt: impl Fn(f64) -> f64,
    flux: &mut [f64],
) -> f64 {
    let nz = q.len();
    debug_assert!(flux.len() >= nz);
    // Determine the needed sub-step count from the max fall CFL.
    let mut max_cfl = 0.0_f64;
    for k in 0..nz {
        let v = vt(base.rho0[k].f64() * q[k].f64().max(0.0));
        max_cfl = max_cfl.max(v * dt / dz[k].f64());
    }
    if max_cfl == 0.0 {
        // Every terminal velocity vanished: all fluxes are zero and the
        // update reduces to the same non-negativity clamp the flux form
        // applies (`+ 0.0` kept so signed zeros round-trip identically).
        for v in q.iter_mut() {
            *v = T::of((v.f64() + 0.0).max(0.0));
        }
        return 0.0;
    }
    let nsub = (max_cfl.ceil() as usize).max(1);
    let dts = dt / nsub as f64;

    let mut surface_accum = 0.0;
    for _ in 0..nsub {
        // Downward flux through the *bottom* face of each cell.
        for k in 0..nz {
            let rq = base.rho0[k].f64() * q[k].f64().max(0.0);
            flux[k] = vt(rq) * rq;
        }
        for k in 0..nz {
            let incoming = if k + 1 < nz { flux[k + 1] } else { 0.0 };
            let d = (incoming - flux[k]) * dts / (base.rho0[k].f64() * dz[k].f64());
            let newq = (q[k].f64() + d).max(0.0);
            q[k] = T::of(newq);
        }
        surface_accum += flux[0] * dts;
    }
    surface_accum / dt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;
    use bda_grid::VerticalCoord;

    fn setup(nz: usize) -> (BaseState<f64>, Vec<f64>) {
        let vc = VerticalCoord::stretched(nz, 16_400.0, 1.05);
        let base = BaseState::from_sounding(&Sounding::convective(), &vc, 340.0);
        let dz: Vec<f64> = (0..nz).map(|k| vc.dz(k)).collect();
        (base, dz)
    }

    /// (theta', pi', qv, qc, qr, qi, qs, qg) working columns.
    type Cols = (
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
    );

    fn zero_cols(nz: usize) -> Cols {
        (
            vec![0.0; nz],
            vec![0.0; nz],
            vec![0.0; nz],
            vec![0.0; nz],
            vec![0.0; nz],
            vec![0.0; nz],
            vec![0.0; nz],
            vec![0.0; nz],
        )
    }

    #[test]
    fn supersaturation_condenses_and_heats() {
        let (base, dz) = setup(20);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(20);
        // Strong supersaturation at low levels.
        for (k, v) in qv.iter_mut().enumerate().take(5) {
            *v = base.qv0[k] + 1.2e-2;
        }
        let qv_before = qv[2];
        let mut col = ColumnView {
            theta: &mut th,
            pi: &pi,
            qv: &mut qv,
            qc: &mut qc,
            qr: &mut qr,
            qi: &mut qi,
            qs: &mut qs,
            qg: &mut qg,
        };
        column_microphysics(
            &mut col,
            &base,
            &MicrophysParams::default(),
            &dz,
            1.0,
            &mut vec![0.0; dz.len()],
        );
        assert!(qv[2] < qv_before, "vapor not consumed");
        assert!(qc[2] > 0.0, "no cloud water formed");
        assert!(th[2] > 0.0, "no latent heating: theta' = {}", th[2]);
    }

    #[test]
    fn dry_column_stays_dry_and_unchanged() {
        let (base, dz) = setup(15);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(15);
        // qv = 0 everywhere: strongly subsaturated, nothing to do.
        let mut col = ColumnView {
            theta: &mut th,
            pi: &pi,
            qv: &mut qv,
            qc: &mut qc,
            qr: &mut qr,
            qi: &mut qi,
            qs: &mut qs,
            qg: &mut qg,
        };
        let r = column_microphysics(
            &mut col,
            &base,
            &MicrophysParams::default(),
            &dz,
            1.0,
            &mut vec![0.0; dz.len()],
        );
        assert_eq!(r.rain_rate_mmh, 0.0);
        assert!(th.iter().all(|&x| x.abs() < 1e-12));
        assert!(qc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn heavy_cloud_water_autoconverts_to_rain() {
        let (base, dz) = setup(20);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(20);
        qv.copy_from_slice(&base.qv0[..20]);
        qc[3] = 3e-3; // well above threshold
        let mut col = ColumnView {
            theta: &mut th,
            pi: &pi,
            qv: &mut qv,
            qc: &mut qc,
            qr: &mut qr,
            qi: &mut qi,
            qs: &mut qs,
            qg: &mut qg,
        };
        for _ in 0..120 {
            column_microphysics(
                &mut col,
                &base,
                &MicrophysParams::default(),
                &dz,
                1.0,
                &mut vec![0.0; dz.len()],
            );
        }
        assert!(col.qr.iter().sum::<f64>() > 0.0 || col.qc[3] < 3e-3);
    }

    #[test]
    fn rain_aloft_reaches_the_surface() {
        let (base, dz) = setup(20);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(20);
        // Keep air near saturation to limit evaporation.
        qv.copy_from_slice(&base.qv0[..20]);
        // 2 g/kg of rain in layers 4-8 (~1.5-3.5 km).
        for q in qr.iter_mut().take(9).skip(4) {
            *q = 2e-3;
        }
        let mut total_rain = 0.0;
        let mut col = ColumnView {
            theta: &mut th,
            pi: &pi,
            qv: &mut qv,
            qc: &mut qc,
            qr: &mut qr,
            qi: &mut qi,
            qs: &mut qs,
            qg: &mut qg,
        };
        for _ in 0..600 {
            let r = column_microphysics(
                &mut col,
                &base,
                &MicrophysParams::default(),
                &dz,
                1.0,
                &mut vec![0.0; dz.len()],
            );
            total_rain += r.rain_rate_mmh / 3600.0;
        }
        assert!(total_rain > 0.1, "accumulated rain = {total_rain} mm");
        // Rain content aloft depleted.
        assert!(col.qr[6] < 2e-3);
    }

    #[test]
    fn water_conservation_without_sedimentation_losses() {
        // Total water (qv + all condensate) integrated over rho dz changes
        // only by the surface precipitation flux.
        let (base, dz) = setup(20);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(20);
        for (k, v) in qv.iter_mut().enumerate() {
            *v = base.qv0[k] * 1.1; // slight supersaturation somewhere
        }
        qc[4] = 2e-3;
        qr[5] = 1e-3;
        let column_water =
            |qv: &[f64], qc: &[f64], qr: &[f64], qi: &[f64], qs: &[f64], qg: &[f64]| -> f64 {
                (0..20)
                    .map(|k| base.rho0[k] * dz[k] * (qv[k] + qc[k] + qr[k] + qi[k] + qs[k] + qg[k]))
                    .sum()
            };
        let before = column_water(&qv, &qc, &qr, &qi, &qs, &qg);
        let mut precip_total = 0.0;
        {
            let mut col = ColumnView {
                theta: &mut th,
                pi: &pi,
                qv: &mut qv,
                qc: &mut qc,
                qr: &mut qr,
                qi: &mut qi,
                qs: &mut qs,
                qg: &mut qg,
            };
            for _ in 0..60 {
                let r = column_microphysics(
                    &mut col,
                    &base,
                    &MicrophysParams::default(),
                    &dz,
                    1.0,
                    &mut vec![0.0; dz.len()],
                );
                precip_total += r.rain_rate_mmh / 3600.0; // mm == kg/m^2
            }
        }
        let after = column_water(&qv, &qc, &qr, &qi, &qs, &qg);
        let imbalance = (before - after - precip_total).abs();
        assert!(
            imbalance < 1e-4 * before,
            "water budget broken: before {before}, after {after}, precip {precip_total}"
        );
    }

    #[test]
    fn cold_levels_produce_ice_species() {
        let (base, dz) = setup(30);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(30);
        // Strong moisture injection at mid/upper levels (cold).
        for (k, v) in qv.iter_mut().enumerate().take(25).skip(15) {
            *v = base.qv0[k] + 3e-3;
        }
        let mut col = ColumnView {
            theta: &mut th,
            pi: &pi,
            qv: &mut qv,
            qc: &mut qc,
            qr: &mut qr,
            qi: &mut qi,
            qs: &mut qs,
            qg: &mut qg,
        };
        for _ in 0..30 {
            column_microphysics(
                &mut col,
                &base,
                &MicrophysParams::default(),
                &dz,
                1.0,
                &mut vec![0.0; dz.len()],
            );
        }
        let ice_total: f64 = (15..25).map(|k| col.qi[k] + col.qs[k]).sum();
        assert!(ice_total > 0.0, "no ice formed at cold levels");
    }

    #[test]
    fn all_species_remain_nonnegative_under_stress() {
        let (base, dz) = setup(25);
        let (mut th, pi, mut qv, mut qc, mut qr, mut qi, mut qs, mut qg) = zero_cols(25);
        for k in 0..25 {
            qv[k] = base.qv0[k] + 4e-3;
            qc[k] = 1e-3;
            qr[k] = 2e-3;
            qi[k] = 0.5e-3;
            qs[k] = 0.5e-3;
            qg[k] = 1e-3;
        }
        let mut col = ColumnView {
            theta: &mut th,
            pi: &pi,
            qv: &mut qv,
            qc: &mut qc,
            qr: &mut qr,
            qi: &mut qi,
            qs: &mut qs,
            qg: &mut qg,
        };
        for _ in 0..200 {
            column_microphysics(
                &mut col,
                &base,
                &MicrophysParams::default(),
                &dz,
                2.0,
                &mut vec![0.0; dz.len()],
            );
        }
        for k in 0..25 {
            for (name, v) in [
                ("qv", col.qv[k]),
                ("qc", col.qc[k]),
                ("qr", col.qr[k]),
                ("qi", col.qi[k]),
                ("qs", col.qs[k]),
                ("qg", col.qg[k]),
            ] {
                assert!(v >= 0.0 && v.is_finite(), "{name}[{k}] = {v}");
            }
        }
    }

    #[test]
    fn terminal_velocities_are_ordered_sensibly() {
        let rq = 1e-3; // 1 g/m^3
        assert!(v_graupel(rq) > v_rain(rq));
        assert!(v_rain(rq) > v_snow(rq));
        assert!(v_rain(rq) > 4.0 && v_rain(rq) < 10.0);
        assert!(v_snow(rq) < 2.6);
        assert_eq!(v_rain(0.0), 0.0);
    }

    #[test]
    fn sedimentation_substeps_respect_cfl() {
        // Huge dt must not go unstable thanks to sub-stepping.
        let (base, dz) = setup(15);
        let mut qr = vec![0.0_f64; 15];
        qr[10] = 5e-3;
        let mut scratch = vec![0.0; qr.len()];
        let flux = sediment_species(&mut qr, &base, &dz, 120.0, v_rain, &mut scratch);
        assert!(flux >= 0.0);
        for (k, &v) in qr.iter().enumerate() {
            assert!(v >= 0.0 && v.is_finite(), "qr[{k}] = {v}");
        }
    }

    #[test]
    fn liquid_fraction_ramp() {
        assert_eq!(liquid_fraction(T0 + 5.0), 1.0);
        assert_eq!(liquid_fraction(T0 - 20.0), 0.0);
        let mid = liquid_fraction(T0 - 7.5);
        assert!((mid - 0.5).abs() < 1e-12);
    }
}
