//! Prognostic model state.

use crate::base::BaseState;
use crate::constants::*;
use bda_grid::halo::HaloPolicy;
use bda_grid::{Field3, GridSpec};
use bda_num::{Real, SplitMix64};
use serde::{Deserialize, Serialize};

/// Halo width used by all model fields (2nd-order stencils + 4th-order
/// hyperdiffusion need two cells).
pub const HALO: usize = 2;

/// The prognostic variables of the SCALE analogue.
///
/// `Theta` and `Pi` are *perturbations* from the balanced base state; winds
/// and water species are full values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrognosticVar {
    U,
    V,
    W,
    Theta,
    Pi,
    Qv,
    Qc,
    Qr,
    Qi,
    Qs,
    Qg,
    Tke,
}

impl PrognosticVar {
    pub const ALL: [PrognosticVar; 12] = [
        PrognosticVar::U,
        PrognosticVar::V,
        PrognosticVar::W,
        PrognosticVar::Theta,
        PrognosticVar::Pi,
        PrognosticVar::Qv,
        PrognosticVar::Qc,
        PrognosticVar::Qr,
        PrognosticVar::Qi,
        PrognosticVar::Qs,
        PrognosticVar::Qg,
        PrognosticVar::Tke,
    ];

    /// Short name matching SCALE-LETKF conventions.
    pub fn name(self) -> &'static str {
        match self {
            PrognosticVar::U => "U",
            PrognosticVar::V => "V",
            PrognosticVar::W => "W",
            PrognosticVar::Theta => "T",
            PrognosticVar::Pi => "P",
            PrognosticVar::Qv => "QV",
            PrognosticVar::Qc => "QC",
            PrognosticVar::Qr => "QR",
            PrognosticVar::Qi => "QI",
            PrognosticVar::Qs => "QS",
            PrognosticVar::Qg => "QG",
            PrognosticVar::Tke => "TKE",
        }
    }

    /// Is this a (non-negative) water species?
    pub fn is_moisture(self) -> bool {
        matches!(
            self,
            PrognosticVar::Qv
                | PrognosticVar::Qc
                | PrognosticVar::Qr
                | PrognosticVar::Qi
                | PrognosticVar::Qs
                | PrognosticVar::Qg
        )
    }
}

/// The set of variables the LETKF analyzes (pressure and TKE are left to the
/// model, as in the SCALE-LETKF radar configuration).
pub const ANALYZED_VARS: [PrognosticVar; 10] = [
    PrognosticVar::U,
    PrognosticVar::V,
    PrognosticVar::W,
    PrognosticVar::Theta,
    PrognosticVar::Qv,
    PrognosticVar::Qc,
    PrognosticVar::Qr,
    PrognosticVar::Qi,
    PrognosticVar::Qs,
    PrognosticVar::Qg,
];

/// Full prognostic state of one ensemble member.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelState<T> {
    pub u: Field3<T>,
    pub v: Field3<T>,
    pub w: Field3<T>,
    /// Potential temperature perturbation from the base state.
    pub theta: Field3<T>,
    /// Exner pressure perturbation from the base state.
    pub pi: Field3<T>,
    pub qv: Field3<T>,
    pub qc: Field3<T>,
    pub qr: Field3<T>,
    pub qi: Field3<T>,
    pub qs: Field3<T>,
    pub qg: Field3<T>,
    pub tke: Field3<T>,
    /// Model time, seconds since the start of the run.
    pub time: f64,
}

impl<T: Real> ModelState<T> {
    /// Quiescent state (everything zero; winds from the base profile must be
    /// imposed by [`Self::init_from_base`]).
    pub fn zeros(grid: &GridSpec) -> Self {
        let f = || Field3::zeros(grid.nx, grid.ny, grid.nz(), HALO);
        Self {
            u: f(),
            v: f(),
            w: f(),
            theta: f(),
            pi: f(),
            qv: f(),
            qc: f(),
            qr: f(),
            qi: f(),
            qs: f(),
            qg: f(),
            tke: f(),
            time: 0.0,
        }
    }

    /// Initialize winds and moisture from the base-state profiles.
    pub fn init_from_base(grid: &GridSpec, base: &BaseState<T>) -> Self {
        let mut s = Self::zeros(grid);
        let nz = grid.nz();
        s.u.par_columns_mut(|_, _, col| col.copy_from_slice(&base.u0[..nz]));
        s.v.par_columns_mut(|_, _, col| col.copy_from_slice(&base.v0[..nz]));
        s.qv.par_columns_mut(|_, _, col| col.copy_from_slice(&base.qv0[..nz]));
        s.tke.par_columns_mut(|_, _, col| col.fill(T::of(0.01)));
        s
    }

    /// Borrow a field by variable tag.
    pub fn field(&self, var: PrognosticVar) -> &Field3<T> {
        match var {
            PrognosticVar::U => &self.u,
            PrognosticVar::V => &self.v,
            PrognosticVar::W => &self.w,
            PrognosticVar::Theta => &self.theta,
            PrognosticVar::Pi => &self.pi,
            PrognosticVar::Qv => &self.qv,
            PrognosticVar::Qc => &self.qc,
            PrognosticVar::Qr => &self.qr,
            PrognosticVar::Qi => &self.qi,
            PrognosticVar::Qs => &self.qs,
            PrognosticVar::Qg => &self.qg,
            PrognosticVar::Tke => &self.tke,
        }
    }

    /// Mutably borrow a field by variable tag.
    pub fn field_mut(&mut self, var: PrognosticVar) -> &mut Field3<T> {
        match var {
            PrognosticVar::U => &mut self.u,
            PrognosticVar::V => &mut self.v,
            PrognosticVar::W => &mut self.w,
            PrognosticVar::Theta => &mut self.theta,
            PrognosticVar::Pi => &mut self.pi,
            PrognosticVar::Qv => &mut self.qv,
            PrognosticVar::Qc => &mut self.qc,
            PrognosticVar::Qr => &mut self.qr,
            PrognosticVar::Qi => &mut self.qi,
            PrognosticVar::Qs => &mut self.qs,
            PrognosticVar::Qg => &mut self.qg,
            PrognosticVar::Tke => &mut self.tke,
        }
    }

    /// Fill all halos with the given policy.
    pub fn fill_halos(&mut self, policy: HaloPolicy) {
        for var in PrognosticVar::ALL {
            policy.fill(self.field_mut(var));
        }
    }

    /// Clamp all water species and TKE to be non-negative (positivity is an
    /// invariant the upwind advection preserves but the LETKF update can
    /// break; the paper's system does the same clamping after analysis).
    pub fn clamp_physical(&mut self) {
        for var in PrognosticVar::ALL {
            if var.is_moisture() || var == PrognosticVar::Tke {
                let f = self.field_mut(var);
                for v in f.raw_mut() {
                    *v = (*v).max(T::zero());
                }
            }
        }
    }

    /// Number of state elements per variable.
    pub fn cells(&self) -> usize {
        let (nx, ny, nz, _) = self.u.shape();
        nx * ny * nz
    }

    /// Flatten the given variables (interior only) into one state vector in
    /// variable-major order — the layout shared by the LETKF and the I/O
    /// layer.
    pub fn to_flat(&self, vars: &[PrognosticVar]) -> Vec<T> {
        let mut out = Vec::with_capacity(vars.len() * self.cells());
        for &var in vars {
            out.extend(self.field(var).interior_to_vec());
        }
        out
    }

    /// Scatter a flat state vector (layout of [`Self::to_flat`]) back.
    pub fn from_flat(&mut self, vars: &[PrognosticVar], flat: &[T]) {
        let n = self.cells();
        assert_eq!(flat.len(), vars.len() * n);
        for (vi, &var) in vars.iter().enumerate() {
            self.field_mut(var)
                .interior_from_vec(&flat[vi * n..(vi + 1) * n]);
        }
    }

    /// Total condensate mixing ratio at a cell (liquid + ice).
    pub fn q_condensate(&self, i: isize, j: isize, k: usize) -> T {
        self.qc.at(i, j, k)
            + self.qr.at(i, j, k)
            + self.qi.at(i, j, k)
            + self.qs.at(i, j, k)
            + self.qg.at(i, j, k)
    }

    /// Absolute temperature at a cell, from base + perturbation.
    pub fn temperature(&self, base: &BaseState<T>, i: isize, j: isize, k: usize) -> T {
        (base.theta0[k] + self.theta.at(i, j, k)) * (base.pi0[k] + self.pi.at(i, j, k))
    }

    /// Pressure at a cell, Pa.
    pub fn pressure(&self, base: &BaseState<T>, i: isize, j: isize, k: usize) -> T {
        let pi_total = (base.pi0[k] + self.pi.at(i, j, k)).max(T::of(1e-3));
        T::of(P00) * pi_total.powf(T::of(1.0 / KAPPA))
    }

    /// Insert a warm, moist bubble — the classic convection trigger used by
    /// the nature run and by ensemble perturbations.
    ///
    /// `amplitude` is the peak theta perturbation (K); the moisture anomaly
    /// scales with it at 0.4 g/kg per K.
    #[allow(clippy::too_many_arguments)]
    pub fn add_warm_bubble(
        &mut self,
        grid: &GridSpec,
        xc: f64,
        yc: f64,
        zc: f64,
        radius_h: f64,
        radius_v: f64,
        amplitude: f64,
    ) {
        let nz = grid.nz();
        for i in 0..grid.nx {
            for j in 0..grid.ny {
                let dx = (grid.x_center(i) - xc) / radius_h;
                let dy = (grid.y_center(j) - yc) / radius_h;
                for k in 0..nz {
                    let dz = (grid.vertical.z_center[k] - zc) / radius_v;
                    let r2 = dx * dx + dy * dy + dz * dz;
                    if r2 < 1.0 {
                        let shape = (std::f64::consts::FRAC_PI_2 * r2.sqrt()).cos().powi(2);
                        let dtheta = T::of(amplitude * shape);
                        self.theta.add_at(i as isize, j as isize, k, dtheta);
                        self.qv.add_at(
                            i as isize,
                            j as isize,
                            k,
                            T::of(amplitude * shape * 4.0e-4),
                        );
                    }
                }
            }
        }
    }

    /// Add smooth random perturbations to theta and low-level qv — the
    /// additive ensemble-spread generator (Fig. 3b: "additive ensemble
    /// perturbations"). Noise is smoothed with a 1-2-1 filter so it projects
    /// onto resolvable scales.
    pub fn perturb(&mut self, grid: &GridSpec, rng: &mut SplitMix64, theta_sd: f64, qv_sd: f64) {
        let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz());
        let mut noise_t = vec![0.0f64; nx * ny * nz];
        let mut noise_q = vec![0.0f64; nx * ny * nz];
        for v in &mut noise_t {
            *v = rng.gaussian(0.0, theta_sd);
        }
        for v in &mut noise_q {
            *v = rng.gaussian(0.0, qv_sd);
        }
        smooth121(&mut noise_t, nx, ny, nz);
        smooth121(&mut noise_q, nx, ny, nz);
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let idx = (i * ny + j) * nz + k;
                    self.theta
                        .add_at(i as isize, j as isize, k, T::of(noise_t[idx]));
                    // Moisture perturbations only below ~5 km where they
                    // matter for convection initiation.
                    if grid.vertical.z_center[k] < 5000.0 {
                        self.qv
                            .add_at(i as isize, j as isize, k, T::of(noise_q[idx]));
                    }
                }
            }
        }
        self.clamp_physical();
    }

    /// True if every prognostic field is finite — the model blow-up guard.
    pub fn all_finite(&self) -> bool {
        PrognosticVar::ALL
            .iter()
            .all(|&v| self.field(v).interior_all_finite())
    }

    /// Linear combination: `self = self * a + other * b` over all fields
    /// (used for ensemble-mean construction).
    pub fn blend(&mut self, a: T, other: &Self, b: T) {
        for var in PrognosticVar::ALL {
            let o = other.field(var).clone();
            let f = self.field_mut(var);
            f.scale(a);
            f.axpy(b, &o);
        }
    }
}

/// In-place 1-2-1 smoothing in i and j (applied independently per level).
fn smooth121(data: &mut [f64], nx: usize, ny: usize, nz: usize) {
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let orig = data.to_vec();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let im = if i == 0 { 0 } else { i - 1 };
                let ip = (i + 1).min(nx - 1);
                let jm = if j == 0 { 0 } else { j - 1 };
                let jp = (j + 1).min(ny - 1);
                data[idx(i, j, k)] = 0.25 * orig[idx(i, j, k)]
                    + 0.1875 * (orig[idx(im, j, k)] + orig[idx(ip, j, k)])
                    + 0.1875 * (orig[idx(i, jm, k)] + orig[idx(i, jp, k)]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;

    fn grid() -> GridSpec {
        GridSpec::reduced(8, 8, 6)
    }

    #[test]
    fn init_from_base_sets_winds_and_moisture() {
        let g = grid();
        let b = BaseState::<f64>::from_sounding(&Sounding::convective(), &g.vertical, 340.0);
        let s = ModelState::init_from_base(&g, &b);
        assert_eq!(s.u.at(3, 3, 0), b.u0[0]);
        assert_eq!(s.qv.at(0, 0, 2), b.qv0[2]);
        assert!(s.tke.at(0, 0, 0) > 0.0);
        assert_eq!(s.theta.at(4, 4, 3), 0.0);
    }

    #[test]
    fn flat_roundtrip_over_analyzed_vars() {
        let g = grid();
        let mut s = ModelState::<f64>::zeros(&g);
        s.theta.set(2, 3, 1, 1.5);
        s.qr.set(5, 5, 2, 3.2e-3);
        let flat = s.to_flat(&ANALYZED_VARS);
        assert_eq!(flat.len(), ANALYZED_VARS.len() * 8 * 8 * 6);
        let mut t = ModelState::<f64>::zeros(&g);
        t.from_flat(&ANALYZED_VARS, &flat);
        assert_eq!(t.theta.at(2, 3, 1), 1.5);
        assert_eq!(t.qr.at(5, 5, 2), 3.2e-3);
    }

    #[test]
    fn clamp_physical_removes_negative_moisture_only() {
        let g = grid();
        let mut s = ModelState::<f64>::zeros(&g);
        s.qv.set(1, 1, 1, -0.002);
        s.theta.set(1, 1, 1, -5.0);
        s.clamp_physical();
        assert_eq!(s.qv.at(1, 1, 1), 0.0);
        assert_eq!(s.theta.at(1, 1, 1), -5.0); // temperature may be negative
    }

    #[test]
    fn warm_bubble_is_localized_and_positive() {
        let g = grid();
        let mut s = ModelState::<f64>::zeros(&g);
        s.add_warm_bubble(&g, 2000.0, 2000.0, 1500.0, 1200.0, 1500.0, 3.0);
        // Center cell warmed; far corner untouched.
        let (ic, jc) = g.cell_of(2000.0, 2000.0).unwrap();
        let kc = g.vertical.level_of(1500.0);
        assert!(s.theta.at(ic as isize, jc as isize, kc) > 1.0);
        assert_eq!(s.theta.at(7, 7, 5), 0.0);
        assert!(s.qv.at(ic as isize, jc as isize, kc) > 0.0);
    }

    #[test]
    fn perturb_changes_state_reproducibly() {
        let g = grid();
        let mut s1 = ModelState::<f32>::zeros(&g);
        let mut s2 = ModelState::<f32>::zeros(&g);
        let mut r1 = SplitMix64::new(5);
        let mut r2 = SplitMix64::new(5);
        s1.perturb(&g, &mut r1, 0.5, 2e-4);
        s2.perturb(&g, &mut r2, 0.5, 2e-4);
        assert_eq!(s1, s2);
        assert!(s1.theta.interior_max_abs() > 0.0);
        // qv clamped non-negative.
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..6 {
                    assert!(s1.qv.at(i, j, k) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn q_condensate_sums_species() {
        let g = grid();
        let mut s = ModelState::<f64>::zeros(&g);
        s.qc.set(0, 0, 0, 1e-3);
        s.qr.set(0, 0, 0, 2e-3);
        s.qg.set(0, 0, 0, 0.5e-3);
        assert!((s.q_condensate(0, 0, 0) - 3.5e-3).abs() < 1e-12);
    }

    #[test]
    fn temperature_and_pressure_are_physical() {
        let g = grid();
        let b = BaseState::<f64>::from_sounding(&Sounding::dry_stable(), &g.vertical, 340.0);
        let s = ModelState::init_from_base(&g, &b);
        let t = s.temperature(&b, 0, 0, 0);
        assert!((250.0..320.0).contains(&t), "T = {t}");
        let p = s.pressure(&b, 0, 0, 0);
        assert!((80_000.0..102_000.0).contains(&p), "p = {p}");
    }

    #[test]
    fn blend_produces_weighted_average() {
        let g = grid();
        let mut a = ModelState::<f64>::zeros(&g);
        let mut b = ModelState::<f64>::zeros(&g);
        a.theta.set(1, 1, 1, 2.0);
        b.theta.set(1, 1, 1, 6.0);
        a.blend(0.5, &b, 0.5);
        assert_eq!(a.theta.at(1, 1, 1), 4.0);
    }

    #[test]
    fn all_finite_detects_blowup() {
        let g = grid();
        let mut s = ModelState::<f64>::zeros(&g);
        assert!(s.all_finite());
        s.w.set(3, 3, 3, f64::INFINITY);
        assert!(!s.all_finite());
    }

    #[test]
    fn field_accessors_agree() {
        let g = grid();
        let mut s = ModelState::<f64>::zeros(&g);
        s.field_mut(PrognosticVar::Qs).set(1, 2, 3, 9.0);
        assert_eq!(s.qs.at(1, 2, 3), 9.0);
        assert_eq!(s.field(PrognosticVar::Qs).at(1, 2, 3), 9.0);
    }

    #[test]
    fn var_names_are_unique() {
        let mut names: Vec<&str> = PrognosticVar::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PrognosticVar::ALL.len());
    }
}
