//! Thermodynamic column diagnostics: CAPE, CIN, precipitable water.
//!
//! Used to characterize the convective environment of soundings and model
//! columns — the quantities a forecaster would read off the Weisman–Klemp
//! style profiles the OSSE's nature run grows its storms in.

use crate::base::BaseState;
use crate::constants::*;
use crate::state::ModelState;
use bda_grid::VerticalCoord;
use bda_num::Real;

/// Convective indices for one column.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConvectiveIndices {
    /// Convective available potential energy of the surface parcel, J/kg.
    pub cape: f64,
    /// Convective inhibition, J/kg (non-negative).
    pub cin: f64,
    /// Level of free convection, m (NaN if none).
    pub lfc: f64,
    /// Equilibrium level, m (NaN if none).
    pub el: f64,
    /// Precipitable water, mm.
    pub precipitable_water: f64,
}

/// Compute surface-parcel CAPE/CIN by pseudo-adiabatic ascent.
///
/// `theta`, `qv`, `p` are full profiles at cell centers (K, kg/kg, Pa).
pub fn convective_indices(
    theta: &[f64],
    qv: &[f64],
    p: &[f64],
    rho: &[f64],
    vc: &VerticalCoord,
) -> ConvectiveIndices {
    let nz = theta.len();
    assert!(nz >= 3);
    assert_eq!(qv.len(), nz);
    assert_eq!(p.len(), nz);

    // Surface parcel: lifted dry-adiabatically (theta, qv conserved) until
    // saturation, then pseudo-adiabatically (saturated with latent heating).
    let mut parcel_theta = theta[0];
    let mut parcel_qv = qv[0];
    let mut saturated = false;

    let mut cape = 0.0;
    let mut cin = 0.0;
    let mut lfc = f64::NAN;
    let mut el = f64::NAN;

    for k in 1..nz {
        let pi_k = exner(p[k]);
        let mut t_parcel = parcel_theta * pi_k;
        let qsat = q_sat_liquid(t_parcel, p[k]);
        if !saturated && parcel_qv >= qsat {
            saturated = true;
        }
        if saturated {
            // One-step saturation adjustment at this level (pseudo-
            // adiabatic: condensate falls out).
            let qsat_here = q_sat_liquid(t_parcel, p[k]);
            if parcel_qv > qsat_here {
                let lheat = LV;
                let dqs_dt = qsat_here * lheat / (RV * t_parcel * t_parcel);
                let denom = 1.0 + lheat / CP * dqs_dt;
                let dq = (parcel_qv - qsat_here) / denom;
                parcel_qv -= dq;
                t_parcel += lheat / CP * dq;
                parcel_theta = t_parcel / pi_k;
            }
        }

        // Buoyancy of the parcel against the environment (virtual temp).
        let t_env = theta[k] * pi_k;
        let tv_parcel = t_parcel * (1.0 + 0.61 * parcel_qv);
        let tv_env = t_env * (1.0 + 0.61 * qv[k]);
        let b = GRAV * (tv_parcel - tv_env) / tv_env;
        let dz = vc.dz(k);

        if b > 0.0 {
            if lfc.is_nan() {
                lfc = vc.z_center[k];
            }
            cape += b * dz;
            el = vc.z_center[k];
        } else if lfc.is_nan() {
            // Below the LFC: negative area counts as inhibition.
            cin += (-b) * dz;
        }
    }

    // Precipitable water: integral of rho * qv dz (kg/m^2 == mm).
    let pw: f64 = (0..nz).map(|k| rho[k] * qv[k] * vc.dz(k)).sum();

    ConvectiveIndices {
        cape,
        cin,
        lfc,
        el,
        precipitable_water: pw,
    }
}

/// Indices of the base-state sounding itself.
pub fn base_state_indices<T: Real>(base: &BaseState<T>, vc: &VerticalCoord) -> ConvectiveIndices {
    let f = |v: &[T]| -> Vec<f64> { v.iter().map(|&x| x.f64()).collect() };
    convective_indices(
        &f(&base.theta0),
        &f(&base.qv0),
        &f(&base.p0),
        &f(&base.rho0),
        vc,
    )
}

/// Indices of one model column (base + perturbation).
pub fn column_indices<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    vc: &VerticalCoord,
    i: usize,
    j: usize,
) -> ConvectiveIndices {
    let nz = vc.nz();
    let ii = i as isize;
    let jj = j as isize;
    let theta: Vec<f64> = (0..nz)
        .map(|k| (base.theta0[k] + state.theta.at(ii, jj, k)).f64())
        .collect();
    let qv: Vec<f64> = (0..nz)
        .map(|k| state.qv.at(ii, jj, k).f64().max(0.0))
        .collect();
    let p: Vec<f64> = (0..nz)
        .map(|k| state.pressure(base, ii, jj, k).f64())
        .collect();
    let rho: Vec<f64> = (0..nz).map(|k| base.rho0[k].f64()).collect();
    convective_indices(&theta, &qv, &p, &rho, &vc.clone())
}

/// Domain-maximum updraft speed, m/s — the storm-intensity diagnostic.
pub fn max_updraft<T: Real>(state: &ModelState<T>) -> f64 {
    let (nx, ny, nz, _) = state.w.shape();
    let mut m = 0.0f64;
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            for k in 0..nz {
                m = m.max(state.w.at(i, j, k).f64());
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;

    fn vc() -> VerticalCoord {
        VerticalCoord::stretched(50, 16_400.0, 1.04)
    }

    #[test]
    fn convective_sounding_has_substantial_cape() {
        let v = vc();
        let base = BaseState::<f64>::from_sounding(&Sounding::convective(), &v, 340.0);
        let idx = base_state_indices(&base, &v);
        assert!(
            idx.cape > 300.0,
            "convective sounding CAPE only {:.0} J/kg",
            idx.cape
        );
        assert!(idx.lfc.is_finite(), "no level of free convection");
        assert!(idx.el > idx.lfc, "EL below LFC");
        assert!(
            idx.precipitable_water > 20.0,
            "PW = {:.1} mm too dry for heavy rain",
            idx.precipitable_water
        );
    }

    #[test]
    fn dry_stable_sounding_has_no_cape() {
        let v = vc();
        let base = BaseState::<f64>::from_sounding(&Sounding::dry_stable(), &v, 340.0);
        let idx = base_state_indices(&base, &v);
        assert!(idx.cape < 10.0, "dry stable CAPE = {:.0}", idx.cape);
        assert!(idx.precipitable_water < 5.0);
    }

    #[test]
    fn warming_the_boundary_layer_increases_cape() {
        let v = vc();
        let grid = bda_grid::GridSpec::new(4, 4, 500.0, v.clone());
        let base = BaseState::<f64>::from_sounding(&Sounding::convective(), &v, 340.0);
        let mut state = ModelState::init_from_base(&grid, &base);
        let before = column_indices(&state, &base, &v, 1, 1);
        // +2 K and +2 g/kg in the lowest ~1 km.
        for k in 0..v.nz() {
            if v.z_center[k] < 1000.0 {
                state.theta.add_at(1, 1, k, 2.0);
                state.qv.add_at(1, 1, k, 2e-3);
            }
        }
        let after = column_indices(&state, &base, &v, 1, 1);
        assert!(
            after.cape > before.cape + 100.0,
            "CAPE {:.0} -> {:.0}",
            before.cape,
            after.cape
        );
        // Other columns unaffected.
        let other = column_indices(&state, &base, &v, 2, 2);
        assert!((other.cape - before.cape).abs() < 1.0);
    }

    #[test]
    fn max_updraft_tracks_w() {
        let grid = bda_grid::GridSpec::reduced(4, 4, 6);
        let mut state = ModelState::<f32>::zeros(&grid);
        assert_eq!(max_updraft(&state), 0.0);
        state.w.set(2, 2, 3, 12.5);
        state.w.set(1, 1, 2, -20.0); // downdrafts don't count
        assert!((max_updraft(&state) - 12.5).abs() < 1e-6);
    }

    #[test]
    fn cin_positive_when_surface_layer_is_capped() {
        // A strongly stable layer above a moist surface: inhibition.
        let v = VerticalCoord::uniform(30, 12_000.0);
        let mut snd = Sounding::convective();
        snd.dtheta_dz_tropo = 6.0e-3; // strong cap
        snd.rh_surface = 0.75;
        let base = BaseState::<f64>::from_sounding(&snd, &v, 340.0);
        let idx = base_state_indices(&base, &v);
        assert!(idx.cin > 0.0, "no inhibition under a cap");
    }
}
