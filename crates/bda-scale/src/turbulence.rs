//! Turbulent mixing: Smagorinsky horizontal diffusion and a TKE-based
//! boundary-layer scheme of the MYNN level-2.5 class.
//!
//! * [`smagorinsky_viscosity`] computes a deformation-dependent eddy
//!   viscosity `K = (Cs*dx)^2 |S|` from the horizontal strain and applies
//!   explicit horizontal diffusion to momentum and scalars.
//! * [`ColumnPbl`] advances prognostic TKE per column (shear production,
//!   buoyancy production/destruction, dissipation) and mixes momentum, heat
//!   and moisture vertically with an *implicit* tridiagonal solve — the same
//!   split SCALE uses (vertical physics implicit, horizontal explicit).

use crate::advect::Metrics;
use crate::base::BaseState;
use crate::constants::{GRAV, KARMAN};
use bda_grid::Field3;
use bda_num::tridiag::TridiagWorkspace;
use bda_num::Real;

/// Compute the Smagorinsky horizontal eddy viscosity at cell centers.
pub fn smagorinsky_viscosity<T: Real>(
    u: &Field3<T>,
    v: &Field3<T>,
    cs: f64,
    dx: f64,
    kh: &mut Field3<T>,
) {
    let (nx, ny, nz, _) = u.shape();
    let inv_dx = T::of(1.0 / dx);
    let c2 = T::of((cs * dx) * (cs * dx));
    let quarter = T::of(0.25);
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            let uc = u.column(i, j);
            let uxp = u.column(i + 1, j);
            let uyp = u.column(i, j + 1);
            let uym = u.column(i, j - 1);
            let uxp_yp = u.column(i + 1, j + 1);
            let uxp_ym = u.column(i + 1, j - 1);
            let vc = v.column(i, j);
            let vyp = v.column(i, j + 1);
            let vxp = v.column(i + 1, j);
            let vxm = v.column(i - 1, j);
            let vxp_yp = v.column(i + 1, j + 1);
            let vxm_yp = v.column(i - 1, j + 1);
            let khc = kh.column_mut(i, j);
            for k in 0..nz {
                let dudx = (uxp[k] - uc[k]) * inv_dx;
                let dvdy = (vyp[k] - vc[k]) * inv_dx;
                // Cross terms estimated at the center with centered diffs.
                let dudy = (uyp[k] + uxp_yp[k] - uym[k] - uxp_ym[k]) * quarter * inv_dx;
                let dvdx = (vxp[k] + vxp_yp[k] - vxm[k] - vxm_yp[k]) * quarter * inv_dx;
                let shear = dudy + dvdx;
                let s2 = (dudx * dudx + dvdy * dvdy) * T::two() + shear * shear;
                khc[k] = c2 * s2.sqrt();
            }
        }
    }
}

/// Apply explicit horizontal diffusion `d/dx(K dq/dx) + d/dy(K dq/dy)` to a
/// field, with `K` at cell centers (interpolated to faces). `snap` is a
/// caller-owned scratch field of the same shape: it receives a snapshot of
/// `q` so the stencil is unbiased, without allocating a fresh field per call.
pub fn horizontal_diffusion<T: Real>(
    q: &mut Field3<T>,
    kh: &Field3<T>,
    m: &Metrics<T>,
    dt: T,
    snap: &mut Field3<T>,
) {
    let (nx, ny, nz, _) = q.shape();
    let inv_dx2 = m.inv_dx * m.inv_dx;
    // Work on a snapshot so the stencil is unbiased.
    snap.copy_from(q);
    let q0 = &*snap;
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            let kc = kh.column(i, j);
            let kxp = kh.column(i + 1, j);
            let kxm = kh.column(i - 1, j);
            let kyp = kh.column(i, j + 1);
            let kym = kh.column(i, j - 1);
            let qc = q0.column(i, j);
            let qxp = q0.column(i + 1, j);
            let qxm = q0.column(i - 1, j);
            let qyp = q0.column(i, j + 1);
            let qym = q0.column(i, j - 1);
            let qo = q.column_mut(i, j);
            for k in 0..nz {
                let k_e = (kc[k] + kxp[k]) * T::half();
                let k_w = (kc[k] + kxm[k]) * T::half();
                let k_n = (kc[k] + kyp[k]) * T::half();
                let k_s = (kc[k] + kym[k]) * T::half();
                let d = (k_e * (qxp[k] - qc[k]) - k_w * (qc[k] - qxm[k]) + k_n * (qyp[k] - qc[k])
                    - k_s * (qc[k] - qym[k]))
                    * inv_dx2;
                qo[k] += dt * d;
            }
        }
    }
}

/// Per-column TKE boundary-layer scheme (1.5-order closure, MYNN-2.5 class).
pub struct ColumnPbl<T> {
    tri: TridiagWorkspace<T>,
    km: Vec<T>,
    sub: Vec<T>,
    diag: Vec<T>,
    sup: Vec<T>,
    rhs: Vec<T>,
}

/// Closure constants.
const CM: f64 = 0.1;
const CE: f64 = 0.19;
/// Turbulent Prandtl number.
const PRT: f64 = 0.74;
/// Asymptotic mixing length, m.
const L_MAX: f64 = 200.0;
/// TKE floor, m^2/s^2.
const TKE_MIN: f64 = 1e-4;

impl<T: Real> ColumnPbl<T> {
    pub fn new(nz: usize) -> Self {
        Self {
            tri: TridiagWorkspace::new(nz),
            km: vec![T::zero(); nz],
            sub: vec![T::zero(); nz],
            diag: vec![T::zero(); nz],
            sup: vec![T::zero(); nz],
            rhs: vec![T::zero(); nz],
        }
    }

    /// Advance TKE and vertically mix `u`, `v`, `theta'` and `qv` in one
    /// column. `sfc_flux_theta` and `sfc_flux_qv` are kinematic surface
    /// fluxes (K m/s, kg/kg m/s) entering the lowest layer; `sfc_drag` is
    /// `C_d * |U|` (m/s) acting on the lowest-layer momentum.
    #[allow(clippy::too_many_arguments)]
    // The three shear/gradient branches partition `0..nz` so each `k±1`
    // access is in bounds for its branch; all column slices share length nz.
    // bda-check: allow(panic_path)
    pub fn step_column(
        &mut self,
        u: &mut [T],
        v: &mut [T],
        theta: &mut [T],
        qv: &mut [T],
        tke: &mut [T],
        base: &BaseState<T>,
        z_center: &[f64],
        dz: &[T],
        dt: f64,
        sfc_flux_theta: T,
        sfc_flux_qv: T,
        sfc_drag: T,
    ) {
        let nz = u.len();
        let dt_t = T::of(dt);

        // --- diagnose mixing length and eddy viscosity; advance TKE ---
        for k in 0..nz {
            let e = tke[k].max(T::of(TKE_MIN));
            let l = T::of((KARMAN * z_center[k]).clamp(1.0, L_MAX));
            let km = T::of(CM) * l * e.sqrt();
            self.km[k] = km;

            // Local shear (one-sided at the boundaries).
            let (du, dv, dzc) = if k == 0 {
                (u[1] - u[0], v[1] - v[0], T::of(z_center[1] - z_center[0]))
            } else if k + 1 >= nz {
                (
                    u[k] - u[k - 1],
                    v[k] - v[k - 1],
                    T::of(z_center[k] - z_center[k - 1]),
                )
            } else {
                (
                    u[k + 1] - u[k - 1],
                    v[k + 1] - v[k - 1],
                    T::of(z_center[k + 1] - z_center[k - 1]),
                )
            };
            let dudz = du / dzc;
            let dvdz = dv / dzc;
            let shear_prod = km * (dudz * dudz + dvdz * dvdz);

            // Buoyancy production/destruction from the total theta gradient.
            let th_tot = |kk: usize| base.theta0[kk] + theta[kk];
            let dth_dz = if k == 0 {
                (th_tot(1) - th_tot(0)) / T::of(z_center[1] - z_center[0])
            } else if k + 1 >= nz {
                (th_tot(k) - th_tot(k - 1)) / T::of(z_center[k] - z_center[k - 1])
            } else {
                (th_tot(k + 1) - th_tot(k - 1)) / T::of(z_center[k + 1] - z_center[k - 1])
            };
            let kh = km / T::of(PRT);
            let buoy_prod = -(T::of(GRAV) / base.theta0[k]) * kh * dth_dz;

            // Semi-implicit dissipation keeps TKE non-negative.
            let diss_coef = T::of(CE) * e.sqrt() / l;
            let e_new = (e + dt_t * (shear_prod + buoy_prod)) / (T::one() + dt_t * diss_coef);
            tke[k] = e_new.max(T::of(TKE_MIN));
        }

        // Surface TKE injection from friction (u*^2-scaled).
        let ustar2 = sfc_drag * (u[0] * u[0] + v[0] * v[0]).sqrt();
        tke[0] = (tke[0] + dt_t * ustar2 * T::of(3.0) / dz[0]).max(T::of(TKE_MIN));

        // --- implicit vertical diffusion of u, v, theta, qv ---
        // Momentum uses km; scalars use km/Pr. Surface fluxes/drag appear in
        // the lowest-layer right-hand side.
        let drag_term = sfc_drag / dz[0];
        self.diffuse_implicit(u, z_center, dz, dt_t, T::one(), Some(drag_term), T::zero());
        self.diffuse_implicit(v, z_center, dz, dt_t, T::one(), Some(drag_term), T::zero());
        let inv_pr = T::one() / T::of(PRT);
        self.diffuse_implicit(
            theta,
            z_center,
            dz,
            dt_t,
            inv_pr,
            None,
            sfc_flux_theta / dz[0],
        );
        self.diffuse_implicit(qv, z_center, dz, dt_t, inv_pr, None, sfc_flux_qv / dz[0]);
    }

    /// Implicit vertical diffusion with eddy coefficient `fac * km` at faces,
    #[allow(clippy::too_many_arguments)]
    /// optional implicit surface drag on the lowest layer and an explicit
    /// surface source term.
    // `k±1` face accesses run under loops bounded away from the ends after
    // the `nz < 2` early return; workspace buffers are sized to nz.
    // bda-check: allow(panic_path)
    fn diffuse_implicit(
        &mut self,
        q: &mut [T],
        z_center: &[f64],
        dz: &[T],
        dt: T,
        fac: T,
        sfc_drag: Option<T>,
        sfc_source: T,
    ) {
        let nz = q.len();
        if nz < 2 {
            return;
        }
        for k in 0..nz {
            // Face coefficients: K at face k+1/2 between cells k and k+1.
            let k_up = if k + 1 < nz {
                fac * (self.km[k] + self.km[k + 1]) * T::half()
                    / T::of(z_center[k + 1] - z_center[k])
            } else {
                T::zero()
            };
            let k_dn = if k > 0 {
                fac * (self.km[k] + self.km[k - 1]) * T::half()
                    / T::of(z_center[k] - z_center[k - 1])
            } else {
                T::zero()
            };
            let a = dt / dz[k];
            self.sub[k] = -a * k_dn;
            self.sup[k] = -a * k_up;
            self.diag[k] = T::one() + a * (k_up + k_dn);
            self.rhs[k] = q[k];
        }
        // Surface layer: implicit drag and explicit flux source.
        if let Some(d) = sfc_drag {
            self.diag[0] += dt * d;
        }
        self.rhs[0] += dt * sfc_source;
        self.tri.solve(
            &self.sub[..nz],
            &self.diag[..nz],
            &self.sup[..nz],
            &mut self.rhs[..nz],
        );
        q.copy_from_slice(&self.rhs[..nz]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;
    use bda_grid::VerticalCoord;

    fn setup(nz: usize) -> (BaseState<f64>, VerticalCoord, Vec<f64>) {
        let vc = VerticalCoord::stretched(nz, 3000.0, 1.05);
        let base = BaseState::from_sounding(&Sounding::dry_stable(), &vc, 340.0);
        let dz: Vec<f64> = (0..nz).map(|k| vc.dz(k)).collect();
        (base, vc, dz)
    }

    #[test]
    fn smagorinsky_zero_for_uniform_flow() {
        let u = Field3::<f64>::constant(6, 6, 3, 2, 5.0);
        let v = Field3::<f64>::constant(6, 6, 3, 2, -2.0);
        let mut kh = Field3::zeros(6, 6, 3, 2);
        smagorinsky_viscosity(&u, &v, 0.18, 500.0, &mut kh);
        assert_eq!(kh.interior_max_abs(), 0.0);
    }

    #[test]
    fn smagorinsky_positive_for_sheared_flow() {
        let mut u = Field3::<f64>::from_fn(6, 6, 3, 2, |_, j, _| j as f64);
        bda_grid::halo::fill_clamp(&mut u);
        let v = Field3::<f64>::zeros(6, 6, 3, 2);
        let mut kh = Field3::zeros(6, 6, 3, 2);
        smagorinsky_viscosity(&u, &v, 0.18, 500.0, &mut kh);
        assert!(kh.at(3, 3, 0) > 0.0);
    }

    #[test]
    fn horizontal_diffusion_smooths_extrema_conservatively() {
        let m = Metrics::<f64>::new(&bda_grid::GridSpec::new(
            8,
            8,
            500.0,
            VerticalCoord::uniform(2, 1000.0),
        ));
        let mut q = Field3::<f64>::zeros(8, 8, 2, 2);
        q.set(4, 4, 0, 10.0);
        bda_grid::halo::fill_periodic(&mut q);
        let kh = Field3::<f64>::constant(8, 8, 2, 2, 100.0);
        let before: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| q.at(i, j, 0))
            .sum();
        let mut snap = Field3::<f64>::zeros(8, 8, 2, 2);
        horizontal_diffusion(&mut q, &kh, &m, 1.0, &mut snap);
        assert!(q.at(4, 4, 0) < 10.0);
        assert!(q.at(3, 4, 0) > 0.0);
        let after: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| q.at(i, j, 0))
            .sum();
        assert!((before - after).abs() < 1e-10, "not conservative");
    }

    #[test]
    fn shear_produces_tke() {
        // Near-neutral stratification so the gradient Richardson number is
        // subcritical and shear production wins.
        let vc = VerticalCoord::stretched(20, 3000.0, 1.05);
        let mut snd = Sounding::dry_stable();
        snd.dtheta_dz_tropo = 1.0e-4;
        let base = BaseState::<f64>::from_sounding(&snd, &vc, 340.0);
        let dz: Vec<f64> = (0..20).map(|k| vc.dz(k)).collect();
        let dz_t: Vec<f64> = dz.clone();
        let mut pbl = ColumnPbl::new(20);
        let mut u: Vec<f64> = vc.z_center.iter().map(|&z| 20.0 * (z / 3000.0)).collect();
        let mut v = vec![0.0; 20];
        let mut th = vec![0.0; 20];
        let mut qv = vec![0.0; 20];
        let mut tke = vec![TKE_MIN; 20];
        for _ in 0..100 {
            pbl.step_column(
                &mut u,
                &mut v,
                &mut th,
                &mut qv,
                &mut tke,
                &base,
                &vc.z_center,
                &dz_t,
                2.0,
                0.0,
                0.0,
                0.0,
            );
        }
        assert!(
            tke.iter().any(|&e| e > 10.0 * TKE_MIN),
            "tke = {:?}",
            &tke[..5]
        );
    }

    #[test]
    fn surface_heating_warms_lowest_layers() {
        let (base, vc, dz) = setup(15);
        let mut pbl = ColumnPbl::new(15);
        let mut u = vec![2.0; 15];
        let mut v = vec![0.0; 15];
        let mut th = vec![0.0; 15];
        let mut qv = vec![0.0; 15];
        let mut tke = vec![0.1; 15];
        for _ in 0..50 {
            pbl.step_column(
                &mut u,
                &mut v,
                &mut th,
                &mut qv,
                &mut tke,
                &base,
                &vc.z_center,
                &dz,
                2.0,
                0.1,
                0.0,
                0.0,
            );
        }
        assert!(th[0] > 0.05, "theta'[0] = {}", th[0]);
        assert!(th[0] > th[5]);
    }

    #[test]
    fn drag_decelerates_surface_wind() {
        let (base, vc, dz) = setup(15);
        let mut pbl = ColumnPbl::new(15);
        let mut u = vec![10.0; 15];
        let mut v = vec![0.0; 15];
        let mut th = vec![0.0; 15];
        let mut qv = vec![0.0; 15];
        let mut tke = vec![0.1; 15];
        for _ in 0..50 {
            pbl.step_column(
                &mut u,
                &mut v,
                &mut th,
                &mut qv,
                &mut tke,
                &base,
                &vc.z_center,
                &dz,
                2.0,
                0.0,
                0.0,
                0.01,
            );
        }
        assert!(u[0] < 10.0);
        assert!(u[0] < u[14], "surface should be slower than aloft");
    }

    #[test]
    fn tke_stays_nonnegative_and_finite() {
        let (base, vc, dz) = setup(25);
        let mut pbl = ColumnPbl::new(25);
        let mut u: Vec<f64> = vc.z_center.iter().map(|&z| 30.0 * (z / 3000.0)).collect();
        let mut v: Vec<f64> = vc.z_center.iter().map(|&z| -15.0 * (z / 3000.0)).collect();
        let mut th = vec![0.0; 25];
        let mut qv = vec![0.0; 25];
        let mut tke = vec![0.0; 25];
        for _ in 0..300 {
            pbl.step_column(
                &mut u,
                &mut v,
                &mut th,
                &mut qv,
                &mut tke,
                &base,
                &vc.z_center,
                &dz,
                5.0,
                0.05,
                1e-5,
                0.005,
            );
        }
        for (k, &e) in tke.iter().enumerate() {
            assert!(e >= TKE_MIN && e.is_finite(), "tke[{k}] = {e}");
            assert!(e < 100.0, "runaway tke[{k}] = {e}");
        }
    }

    #[test]
    fn implicit_diffusion_conserves_column_integral_without_sources() {
        let (base, vc, dz) = setup(12);
        let mut pbl = ColumnPbl::new(12);
        // Build km directly by running one TKE step with uniform state.
        let mut u = vec![0.0; 12];
        let mut v = vec![0.0; 12];
        let mut th: Vec<f64> = (0..12).map(|k| if k == 5 { 1.0 } else { 0.0 }).collect();
        let mut qv = vec![0.0; 12];
        let mut tke = vec![0.5; 12];
        let mass = |th: &[f64]| -> f64 { (0..12).map(|k| th[k] * dz[k]).sum() };
        let before = mass(&th);
        for _ in 0..20 {
            pbl.step_column(
                &mut u,
                &mut v,
                &mut th,
                &mut qv,
                &mut tke,
                &base,
                &vc.z_center,
                &dz,
                2.0,
                0.0,
                0.0,
                0.0,
            );
        }
        let after = mass(&th);
        assert!(
            (before - after).abs() < 1e-9 * before.abs().max(1.0),
            "column integral changed: {before} -> {after}"
        );
        // And the spike has spread.
        assert!(th[5] < 1.0);
        assert!(th[4] > 0.0 || th[6] > 0.0);
    }
}
