//! Synthetic large-scale forcing — the JMA mesoscale boundary-data analogue.
//!
//! The production system drives the outer domain with the operational JMA
//! mesoscale forecast at 5-km spacing, refreshed every 3 hours (Fig. 3b).
//! Here an equivalent data stream is synthesized: slowly evolving profiles of
//! wind, temperature and moisture anchored on a sounding, refreshed at the
//! same 3-hour cadence and interpolated linearly in time between refreshes —
//! exercising the same boundary-update code path.
//!
//! Convection initiation in the nature run is handled by a separate
//! [`TriggerSchedule`] of warm-bubble events, standing in for the real
//! low-level convergence features the radar saw.

use crate::base::Sounding;
use bda_num::SplitMix64;
use serde::{Deserialize, Serialize};

/// Boundary profiles at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundaryProfiles {
    /// Zonal wind, m/s, per level.
    pub u: Vec<f64>,
    /// Meridional wind, m/s, per level.
    pub v: Vec<f64>,
    /// Potential-temperature *perturbation* from the base state, K.
    pub theta_pert: Vec<f64>,
    /// Vapor mixing ratio, kg/kg, per level.
    pub qv: Vec<f64>,
}

/// The synthetic large-scale forcing generator.
#[derive(Clone, Debug)]
pub struct LargeScaleForcing {
    /// Refresh interval, s (paper: 3 h).
    pub refresh_interval: f64,
    sounding: Sounding,
    z_center: Vec<f64>,
    seed: u64,
    /// Amplitude of the slow wind modulation, m/s.
    pub wind_amplitude: f64,
    /// Amplitude of the slow moisture modulation (relative).
    pub moisture_amplitude: f64,
    /// Amplitude of the slow thermal modulation, K.
    pub theta_amplitude: f64,
}

impl LargeScaleForcing {
    pub fn new(sounding: Sounding, z_center: Vec<f64>, seed: u64) -> Self {
        Self {
            refresh_interval: 3.0 * 3600.0,
            sounding,
            z_center,
            seed,
            wind_amplitude: 3.0,
            moisture_amplitude: 0.15,
            theta_amplitude: 0.8,
        }
    }

    /// Profiles at one refresh epoch (deterministic in `epoch`).
    fn epoch_profiles(&self, epoch: u64) -> BoundaryProfiles {
        let mut rng = SplitMix64::new(self.seed).split(epoch);
        // Three smooth random numbers drive the modulation of this epoch.
        let mw = rng.gaussian(0.0f64, 1.0);
        let mq = rng.gaussian(0.0f64, 1.0);
        let mt = rng.gaussian(0.0f64, 1.0);
        let nz = self.z_center.len();
        let mut p = BoundaryProfiles {
            u: Vec::with_capacity(nz),
            v: Vec::with_capacity(nz),
            theta_pert: Vec::with_capacity(nz),
            qv: Vec::with_capacity(nz),
        };
        for &z in &self.z_center {
            let shape = (-z / 6000.0_f64).exp(); // modulations strongest at low levels
            p.u.push(self.sounding.u(z) + self.wind_amplitude * mw * shape);
            p.v.push(self.sounding.v_constant + 0.5 * self.wind_amplitude * mw * shape);
            p.theta_pert.push(self.theta_amplitude * mt * shape);
            // Barometric pressure estimate and the matching temperature give
            // a physically scaled saturation humidity.
            let p_est = self.sounding.p_surface * (-z / 8000.0_f64).exp();
            let t_est = self.sounding.theta(z) * crate::constants::exner(p_est);
            let qv_env = self.sounding.rh(z) * crate::constants::q_sat_liquid(t_est, p_est);
            p.qv.push((qv_env * (1.0 + self.moisture_amplitude * mq * shape)).max(0.0));
        }
        p
    }

    /// Profiles at time `t` (s), linearly interpolated between the
    /// surrounding 3-hourly refreshes — exactly how the real system consumes
    /// the JMA stream.
    pub fn profiles_at(&self, t: f64) -> BoundaryProfiles {
        let epoch = (t / self.refresh_interval).floor().max(0.0) as u64;
        let frac = (t / self.refresh_interval - epoch as f64).clamp(0.0, 1.0);
        let a = self.epoch_profiles(epoch);
        let b = self.epoch_profiles(epoch + 1);
        let lerp = |x: &[f64], y: &[f64]| -> Vec<f64> {
            x.iter()
                .zip(y)
                .map(|(&xa, &yb)| xa * (1.0 - frac) + yb * frac)
                .collect()
        };
        BoundaryProfiles {
            u: lerp(&a.u, &b.u),
            v: lerp(&a.v, &b.v),
            theta_pert: lerp(&a.theta_pert, &b.theta_pert),
            qv: lerp(&a.qv, &b.qv),
        }
    }
}

/// A scheduled convection trigger (warm bubble).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TriggerEvent {
    /// Model time of the trigger, s.
    pub time: f64,
    /// Bubble center, m.
    pub x: f64,
    pub y: f64,
    pub z: f64,
    /// Horizontal and vertical radii, m.
    pub radius_h: f64,
    pub radius_v: f64,
    /// Peak theta perturbation, K.
    pub amplitude: f64,
}

/// A time-ordered schedule of triggers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TriggerSchedule {
    events: Vec<TriggerEvent>,
}

impl TriggerSchedule {
    pub fn new(mut events: Vec<TriggerEvent>) -> Self {
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        Self { events }
    }

    pub fn empty() -> Self {
        Self::default()
    }

    /// A random multicell schedule over the domain — the OSSE's stand-in for
    /// the real sequence of convective initiations.
    pub fn random_multicell(
        lx: f64,
        ly: f64,
        t_start: f64,
        t_end: f64,
        n: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let events = (0..n)
            .map(|_| TriggerEvent {
                time: rng.uniform_in(t_start, t_end),
                x: rng.uniform_in(0.2 * lx, 0.8 * lx),
                y: rng.uniform_in(0.2 * ly, 0.8 * ly),
                z: rng.uniform_in(800.0, 1800.0),
                radius_h: rng.uniform_in(2000.0, 5000.0),
                radius_v: rng.uniform_in(1000.0, 1800.0),
                amplitude: rng.uniform_in(1.5, 3.0),
            })
            .collect();
        Self::new(events)
    }

    /// Events with `t_prev < time <= t_now`, in order.
    pub fn due(&self, t_prev: f64, t_now: f64) -> impl Iterator<Item = &TriggerEvent> {
        self.events
            .iter()
            .filter(move |e| e.time > t_prev && e.time <= t_now)
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events in time order.
    pub fn events(&self) -> &[TriggerEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_grid::VerticalCoord;

    fn forcing() -> LargeScaleForcing {
        let vc = VerticalCoord::stretched(30, 16_400.0, 1.05);
        LargeScaleForcing::new(Sounding::convective(), vc.z_center, 7)
    }

    #[test]
    fn profiles_are_continuous_in_time() {
        let f = forcing();
        let p1 = f.profiles_at(3600.0);
        let p2 = f.profiles_at(3601.0);
        for k in 0..p1.u.len() {
            assert!((p1.u[k] - p2.u[k]).abs() < 0.05, "u jump at level {k}");
            assert!((p1.qv[k] - p2.qv[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn profiles_differ_between_epochs() {
        let f = forcing();
        let p1 = f.profiles_at(0.0);
        let p2 = f.profiles_at(6.0 * 3600.0);
        let diff: f64 = p1.u.iter().zip(&p2.u).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.1, "forcing never evolves");
    }

    #[test]
    fn profiles_reproducible_for_same_seed() {
        let a = forcing().profiles_at(5000.0);
        let b = forcing().profiles_at(5000.0);
        assert_eq!(a, b);
    }

    #[test]
    fn moisture_profile_is_physical() {
        let f = forcing();
        let p = f.profiles_at(7200.0);
        for (k, &q) in p.qv.iter().enumerate() {
            assert!((0.0..0.03).contains(&q), "qv[{k}] = {q}");
        }
        // More moisture at the bottom than the top.
        assert!(p.qv[0] > p.qv[p.qv.len() - 1]);
    }

    #[test]
    fn schedule_due_window_is_half_open() {
        let s = TriggerSchedule::new(vec![
            TriggerEvent {
                time: 10.0,
                x: 0.0,
                y: 0.0,
                z: 1000.0,
                radius_h: 2000.0,
                radius_v: 1000.0,
                amplitude: 2.0,
            },
            TriggerEvent {
                time: 20.0,
                x: 0.0,
                y: 0.0,
                z: 1000.0,
                radius_h: 2000.0,
                radius_v: 1000.0,
                amplitude: 2.0,
            },
        ]);
        assert_eq!(s.due(0.0, 10.0).count(), 1);
        assert_eq!(s.due(10.0, 20.0).count(), 1);
        assert_eq!(s.due(20.0, 30.0).count(), 0);
    }

    #[test]
    fn random_multicell_respects_bounds() {
        let s = TriggerSchedule::random_multicell(128_000.0, 128_000.0, 0.0, 3600.0, 12, 3);
        assert_eq!(s.len(), 12);
        for e in s.due(-1.0, 1e12) {
            assert!((0.0..=3600.0).contains(&e.time));
            assert!(e.x >= 0.2 * 128_000.0 && e.x <= 0.8 * 128_000.0);
            assert!(e.amplitude >= 1.5 && e.amplitude <= 3.0);
        }
    }

    #[test]
    fn schedule_sorts_events() {
        let s = TriggerSchedule::new(vec![
            TriggerEvent {
                time: 30.0,
                x: 0.0,
                y: 0.0,
                z: 0.0,
                radius_h: 1.0,
                radius_v: 1.0,
                amplitude: 1.0,
            },
            TriggerEvent {
                time: 5.0,
                x: 0.0,
                y: 0.0,
                z: 0.0,
                radius_h: 1.0,
                radius_v: 1.0,
                amplitude: 1.0,
            },
        ]);
        let times: Vec<f64> = s.due(-1.0, 100.0).map(|e| e.time).collect();
        assert_eq!(times, vec![5.0, 30.0]);
    }
}
