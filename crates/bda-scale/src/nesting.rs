//! One-way nesting: outer-domain fields drive the inner-domain boundary.
//!
//! Fig. 3b of the paper: the 1000-member outer SCALE ensemble at 1.5-km
//! spacing (driven by the JMA boundary data) provides the lateral boundary
//! condition for the 1000-member inner 500-m ensemble. This module provides
//! the interpolation from an outer-domain state to inner-domain boundary
//! target fields, applied through the Davies rim of `bda_grid::boundary`.

use crate::state::{ModelState, HALO};
use bda_grid::{Field3, GridSpec};
use bda_num::Real;

/// Boundary target fields for Davies relaxation (same shape as the inner
/// domain; only the rim values are actually used).
#[derive(Clone, Debug)]
pub struct BoundaryFields<T> {
    pub u: Field3<T>,
    pub v: Field3<T>,
    pub theta: Field3<T>,
    pub qv: Field3<T>,
}

impl<T: Real> BoundaryFields<T> {
    pub fn zeros(grid: &GridSpec) -> Self {
        let f = || Field3::zeros(grid.nx, grid.ny, grid.nz(), HALO);
        Self {
            u: f(),
            v: f(),
            theta: f(),
            qv: f(),
        }
    }
}

/// Bilinear interpolation of an outer-domain cell-centered field to a
/// physical point (x, y) at level k. Points outside the outer domain are
/// clamped to its edge.
fn bilinear<T: Real>(field: &Field3<T>, outer: &GridSpec, x: f64, y: f64, k: usize) -> T {
    // Continuous cell-center coordinates.
    let fx = (x / outer.dx - 0.5).clamp(0.0, (outer.nx - 1) as f64);
    let fy = (y / outer.dx - 0.5).clamp(0.0, (outer.ny - 1) as f64);
    let i0 = fx.floor() as usize;
    let j0 = fy.floor() as usize;
    let i1 = (i0 + 1).min(outer.nx - 1);
    let j1 = (j0 + 1).min(outer.ny - 1);
    let wx = T::of(fx - i0 as f64);
    let wy = T::of(fy - j0 as f64);
    let one = T::one();
    field.at(i0 as isize, j0 as isize, k) * (one - wx) * (one - wy)
        + field.at(i1 as isize, j0 as isize, k) * wx * (one - wy)
        + field.at(i0 as isize, j1 as isize, k) * (one - wx) * wy
        + field.at(i1 as isize, j1 as isize, k) * wx * wy
}

/// Interpolate an outer-domain state onto inner-domain boundary targets.
///
/// `offset` is the position of the inner domain's origin inside the outer
/// domain (m). Vertical levels must match between the domains (both BDA2021
/// domains share the 60-level column; asserted here).
pub fn outer_to_inner_boundary<T: Real>(
    outer_state: &ModelState<T>,
    outer_grid: &GridSpec,
    inner_grid: &GridSpec,
    offset: (f64, f64),
) -> BoundaryFields<T> {
    assert_eq!(
        outer_grid.nz(),
        inner_grid.nz(),
        "nesting requires matching vertical levels"
    );
    let mut out = BoundaryFields::zeros(inner_grid);
    let nz = inner_grid.nz();
    for i in 0..inner_grid.nx {
        for j in 0..inner_grid.ny {
            let x = offset.0 + inner_grid.x_center(i);
            let y = offset.1 + inner_grid.y_center(j);
            for k in 0..nz {
                out.u.set(
                    i as isize,
                    j as isize,
                    k,
                    bilinear(&outer_state.u, outer_grid, x, y, k),
                );
                out.v.set(
                    i as isize,
                    j as isize,
                    k,
                    bilinear(&outer_state.v, outer_grid, x, y, k),
                );
                out.theta.set(
                    i as isize,
                    j as isize,
                    k,
                    bilinear(&outer_state.theta, outer_grid, x, y, k),
                );
                out.qv.set(
                    i as isize,
                    j as isize,
                    k,
                    bilinear(&outer_state.qv, outer_grid, x, y, k),
                );
            }
        }
    }
    out
}

/// Member-paired boundaries for a nested ensemble (Fig. 3b): inner member
/// `m` is driven by outer member `m`, preserving the ensemble's boundary
/// uncertainty. Computed in parallel over members.
pub fn member_boundaries<T: Real>(
    outer_members: &[ModelState<T>],
    outer_grid: &GridSpec,
    inner_grid: &GridSpec,
    offset: (f64, f64),
) -> Vec<BoundaryFields<T>> {
    use rayon::prelude::*;
    outer_members
        .par_iter()
        .map(|m| outer_to_inner_boundary(m, outer_grid, inner_grid, offset))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_grid::VerticalCoord;

    fn outer_grid() -> GridSpec {
        GridSpec::new(12, 12, 1500.0, VerticalCoord::uniform(4, 4000.0))
    }

    fn inner_grid() -> GridSpec {
        GridSpec::new(9, 9, 500.0, VerticalCoord::uniform(4, 4000.0))
    }

    #[test]
    fn constant_outer_field_interpolates_exactly() {
        let og = outer_grid();
        let ig = inner_grid();
        let mut outer = ModelState::<f64>::zeros(&og);
        outer.u.fill(7.0);
        let b = outer_to_inner_boundary(&outer, &og, &ig, (3000.0, 3000.0));
        for i in 0..ig.nx {
            for j in 0..ig.ny {
                assert!((b.u.at(i as isize, j as isize, 0) - 7.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn linear_outer_field_reproduced_in_interior() {
        let og = outer_grid();
        let ig = inner_grid();
        let mut outer = ModelState::<f64>::zeros(&og);
        // theta' = x / 1000 (linear in physical x).
        for i in 0..og.nx {
            for j in 0..og.ny {
                for k in 0..og.nz() {
                    outer
                        .theta
                        .set(i as isize, j as isize, k, og.x_center(i) / 1000.0);
                }
            }
        }
        let off = (4500.0, 4500.0);
        let b = outer_to_inner_boundary(&outer, &og, &ig, off);
        for i in 0..ig.nx {
            let x = off.0 + ig.x_center(i);
            let got = b.theta.at(i as isize, 4, 0);
            assert!(
                (got - x / 1000.0).abs() < 1e-9,
                "x = {x}: got {got}, want {}",
                x / 1000.0
            );
        }
    }

    #[test]
    fn out_of_bounds_points_clamp_to_edge() {
        let og = outer_grid();
        let ig = inner_grid();
        let mut outer = ModelState::<f64>::zeros(&og);
        for i in 0..og.nx {
            for j in 0..og.ny {
                outer.qv.set(i as isize, j as isize, 0, i as f64);
            }
        }
        // Negative offset puts part of the inner domain outside the outer.
        let b = outer_to_inner_boundary(&outer, &og, &ig, (-5000.0, 0.0));
        // Leftmost inner columns clamp to outer column 0.
        assert_eq!(b.qv.at(0, 0, 0), 0.0);
        assert!(b.qv.at(8, 0, 0) >= 0.0);
    }

    #[test]
    fn member_boundaries_pair_one_to_one() {
        let og = outer_grid();
        let ig = inner_grid();
        let members: Vec<ModelState<f64>> = (0..3)
            .map(|m| {
                let mut s = ModelState::zeros(&og);
                s.u.fill(m as f64);
                s
            })
            .collect();
        let bfs = member_boundaries(&members, &og, &ig, (3000.0, 3000.0));
        assert_eq!(bfs.len(), 3);
        for (m, bf) in bfs.iter().enumerate() {
            assert!((bf.u.at(4, 4, 0) - m as f64).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_levels_rejected() {
        let og = outer_grid();
        let ig = GridSpec::new(9, 9, 500.0, VerticalCoord::uniform(6, 4000.0));
        let outer = ModelState::<f64>::zeros(&og);
        let _ = outer_to_inner_boundary(&outer, &og, &ig, (0.0, 0.0));
    }
}
