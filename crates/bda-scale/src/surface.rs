//! Beljaars-type bulk surface fluxes.
//!
//! Bulk aerodynamic formulae with a Louis/Beljaars-style stability
//! correction: exchange coefficients are enhanced in unstable (convective)
//! conditions and suppressed in stable stratification. The gustiness term
//! keeps fluxes alive in the free-convection limit — Beljaars' (1991)
//! signature fix.

use crate::constants::*;
use serde::{Deserialize, Serialize};

/// Surface-layer parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SurfaceParams {
    /// Roughness length, m.
    pub z0: f64,
    /// Beljaars free-convection gustiness, m/s.
    pub gustiness: f64,
    /// Moisture availability (1 = ocean, < 1 over land).
    pub moisture_availability: f64,
}

impl Default for SurfaceParams {
    fn default() -> Self {
        Self {
            z0: 0.1,
            gustiness: 0.5,
            moisture_availability: 0.8,
        }
    }
}

/// Kinematic surface fluxes for one column.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SurfaceFluxes {
    /// Kinematic heat flux, K m/s (positive upward = heating the air).
    pub theta_flux: f64,
    /// Kinematic moisture flux, kg/kg m/s.
    pub qv_flux: f64,
    /// Drag velocity `C_d |U|`, m/s (multiplies the lowest-level wind for
    /// the momentum sink).
    pub drag: f64,
}

/// Louis (1979)-style stability function applied to the neutral exchange
/// coefficient, given a bulk Richardson number.
fn stability_factor(rib: f64) -> f64 {
    if rib < 0.0 {
        // Unstable: enhancement, saturating to avoid runaway at free
        // convection (the gustiness handles that limit).
        1.0 + 7.0 * (-rib) / (1.0 + 5.0 * (-rib).sqrt())
    } else {
        // Stable: suppression.
        let f = 1.0 / (1.0 + 5.0 * rib);
        f * f
    }
}

/// Compute bulk fluxes from the lowest-model-level state.
///
/// * `u1`, `v1` — lowest-level wind (m/s)
/// * `theta1` — lowest-level potential temperature (K, full value)
/// * `qv1` — lowest-level vapor mixing ratio (kg/kg)
/// * `z1` — height of the lowest level (m)
/// * `t_sfc` — surface (skin) temperature (K)
/// * `p_sfc` — surface pressure (Pa)
#[allow(clippy::too_many_arguments)]
pub fn bulk_fluxes(
    params: &SurfaceParams,
    u1: f64,
    v1: f64,
    theta1: f64,
    qv1: f64,
    z1: f64,
    t_sfc: f64,
    p_sfc: f64,
) -> SurfaceFluxes {
    let wind = (u1 * u1 + v1 * v1).sqrt().hypot(params.gustiness);

    // Surface potential temperature (Exner at the surface ~ surface p).
    let theta_sfc = t_sfc / exner(p_sfc);
    let qsat_sfc = q_sat_liquid(t_sfc, p_sfc);

    // Bulk Richardson number over the lowest layer.
    let thv1 = theta1 * (1.0 + 0.61 * qv1);
    let thv_sfc = theta_sfc * (1.0 + 0.61 * qsat_sfc * params.moisture_availability);
    let rib = GRAV * z1 * (thv1 - thv_sfc) / (thv1 * wind * wind).max(1e-6);

    // Neutral coefficient from the log law.
    let cn = (KARMAN / (z1 / params.z0).ln()).powi(2);
    let c = cn * stability_factor(rib);

    SurfaceFluxes {
        theta_flux: c * wind * (theta_sfc - theta1),
        qv_flux: c * wind * params.moisture_availability * (qsat_sfc - qv1),
        drag: c * wind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Z1: f64 = 50.0;
    const PSFC: f64 = 101_325.0;

    #[test]
    fn warm_surface_gives_upward_heat_flux() {
        let f = bulk_fluxes(
            &SurfaceParams::default(),
            5.0,
            0.0,
            300.0,
            0.010,
            Z1,
            303.0,
            PSFC,
        );
        assert!(f.theta_flux > 0.0, "theta_flux = {}", f.theta_flux);
        assert!(f.drag > 0.0);
    }

    #[test]
    fn cold_surface_gives_downward_heat_flux() {
        let f = bulk_fluxes(
            &SurfaceParams::default(),
            5.0,
            0.0,
            305.0,
            0.010,
            Z1,
            295.0,
            PSFC,
        );
        assert!(f.theta_flux < 0.0);
    }

    #[test]
    fn dry_air_over_ocean_gets_moisture() {
        let f = bulk_fluxes(
            &SurfaceParams::default(),
            5.0,
            0.0,
            300.0,
            0.002,
            Z1,
            300.0,
            PSFC,
        );
        assert!(f.qv_flux > 0.0);
    }

    #[test]
    fn unstable_fluxes_exceed_stable_at_same_gradient() {
        // Same |delta theta| but opposite sign: unstable must transfer more.
        let unstable = bulk_fluxes(
            &SurfaceParams::default(),
            3.0,
            0.0,
            298.0,
            0.008,
            Z1,
            302.0,
            PSFC,
        );
        let stable = bulk_fluxes(
            &SurfaceParams::default(),
            3.0,
            0.0,
            306.0,
            0.008,
            Z1,
            302.0,
            PSFC,
        );
        assert!(unstable.theta_flux.abs() > stable.theta_flux.abs());
    }

    #[test]
    fn gustiness_sustains_fluxes_at_calm() {
        let f = bulk_fluxes(
            &SurfaceParams::default(),
            0.0,
            0.0,
            298.0,
            0.008,
            Z1,
            303.0,
            PSFC,
        );
        assert!(f.theta_flux > 0.0, "free-convection limit dead: {f:?}");
    }

    #[test]
    fn drag_grows_with_wind() {
        let slow = bulk_fluxes(
            &SurfaceParams::default(),
            2.0,
            0.0,
            300.0,
            0.01,
            Z1,
            300.0,
            PSFC,
        );
        let fast = bulk_fluxes(
            &SurfaceParams::default(),
            15.0,
            0.0,
            300.0,
            0.01,
            Z1,
            300.0,
            PSFC,
        );
        assert!(fast.drag > slow.drag);
    }

    #[test]
    fn rough_surface_has_more_drag() {
        let smooth = SurfaceParams {
            z0: 0.001,
            ..SurfaceParams::default()
        };
        let rough = SurfaceParams {
            z0: 0.5,
            ..SurfaceParams::default()
        };
        let fs = bulk_fluxes(&smooth, 8.0, 0.0, 300.0, 0.01, Z1, 300.0, PSFC);
        let fr = bulk_fluxes(&rough, 8.0, 0.0, 300.0, 0.01, Z1, 300.0, PSFC);
        assert!(fr.drag > fs.drag);
    }

    #[test]
    fn moisture_availability_scales_evaporation() {
        let ocean = SurfaceParams {
            moisture_availability: 1.0,
            ..SurfaceParams::default()
        };
        let desert = SurfaceParams {
            moisture_availability: 0.05,
            ..SurfaceParams::default()
        };
        let fo = bulk_fluxes(&ocean, 5.0, 0.0, 300.0, 0.002, Z1, 300.0, PSFC);
        let fd = bulk_fluxes(&desert, 5.0, 0.0, 300.0, 0.002, Z1, 300.0, PSFC);
        assert!(fo.qv_flux > 10.0 * fd.qv_flux);
    }

    #[test]
    fn stability_factor_properties() {
        assert!((stability_factor(0.0) - 1.0).abs() < 1e-12);
        assert!(stability_factor(-1.0) > 1.0);
        assert!(stability_factor(1.0) < 1.0);
        assert!(stability_factor(10.0) > 0.0);
    }
}
