//! Hydrostatically balanced base state and idealized soundings.
//!
//! The quasi-compressible dynamics integrate *perturbations* about a
//! horizontally homogeneous, hydrostatically balanced reference column
//! (theta0, rho0, pi0). Sounding generators provide the dry-stable profile
//! for dynamics tests and a Weisman–Klemp-style convectively unstable profile
//! for the heavy-rain OSSE experiments.

use crate::constants::*;
use bda_grid::VerticalCoord;
use bda_num::Real;
use serde::{Deserialize, Serialize};

/// An idealized sounding: profiles of potential temperature, vapor mixing
/// ratio and horizontal wind as functions of height.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sounding {
    /// Surface pressure, Pa.
    pub p_surface: f64,
    /// Potential temperature at height z (sampled by the builder).
    pub theta_surface: f64,
    /// theta lapse in the troposphere, K/m.
    pub dtheta_dz_tropo: f64,
    /// Tropopause height, m.
    pub z_tropopause: f64,
    /// theta lapse above the tropopause, K/m.
    pub dtheta_dz_strato: f64,
    /// Surface relative humidity (0..1).
    pub rh_surface: f64,
    /// e-folding height of the humidity profile, m.
    pub rh_scale_height: f64,
    /// Surface zonal wind, m/s.
    pub u_surface: f64,
    /// Zonal shear, 1/s, applied up to `shear_depth`.
    pub u_shear: f64,
    /// Depth of the shear layer, m.
    pub shear_depth: f64,
    /// Meridional wind (constant), m/s.
    pub v_constant: f64,
}

impl Sounding {
    /// Dry, stable midlatitude profile (for dynamics-only tests).
    pub fn dry_stable() -> Self {
        Self {
            p_surface: 101_325.0,
            theta_surface: 300.0,
            dtheta_dz_tropo: 4.0e-3,
            z_tropopause: 12_000.0,
            dtheta_dz_strato: 20.0e-3,
            rh_surface: 0.0,
            rh_scale_height: 3000.0,
            u_surface: 0.0,
            u_shear: 0.0,
            shear_depth: 5000.0,
            v_constant: 0.0,
        }
    }

    /// Convectively unstable, moist, sheared profile in the spirit of
    /// Weisman & Klemp (1982) — the environment that produces the heavy
    /// convective rain the BDA system targets.
    pub fn convective() -> Self {
        Self {
            p_surface: 101_325.0,
            theta_surface: 302.0,
            dtheta_dz_tropo: 2.6e-3,
            z_tropopause: 12_000.0,
            dtheta_dz_strato: 22.0e-3,
            rh_surface: 0.90,
            rh_scale_height: 3500.0,
            u_surface: 2.0,
            u_shear: 2.5e-3,
            shear_depth: 6000.0,
            v_constant: 1.0,
        }
    }

    /// Potential temperature at height z.
    pub fn theta(&self, z: f64) -> f64 {
        if z <= self.z_tropopause {
            self.theta_surface + self.dtheta_dz_tropo * z
        } else {
            self.theta_surface
                + self.dtheta_dz_tropo * self.z_tropopause
                + self.dtheta_dz_strato * (z - self.z_tropopause)
        }
    }

    /// Relative humidity at height z (dries out above the tropopause).
    pub fn rh(&self, z: f64) -> f64 {
        if z > self.z_tropopause {
            return 0.05f64.min(self.rh_surface);
        }
        self.rh_surface * (-z / self.rh_scale_height).exp().max(0.05)
    }

    /// Zonal wind at height z.
    pub fn u(&self, z: f64) -> f64 {
        self.u_surface + self.u_shear * z.min(self.shear_depth)
    }
}

/// Hydrostatically balanced reference column, precomputed in `f64` and
/// stored at the model precision `T` for the hot loops.
#[derive(Clone, Debug)]
pub struct BaseState<T> {
    /// Potential temperature at cell centers.
    pub theta0: Vec<T>,
    /// Potential temperature interpolated to z-faces (length nz + 1).
    pub theta0_face: Vec<T>,
    /// Dry density at cell centers.
    pub rho0: Vec<T>,
    /// Density at z-faces (length nz + 1).
    pub rho0_face: Vec<T>,
    /// Exner function at cell centers.
    pub pi0: Vec<T>,
    /// Pressure at cell centers, Pa.
    pub p0: Vec<T>,
    /// Temperature at cell centers, K.
    pub t0: Vec<T>,
    /// Base vapor mixing ratio (the environment moisture), kg/kg.
    pub qv0: Vec<T>,
    /// Base zonal wind.
    pub u0: Vec<T>,
    /// Base meridional wind.
    pub v0: Vec<T>,
    /// HEVI coefficient `rho0_face * theta0_face` (length nz + 1).
    pub a_face: Vec<T>,
    /// HEVI coefficient `cs^2 / (cp * rho0 * theta0^2)` at centers.
    pub b_center: Vec<T>,
}

impl<T: Real> BaseState<T> {
    /// Build a balanced base state from a sounding on the given vertical
    /// coordinate, with the configured effective sound speed.
    pub fn from_sounding(sounding: &Sounding, vc: &VerticalCoord, sound_speed: f64) -> Self {
        let nz = vc.nz();
        // --- f64 construction pass ---
        let theta: Vec<f64> = vc.z_center.iter().map(|&z| sounding.theta(z)).collect();

        // First guess qv from RH at a provisional pressure; we iterate the
        // hydrostatic integration twice so moisture and pressure converge.
        let mut qv = vec![0.0_f64; nz];
        let mut p = vec![sounding.p_surface; nz];
        for _iter in 0..3 {
            // Hydrostatic integration of the Exner function with theta_v.
            let mut pi_c = vec![0.0_f64; nz];
            let mut pi_prev = exner(sounding.p_surface); // at surface face
            let mut z_prev = 0.0;
            for k in 0..nz {
                let thv = theta[k] * (1.0 + 0.61 * qv[k]);
                let dz = vc.z_center[k] - z_prev;
                pi_c[k] = pi_prev - GRAV / (CP * thv) * dz;
                pi_prev = pi_c[k];
                z_prev = vc.z_center[k];
            }
            for k in 0..nz {
                p[k] = pressure_from_exner(pi_c[k]);
                let t = theta[k] * pi_c[k];
                qv[k] = sounding.rh(vc.z_center[k]) * q_sat_liquid(t, p[k]);
            }
        }

        let pi_c: Vec<f64> = p.iter().map(|&pk| exner(pk)).collect();
        let t_c: Vec<f64> = (0..nz).map(|k| theta[k] * pi_c[k]).collect();
        let rho: Vec<f64> = (0..nz)
            .map(|k| p[k] / (RD * t_c[k] * (1.0 + 0.61 * qv[k])))
            .collect();

        // Face interpolation (linear in z; clamp at the boundaries).
        let face_interp = |center: &[f64]| -> Vec<f64> {
            let mut out = Vec::with_capacity(nz + 1);
            out.push(center[0]);
            for k in 1..nz {
                let z_f = vc.z_face[k];
                let w = (z_f - vc.z_center[k - 1]) / (vc.z_center[k] - vc.z_center[k - 1]);
                out.push(center[k - 1] * (1.0 - w) + center[k] * w);
            }
            out.push(center[nz - 1]);
            out
        };
        let theta_f = face_interp(&theta);
        let rho_f = face_interp(&rho);

        let cs2 = sound_speed * sound_speed;
        let to_t = |v: &[f64]| -> Vec<T> { v.iter().map(|&x| T::of(x)).collect() };

        Self {
            theta0: to_t(&theta),
            theta0_face: to_t(&theta_f),
            rho0: to_t(&rho),
            rho0_face: to_t(&rho_f),
            pi0: to_t(&pi_c),
            p0: to_t(&p),
            t0: to_t(&t_c),
            qv0: to_t(&qv),
            u0: vc.z_center.iter().map(|&z| T::of(sounding.u(z))).collect(),
            v0: vec![T::of(sounding.v_constant); nz],
            a_face: (0..=nz).map(|k| T::of(rho_f[k] * theta_f[k])).collect(),
            b_center: (0..nz)
                .map(|k| T::of(cs2 / (CP * rho[k] * theta[k] * theta[k])))
                .collect(),
        }
    }

    pub fn nz(&self) -> usize {
        self.theta0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VerticalCoord {
        VerticalCoord::stretched(40, 16_400.0, 1.05)
    }

    #[test]
    fn pressure_decreases_monotonically() {
        let b = BaseState::<f64>::from_sounding(&Sounding::dry_stable(), &vc(), 340.0);
        for k in 1..b.nz() {
            assert!(b.p0[k] < b.p0[k - 1], "p not decreasing at {k}");
        }
        // Surface-adjacent pressure close to but below p_surface.
        assert!(b.p0[0] < 101_325.0 && b.p0[0] > 95_000.0);
    }

    #[test]
    fn density_is_physical() {
        let b = BaseState::<f64>::from_sounding(&Sounding::convective(), &vc(), 340.0);
        assert!(
            b.rho0[0] > 1.0 && b.rho0[0] < 1.3,
            "rho_sfc = {}",
            b.rho0[0]
        );
        let top = b.nz() - 1;
        assert!(b.rho0[top] < 0.4, "rho_top = {}", b.rho0[top]);
        for k in 0..b.nz() {
            assert!(b.rho0[k] > 0.0 && b.rho0[k].is_finite());
        }
    }

    #[test]
    fn hydrostatic_balance_residual_is_small() {
        // dp/dz between adjacent centers should match -g * rho_face.
        let v = vc();
        let b = BaseState::<f64>::from_sounding(&Sounding::dry_stable(), &v, 340.0);
        for k in 1..b.nz() {
            let dz = v.z_center[k] - v.z_center[k - 1];
            let dpdz = (b.p0[k] - b.p0[k - 1]) / dz;
            let expected = -GRAV * b.rho0_face[k];
            let rel = (dpdz - expected).abs() / expected.abs();
            assert!(rel < 0.03, "level {k}: dp/dz {dpdz} vs {expected}");
        }
    }

    #[test]
    fn convective_sounding_is_moist_at_low_levels() {
        let b = BaseState::<f64>::from_sounding(&Sounding::convective(), &vc(), 340.0);
        assert!(b.qv0[0] > 0.010, "surface qv = {}", b.qv0[0]);
        let top = b.nz() - 1;
        assert!(b.qv0[top] < 1e-4, "stratospheric qv = {}", b.qv0[top]);
    }

    #[test]
    fn theta_increases_with_height_for_stable_profiles() {
        for s in [Sounding::dry_stable(), Sounding::convective()] {
            let b = BaseState::<f64>::from_sounding(&s, &vc(), 340.0);
            for k in 1..b.nz() {
                assert!(b.theta0[k] > b.theta0[k - 1]);
            }
        }
    }

    #[test]
    fn face_arrays_have_nz_plus_one_entries() {
        let b = BaseState::<f32>::from_sounding(&Sounding::dry_stable(), &vc(), 340.0);
        assert_eq!(b.theta0_face.len(), b.nz() + 1);
        assert_eq!(b.rho0_face.len(), b.nz() + 1);
        assert_eq!(b.a_face.len(), b.nz() + 1);
        assert_eq!(b.b_center.len(), b.nz());
    }

    #[test]
    fn shear_profile_caps_at_shear_depth() {
        let s = Sounding::convective();
        assert!((s.u(s.shear_depth) - s.u(s.shear_depth + 5000.0)).abs() < 1e-12);
        assert!(s.u(3000.0) > s.u(0.0));
    }

    #[test]
    fn single_precision_base_state_is_finite() {
        let b = BaseState::<f32>::from_sounding(&Sounding::convective(), &vc(), 150.0);
        for k in 0..b.nz() {
            assert!(b.b_center[k].is_finite() && b.b_center[k] > 0.0);
        }
    }
}
