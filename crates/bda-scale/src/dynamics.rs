//! HEVI quasi-compressible dynamical core.
//!
//! Table 3 of the paper specifies the integration type: *"Hybrid (explicit in
//! the horizontal, implicit in the vertical)"*. This module implements that
//! structure for the quasi-compressible equations linearized about the
//! balanced base state:
//!
//! * horizontal momentum and the horizontal part of the pressure (Exner)
//!   equation are integrated forward-backward explicitly;
//! * the vertically propagating acoustic coupling between `w` and `pi'` is
//!   integrated fully implicitly, reducing to one tridiagonal solve per
//!   column ([`bda_num::tridiag`]), exactly the solver structure SCALE uses.
//!
//! The prognostic pressure variable is the Exner perturbation `pi'` with
//! `d pi'/dt = -cs^2/(cp rho0 theta0^2) div(rho0 theta0 u)`, the standard
//! Klemp–Wilhelmson quasi-compressible closure.

use crate::advect::{momentum_advection, w_center_col, Metrics};
use crate::base::BaseState;
use crate::config::ModelConfig;
use crate::constants::{CP, GRAV};
use crate::state::ModelState;
use bda_grid::Field3;
use bda_num::timing::{self, Kernel};
use bda_num::tridiag::ThomasFactor;
use bda_num::Real;

/// Fraction of the column depth occupied by the top sponge layer.
const SPONGE_FRAC: f64 = 0.15;
/// Sponge e-folding time at the model top, s.
const SPONGE_TAU: f64 = 100.0;

/// Reusable buffers for one dynamics step.
pub struct DynWorkspace<T> {
    tu: Field3<T>,
    tv: Field3<T>,
    tw: Field3<T>,
    /// Horizontal divergence of (rho0 theta0 u, rho0 theta0 v) at centers.
    div_h: Field3<T>,
    /// Horizontal Laplacian scratch for the hyperdiffusion.
    lap: Field3<T>,
    /// Shared vertical-operator factorization: the HEVI coefficients depend
    /// only on the level, so one factorization per step serves every column.
    tri: ThomasFactor<T>,
    sub: Vec<T>,
    diag: Vec<T>,
    sup: Vec<T>,
    /// Per-face implicit coupling coefficient `dt cp theta0_f / dzc`,
    /// computed once per step (it depends only on the level).
    cface: Vec<T>,
    /// One x-row of right-hand sides, `[level][j]` — the blocked solve tile.
    rhs_block: Vec<T>,
    /// Sponge damping coefficient per level (1/s).
    sponge: Vec<T>,
}

impl<T: Real> DynWorkspace<T> {
    pub fn new(cfg: &ModelConfig) -> Self {
        let g = &cfg.grid;
        let nz = g.nz();
        let f = || Field3::zeros(g.nx, g.ny, nz, crate::state::HALO);
        let z_top = g.vertical.z_top();
        let z_sponge = z_top * (1.0 - SPONGE_FRAC);
        let sponge = (0..nz)
            .map(|k| {
                let z = g.vertical.z_center[k];
                if z <= z_sponge {
                    T::zero()
                } else {
                    let s = (z - z_sponge) / (z_top - z_sponge);
                    T::of(s * s / SPONGE_TAU)
                }
            })
            .collect();
        Self {
            tu: f(),
            tv: f(),
            tw: f(),
            div_h: f(),
            lap: f(),
            tri: ThomasFactor::new(),
            sub: vec![T::zero(); nz],
            diag: vec![T::zero(); nz],
            sup: vec![T::zero(); nz],
            cface: vec![T::zero(); nz + 1],
            rhs_block: vec![T::zero(); nz * g.ny],
            sponge,
        }
    }
}

/// One HEVI dynamics step: updates `u`, `v`, `w`, `pi` (and the theta
/// base-state vertical advection term). Halos must be filled on entry.
// Every `k±1` stencil access sits behind an explicit `k == 0` / `k + 1 < nz`
// boundary branch or a loop over `1..nz`; column slices and workspace
// buffers are sized to nz (or nz+1 for faces) at construction.
// bda-check: allow(panic_path)
pub fn step_dynamics<T: Real>(
    state: &mut ModelState<T>,
    base: &BaseState<T>,
    cfg: &ModelConfig,
    m: &Metrics<T>,
    ws: &mut DynWorkspace<T>,
) {
    let g = &cfg.grid;
    let (nx, ny, nz) = (g.nx as isize, g.ny as isize, g.nz());
    let dt = T::of(cfg.dt);
    let cp = T::of(CP);
    let grav = T::of(GRAV);
    let f_cor = T::of(cfg.coriolis_f);

    // --- explicit tendencies: advection ---
    momentum_advection(
        &state.u, &state.v, &state.w, m, &mut ws.tu, &mut ws.tv, &mut ws.tw,
    );

    // --- horizontal pressure gradient, Coriolis, buoyancy ---
    // Column-sliced: each (i,j) hoists its stencil columns once and the k
    // loop runs on contiguous slices. Arithmetic per cell is unchanged, so
    // the update is bit-identical to the indexed form.
    let quarter = T::of(0.25);
    for i in 0..nx {
        for j in 0..ny {
            let pic = state.pi.column(i, j);
            let pixm = state.pi.column(i - 1, j);
            let piym = state.pi.column(i, j - 1);
            let vxm = state.v.column(i - 1, j);
            let vxm_yp = state.v.column(i - 1, j + 1);
            let vc = state.v.column(i, j);
            let vyp = state.v.column(i, j + 1);
            let uym = state.u.column(i, j - 1);
            let uxp_ym = state.u.column(i + 1, j - 1);
            let ucl = state.u.column(i, j);
            let uxp = state.u.column(i + 1, j);
            let thc = state.theta.column(i, j);
            let qvc = state.qv.column(i, j);
            let qcc = state.qc.column(i, j);
            let qrc = state.qr.column(i, j);
            let qic = state.qi.column(i, j);
            let qsc = state.qs.column(i, j);
            let qgc = state.qg.column(i, j);
            let cond = |k: usize| qcc[k] + qrc[k] + qic[k] + qsc[k] + qgc[k];
            let tuc = ws.tu.column_mut(i, j);
            let tvc = ws.tv.column_mut(i, j);
            let twc = ws.tw.column_mut(i, j);
            for k in 0..nz {
                // u face (i, j): PGF = -cp theta0 d(pi')/dx.
                let pgf_u = -cp * base.theta0[k] * (pic[k] - pixm[k]) * m.inv_dx;
                let v_at_u = (vxm[k] + vxm_yp[k] + vc[k] + vyp[k]) * quarter;
                tuc[k] += pgf_u + f_cor * (v_at_u - base.v0[k]);

                let pgf_v = -cp * base.theta0[k] * (pic[k] - piym[k]) * m.inv_dx;
                let u_at_v = (uym[k] + uxp_ym[k] + ucl[k] + uxp[k]) * quarter;
                tvc[k] += pgf_v - f_cor * (u_at_v - base.u0[k]);

                // w face k (skip the rigid surface face k = 0): buoyancy.
                if k > 0 {
                    let th_f = (thc[k - 1] + thc[k]) * T::half();
                    let qv_f = (qvc[k - 1] + qvc[k]) * T::half();
                    let qv0_f = (base.qv0[k - 1] + base.qv0[k]) * T::half();
                    let qc_f = (cond(k - 1) + cond(k)) * T::half();
                    let buoy =
                        grav * (th_f / base.theta0_face[k] + T::of(0.61) * (qv_f - qv0_f) - qc_f);
                    twc[k] += buoy;
                }
            }
        }
    }

    // --- 4th-order horizontal hyperdiffusion on momentum and theta ---
    if cfg.hyperdiffusion > 0.0 {
        let k4 = T::of(cfg.hyperdiffusion * g.dx.powi(4) / cfg.dt);
        apply_hyperdiffusion(&state.u, k4, m, &mut ws.lap, &mut ws.tu);
        apply_hyperdiffusion(&state.v, k4, m, &mut ws.lap, &mut ws.tv);
        apply_hyperdiffusion(&state.w, k4, m, &mut ws.lap, &mut ws.tw);
    }

    // --- divergence damping on the horizontal velocity (acoustic filter) ---
    if cfg.divergence_damping > 0.0 {
        let alpha = T::of(cfg.divergence_damping * cfg.sound_speed * cfg.sound_speed * cfg.dt);
        // ws.div_h temporarily holds plain velocity divergence.
        for i in 0..nx {
            for j in 0..ny {
                let ucl = state.u.column(i, j);
                let uxp = state.u.column(i + 1, j);
                let vc = state.v.column(i, j);
                let vyp = state.v.column(i, j + 1);
                let dc = ws.div_h.column_mut(i, j);
                for k in 0..nz {
                    dc[k] = (uxp[k] - ucl[k] + vyp[k] - vc[k]) * m.inv_dx;
                }
            }
        }
        cfg.halo.fill(&mut ws.div_h);
        for i in 0..nx {
            for j in 0..ny {
                let dc = ws.div_h.column(i, j);
                let dxm = ws.div_h.column(i - 1, j);
                let dym = ws.div_h.column(i, j - 1);
                let tuc = ws.tu.column_mut(i, j);
                let tvc = ws.tv.column_mut(i, j);
                for k in 0..nz {
                    tuc[k] += alpha * (dc[k] - dxm[k]) * m.inv_dx;
                    tvc[k] += alpha * (dc[k] - dym[k]) * m.inv_dx;
                }
            }
        }
    }

    // --- forward step for u, v (the "forward" half of forward-backward) ---
    for i in 0..nx {
        for j in 0..ny {
            let tuc = ws.tu.column(i, j);
            let uc = state.u.column_mut(i, j);
            for k in 0..nz {
                uc[k] += dt * tuc[k];
            }
            let tvc = ws.tv.column(i, j);
            let vc = state.v.column_mut(i, j);
            for k in 0..nz {
                vc[k] += dt * tvc[k];
            }
        }
    }
    cfg.halo.fill(&mut state.u);
    cfg.halo.fill(&mut state.v);

    // --- horizontal mass-flux divergence with the *updated* winds (the
    //     "backward" half), rho0 theta0 constant along levels ---
    for i in 0..nx {
        for j in 0..ny {
            let ucl = state.u.column(i, j);
            let uxp = state.u.column(i + 1, j);
            let vc = state.v.column(i, j);
            let vyp = state.v.column(i, j + 1);
            let dc = ws.div_h.column_mut(i, j);
            for k in 0..nz {
                let a_c = base.rho0[k] * base.theta0[k];
                dc[k] = a_c * (uxp[k] - ucl[k] + vyp[k] - vc[k]) * m.inv_dx;
            }
        }
    }

    // --- implicit vertical solve for w and pi' ---
    //
    // The tridiagonal coefficients depend only on the level, so the
    // operator is factored once per step and each x-row of columns is
    // swept as one `[level][j]` block: the forward/backward substitution
    // inner loop is then unit-stride across `j` (SIMD across columns),
    // while staying bit-identical to a column-at-a-time solve.
    let _timer = timing::guard(Kernel::Tridiag);
    let n_solve = nz - 1; // unknowns w[1..nz-1]
    let nyu = g.ny;
    if n_solve > 0 {
        for k in 1..nz {
            let c = dt * cp * base.theta0_face[k] / m.dzc[k];
            ws.cface[k] = c;
            let idx = k - 1;
            let b_up = base.b_center[k]; // B at cell above face k
            let b_dn = base.b_center[k - 1]; // B at cell below
            ws.diag[idx] = T::one()
                + c * dt
                    * (b_up * base.a_face[k] * m.inv_dz[k]
                        + b_dn * base.a_face[k] * m.inv_dz[k - 1]);
            ws.sup[idx] = -c * dt * b_up * base.a_face[k + 1] * m.inv_dz[k];
            ws.sub[idx] = -c * dt * b_dn * base.a_face[k - 1] * m.inv_dz[k - 1];
        }
        ws.tri
            .factor(&ws.sub[..n_solve], &ws.diag[..n_solve], &ws.sup[..n_solve]);
    }
    for i in 0..nx {
        if n_solve > 0 {
            // Fill the [level][j] block column by column: the reads are
            // then contiguous per column while the per-face coefficients
            // come from the precomputed `cface` (identical values, so the
            // block is bit-identical to the row-by-row fill).
            for ju in 0..nyu {
                let j = ju as isize;
                let wcol = state.w.column(i, j);
                let twc = ws.tw.column(i, j);
                let pic = state.pi.column(i, j);
                let dvc = ws.div_h.column(i, j);
                for k in 1..nz {
                    let c = ws.cface[k];
                    let b_up = base.b_center[k];
                    let b_dn = base.b_center[k - 1];
                    let w_star = wcol[k] + dt * twc[k];
                    let dpi = pic[k] - pic[k - 1];
                    let ddiv = b_up * dvc[k] - b_dn * dvc[k - 1];
                    ws.rhs_block[(k - 1) * nyu + ju] = w_star - c * dpi + c * dt * ddiv;
                }
            }
            ws.tri
                .solve_columns(&mut ws.rhs_block[..n_solve * nyu], nyu);
            for ju in 0..nyu {
                let j = ju as isize;
                let wcol = state.w.column_mut(i, j);
                for (k, w) in wcol.iter_mut().enumerate().take(nz).skip(1) {
                    *w = ws.rhs_block[(k - 1) * nyu + ju];
                }
            }
        }
        for j in 0..ny {
            // pi' update with the implicit w.
            let wcol = state.w.column(i, j);
            let dvc = ws.div_h.column(i, j);
            let pic = state.pi.column_mut(i, j);
            for k in 0..nz {
                let w_top = if k + 1 < nz { wcol[k + 1] } else { T::zero() };
                let w_bot = wcol[k];
                let vert = (base.a_face[k + 1] * w_top - base.a_face[k] * w_bot) * m.inv_dz[k];
                let dpi = -dt * base.b_center[k] * (dvc[k] + vert);
                pic[k] += dpi;
            }
            // theta': vertical advection of the base-state profile and the
            // top sponge on w.
            let wcol = state.w.column_mut(i, j);
            let thc = state.theta.column_mut(i, j);
            for k in 0..nz {
                let wc = w_center_col(&*wcol, k, nz);
                let dth0_dz = if k == 0 {
                    (base.theta0[1] - base.theta0[0]) / m.dzc[1]
                } else if k + 1 >= nz {
                    (base.theta0[k] - base.theta0[k - 1]) / m.dzc[k]
                } else {
                    (base.theta0[k + 1] - base.theta0[k - 1]) / (m.dzc[k] + m.dzc[k + 1])
                };
                thc[k] += -dt * wc * dth0_dz;
                if ws.sponge[k] > T::zero() {
                    let damp = T::one() / (T::one() + dt * ws.sponge[k]);
                    wcol[k] *= damp;
                    thc[k] *= damp;
                }
            }
        }
    }
}

/// Add `-k4 * laplacian(laplacian(f))` (horizontal only) to `tend`.
fn apply_hyperdiffusion<T: Real>(
    f: &Field3<T>,
    k4: T,
    m: &Metrics<T>,
    lap: &mut Field3<T>,
    tend: &mut Field3<T>,
) {
    let (nx, ny, nz, _) = f.shape();
    let inv_dx2 = m.inv_dx * m.inv_dx;
    let four = T::of(4.0);
    // Laplacian on the interior extended by one cell (uses halo width 2).
    for i in -1..=(nx as isize) {
        for j in -1..=(ny as isize) {
            let fc = f.column(i, j);
            let fxp = f.column(i + 1, j);
            let fxm = f.column(i - 1, j);
            let fyp = f.column(i, j + 1);
            let fym = f.column(i, j - 1);
            let lc = lap.column_mut(i, j);
            for k in 0..nz {
                lc[k] = (fxp[k] + fxm[k] + fyp[k] + fym[k] - four * fc[k]) * inv_dx2;
            }
        }
    }
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            let lc = lap.column(i, j);
            let lxp = lap.column(i + 1, j);
            let lxm = lap.column(i - 1, j);
            let lyp = lap.column(i, j + 1);
            let lym = lap.column(i, j - 1);
            let tc = tend.column_mut(i, j);
            for k in 0..nz {
                let l2 = (lxp[k] + lxm[k] + lyp[k] + lym[k] - four * lc[k]) * inv_dx2;
                tc[k] += -k4 * l2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;

    fn setup(nx: usize, nz: usize) -> (ModelConfig, BaseState<f64>, ModelState<f64>, Metrics<f64>) {
        let mut cfg = ModelConfig::reduced(nx, nx, nz);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.davies_width = 0;
        cfg.physics = crate::config::PhysicsSwitches::dry();
        let base =
            BaseState::from_sounding(&Sounding::dry_stable(), &cfg.grid.vertical, cfg.sound_speed);
        let state = ModelState::init_from_base(&cfg.grid, &base);
        let m = Metrics::new(&cfg.grid);
        (cfg, base, state, m)
    }

    fn step(
        cfg: &ModelConfig,
        base: &BaseState<f64>,
        state: &mut ModelState<f64>,
        m: &Metrics<f64>,
        ws: &mut DynWorkspace<f64>,
    ) {
        state.fill_halos(cfg.halo);
        step_dynamics(state, base, cfg, m, ws);
    }

    #[test]
    fn balanced_state_stays_balanced() {
        // A resting base state with no perturbation must stay at rest.
        let (mut cfg, base, mut state, m) = setup(8, 12);
        cfg.coriolis_f = 0.0;
        // Remove the background wind so "at rest" is exact.
        state.u.fill(0.0);
        state.v.fill(0.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..20 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        assert!(
            state.w.interior_max_abs() < 1e-10,
            "w = {}",
            state.w.interior_max_abs()
        );
        assert!(state.pi.interior_max_abs() < 1e-10);
        assert!(state.theta.interior_max_abs() < 1e-10);
    }

    #[test]
    fn warm_bubble_rises() {
        let (mut cfg, base, mut state, m) = setup(12, 16);
        cfg.coriolis_f = 0.0;
        state.u.fill(0.0);
        state.v.fill(0.0);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 2000.0, 2000.0, 1500.0, 2.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..60 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        // Updraft must develop above the bubble.
        let mut wmax = 0.0_f64;
        for i in 0..g.nx as isize {
            for j in 0..g.ny as isize {
                for k in 0..g.nz() {
                    wmax = wmax.max(state.w.at(i, j, k));
                }
            }
        }
        assert!(wmax > 0.1, "no updraft developed: wmax = {wmax}");
        assert!(state.all_finite());
    }

    #[test]
    fn cold_bubble_sinks() {
        let (mut cfg, base, mut state, m) = setup(12, 16);
        cfg.coriolis_f = 0.0;
        state.u.fill(0.0);
        state.v.fill(0.0);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 3000.0, 2000.0, 1500.0, -3.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..60 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        let mut wmin = 0.0_f64;
        for i in 0..g.nx as isize {
            for j in 0..g.ny as isize {
                for k in 0..g.nz() {
                    wmin = wmin.min(state.w.at(i, j, k));
                }
            }
        }
        assert!(wmin < -0.1, "no downdraft developed: wmin = {wmin}");
    }

    #[test]
    fn integration_is_acoustically_stable_over_many_steps() {
        let (mut cfg, base, mut state, m) = setup(10, 14);
        cfg.coriolis_f = 0.0;
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 1500.0, 1000.0, 1.0);
        let mut ws = DynWorkspace::new(&cfg);
        for n in 0..300 {
            step(&cfg, &base, &mut state, &m, &mut ws);
            assert!(state.all_finite(), "blow-up at step {n}");
        }
        // Perturbation energy stays bounded.
        assert!(state.w.interior_max_abs() < 30.0);
        assert!(state.pi.interior_max_abs() < 0.1);
    }

    #[test]
    fn surface_w_remains_zero() {
        let (cfg, base, mut state, m) = setup(8, 10);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 1500.0, 800.0, 2.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..30 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(state.w.at(i, j, 0), 0.0);
            }
        }
    }

    #[test]
    fn single_precision_integration_stays_finite() {
        let mut cfg = ModelConfig::reduced(10, 10, 12);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.physics = crate::config::PhysicsSwitches::dry();
        let base = BaseState::<f32>::from_sounding(
            &Sounding::dry_stable(),
            &cfg.grid.vertical,
            cfg.sound_speed,
        );
        let mut state = ModelState::<f32>::init_from_base(&cfg.grid, &base);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 2000.0, 1500.0, 1200.0, 2.0);
        let m = Metrics::new(&cfg.grid);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..100 {
            state.fill_halos(cfg.halo);
            step_dynamics(&mut state, &base, &cfg, &m, &mut ws);
        }
        assert!(state.all_finite());
        assert!(state.w.interior_max_abs() < 30.0);
    }

    #[test]
    fn buoyancy_generates_pressure_response() {
        // A rising bubble must generate a pi' field (mass continuity).
        let (mut cfg, base, mut state, m) = setup(10, 12);
        cfg.coriolis_f = 0.0;
        state.u.fill(0.0);
        state.v.fill(0.0);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 2000.0, 1500.0, 1200.0, 2.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..10 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        assert!(state.pi.interior_max_abs() > 1e-9);
    }
}
