//! HEVI quasi-compressible dynamical core.
//!
//! Table 3 of the paper specifies the integration type: *"Hybrid (explicit in
//! the horizontal, implicit in the vertical)"*. This module implements that
//! structure for the quasi-compressible equations linearized about the
//! balanced base state:
//!
//! * horizontal momentum and the horizontal part of the pressure (Exner)
//!   equation are integrated forward-backward explicitly;
//! * the vertically propagating acoustic coupling between `w` and `pi'` is
//!   integrated fully implicitly, reducing to one tridiagonal solve per
//!   column ([`bda_num::tridiag`]), exactly the solver structure SCALE uses.
//!
//! The prognostic pressure variable is the Exner perturbation `pi'` with
//! `d pi'/dt = -cs^2/(cp rho0 theta0^2) div(rho0 theta0 u)`, the standard
//! Klemp–Wilhelmson quasi-compressible closure.

use crate::advect::{momentum_advection, w_at_center, Metrics};
use crate::base::BaseState;
use crate::config::ModelConfig;
use crate::constants::{CP, GRAV};
use crate::state::ModelState;
use bda_grid::Field3;
use bda_num::tridiag::TridiagWorkspace;
use bda_num::Real;

/// Fraction of the column depth occupied by the top sponge layer.
const SPONGE_FRAC: f64 = 0.15;
/// Sponge e-folding time at the model top, s.
const SPONGE_TAU: f64 = 100.0;

/// Reusable buffers for one dynamics step.
pub struct DynWorkspace<T> {
    tu: Field3<T>,
    tv: Field3<T>,
    tw: Field3<T>,
    /// Horizontal divergence of (rho0 theta0 u, rho0 theta0 v) at centers.
    div_h: Field3<T>,
    /// Horizontal Laplacian scratch for the hyperdiffusion.
    lap: Field3<T>,
    tri: TridiagWorkspace<T>,
    sub: Vec<T>,
    diag: Vec<T>,
    sup: Vec<T>,
    rhs: Vec<T>,
    /// Sponge damping coefficient per level (1/s).
    sponge: Vec<T>,
}

impl<T: Real> DynWorkspace<T> {
    pub fn new(cfg: &ModelConfig) -> Self {
        let g = &cfg.grid;
        let nz = g.nz();
        let f = || Field3::zeros(g.nx, g.ny, nz, crate::state::HALO);
        let z_top = g.vertical.z_top();
        let z_sponge = z_top * (1.0 - SPONGE_FRAC);
        let sponge = (0..nz)
            .map(|k| {
                let z = g.vertical.z_center[k];
                if z <= z_sponge {
                    T::zero()
                } else {
                    let s = (z - z_sponge) / (z_top - z_sponge);
                    T::of(s * s / SPONGE_TAU)
                }
            })
            .collect();
        Self {
            tu: f(),
            tv: f(),
            tw: f(),
            div_h: f(),
            lap: f(),
            tri: TridiagWorkspace::new(nz),
            sub: vec![T::zero(); nz],
            diag: vec![T::zero(); nz],
            sup: vec![T::zero(); nz],
            rhs: vec![T::zero(); nz],
            sponge,
        }
    }
}

/// One HEVI dynamics step: updates `u`, `v`, `w`, `pi` (and the theta
/// base-state vertical advection term). Halos must be filled on entry.
pub fn step_dynamics<T: Real>(
    state: &mut ModelState<T>,
    base: &BaseState<T>,
    cfg: &ModelConfig,
    m: &Metrics<T>,
    ws: &mut DynWorkspace<T>,
) {
    let g = &cfg.grid;
    let (nx, ny, nz) = (g.nx as isize, g.ny as isize, g.nz());
    let dt = T::of(cfg.dt);
    let cp = T::of(CP);
    let grav = T::of(GRAV);
    let f_cor = T::of(cfg.coriolis_f);

    // --- explicit tendencies: advection ---
    momentum_advection(
        &state.u, &state.v, &state.w, m, &mut ws.tu, &mut ws.tv, &mut ws.tw,
    );

    // --- horizontal pressure gradient, Coriolis, buoyancy ---
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                // u face (i, j): PGF = -cp theta0 d(pi')/dx.
                let pgf_u = -cp
                    * base.theta0[k]
                    * (state.pi.at(i, j, k) - state.pi.at(i - 1, j, k))
                    * m.inv_dx;
                let v_at_u = (state.v.at(i - 1, j, k)
                    + state.v.at(i - 1, j + 1, k)
                    + state.v.at(i, j, k)
                    + state.v.at(i, j + 1, k))
                    * T::of(0.25);
                ws.tu.add_at(i, j, k, pgf_u + f_cor * (v_at_u - base.v0[k]));

                let pgf_v = -cp
                    * base.theta0[k]
                    * (state.pi.at(i, j, k) - state.pi.at(i, j - 1, k))
                    * m.inv_dx;
                let u_at_v = (state.u.at(i, j - 1, k)
                    + state.u.at(i + 1, j - 1, k)
                    + state.u.at(i, j, k)
                    + state.u.at(i + 1, j, k))
                    * T::of(0.25);
                ws.tv.add_at(i, j, k, pgf_v - f_cor * (u_at_v - base.u0[k]));

                // w face k (skip the rigid surface face k = 0): buoyancy.
                if k > 0 {
                    let th_f = (state.theta.at(i, j, k - 1) + state.theta.at(i, j, k)) * T::half();
                    let qv_f = (state.qv.at(i, j, k - 1) + state.qv.at(i, j, k)) * T::half();
                    let qv0_f = (base.qv0[k - 1] + base.qv0[k]) * T::half();
                    let qc_f =
                        (state.q_condensate(i, j, k - 1) + state.q_condensate(i, j, k)) * T::half();
                    let buoy =
                        grav * (th_f / base.theta0_face[k] + T::of(0.61) * (qv_f - qv0_f) - qc_f);
                    ws.tw.add_at(i, j, k, buoy);
                }
            }
        }
    }

    // --- 4th-order horizontal hyperdiffusion on momentum and theta ---
    if cfg.hyperdiffusion > 0.0 {
        let k4 = T::of(cfg.hyperdiffusion * g.dx.powi(4) / cfg.dt);
        apply_hyperdiffusion(&state.u, k4, m, &mut ws.lap, &mut ws.tu);
        apply_hyperdiffusion(&state.v, k4, m, &mut ws.lap, &mut ws.tv);
        apply_hyperdiffusion(&state.w, k4, m, &mut ws.lap, &mut ws.tw);
    }

    // --- divergence damping on the horizontal velocity (acoustic filter) ---
    if cfg.divergence_damping > 0.0 {
        let alpha = T::of(cfg.divergence_damping * cfg.sound_speed * cfg.sound_speed * cfg.dt);
        // ws.div_h temporarily holds plain velocity divergence.
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let d = (state.u.at(i + 1, j, k) - state.u.at(i, j, k)
                        + state.v.at(i, j + 1, k)
                        - state.v.at(i, j, k))
                        * m.inv_dx;
                    ws.div_h.set(i, j, k, d);
                }
            }
        }
        cfg.halo.fill(&mut ws.div_h);
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    ws.tu.add_at(
                        i,
                        j,
                        k,
                        alpha * (ws.div_h.at(i, j, k) - ws.div_h.at(i - 1, j, k)) * m.inv_dx,
                    );
                    ws.tv.add_at(
                        i,
                        j,
                        k,
                        alpha * (ws.div_h.at(i, j, k) - ws.div_h.at(i, j - 1, k)) * m.inv_dx,
                    );
                }
            }
        }
    }

    // --- forward step for u, v (the "forward" half of forward-backward) ---
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let nu = state.u.at(i, j, k) + dt * ws.tu.at(i, j, k);
                state.u.set(i, j, k, nu);
                let nv = state.v.at(i, j, k) + dt * ws.tv.at(i, j, k);
                state.v.set(i, j, k, nv);
            }
        }
    }
    cfg.halo.fill(&mut state.u);
    cfg.halo.fill(&mut state.v);

    // --- horizontal mass-flux divergence with the *updated* winds (the
    //     "backward" half), rho0 theta0 constant along levels ---
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let a_c = base.rho0[k] * base.theta0[k];
                let d = a_c
                    * (state.u.at(i + 1, j, k) - state.u.at(i, j, k) + state.v.at(i, j + 1, k)
                        - state.v.at(i, j, k))
                    * m.inv_dx;
                ws.div_h.set(i, j, k, d);
            }
        }
    }

    // --- implicit vertical solve for w and pi', column by column ---
    let n_solve = nz - 1; // unknowns w[1..nz-1]
    for i in 0..nx {
        for j in 0..ny {
            if n_solve > 0 {
                for k in 1..nz {
                    let c = dt * cp * base.theta0_face[k] / m.dzc[k];
                    let idx = k - 1;
                    let b_up = base.b_center[k]; // B at cell above face k
                    let b_dn = base.b_center[k - 1]; // B at cell below
                    ws.diag[idx] = T::one()
                        + c * dt
                            * (b_up * base.a_face[k] * m.inv_dz[k]
                                + b_dn * base.a_face[k] * m.inv_dz[k - 1]);
                    ws.sup[idx] = -c * dt * b_up * base.a_face[k + 1] * m.inv_dz[k];
                    ws.sub[idx] = -c * dt * b_dn * base.a_face[k - 1] * m.inv_dz[k - 1];
                    let w_star = state.w.at(i, j, k) + dt * ws.tw.at(i, j, k);
                    let dpi = state.pi.at(i, j, k) - state.pi.at(i, j, k - 1);
                    let ddiv = b_up * ws.div_h.at(i, j, k) - b_dn * ws.div_h.at(i, j, k - 1);
                    ws.rhs[idx] = w_star - c * dpi + c * dt * ddiv;
                }
                ws.tri.solve(
                    &ws.sub[..n_solve],
                    &ws.diag[..n_solve],
                    &ws.sup[..n_solve],
                    &mut ws.rhs[..n_solve],
                );
                for k in 1..nz {
                    state.w.set(i, j, k, ws.rhs[k - 1]);
                }
            }
            // pi' update with the implicit w.
            for k in 0..nz {
                let w_top = if k + 1 < nz {
                    state.w.at(i, j, k + 1)
                } else {
                    T::zero()
                };
                let w_bot = state.w.at(i, j, k);
                let vert = (base.a_face[k + 1] * w_top - base.a_face[k] * w_bot) * m.inv_dz[k];
                let dpi = -dt * base.b_center[k] * (ws.div_h.at(i, j, k) + vert);
                state.pi.add_at(i, j, k, dpi);
            }
            // theta': vertical advection of the base-state profile and the
            // top sponge on w.
            for k in 0..nz {
                let wc = w_at_center(&state.w, i, j, k, nz);
                let dth0_dz = if k == 0 {
                    (base.theta0[1] - base.theta0[0]) / m.dzc[1]
                } else if k + 1 >= nz {
                    (base.theta0[k] - base.theta0[k - 1]) / m.dzc[k]
                } else {
                    (base.theta0[k + 1] - base.theta0[k - 1]) / (m.dzc[k] + m.dzc[k + 1])
                };
                state.theta.add_at(i, j, k, -dt * wc * dth0_dz);
                if ws.sponge[k] > T::zero() {
                    let damp = T::one() / (T::one() + dt * ws.sponge[k]);
                    let wv = state.w.at(i, j, k) * damp;
                    state.w.set(i, j, k, wv);
                    let th = state.theta.at(i, j, k) * damp;
                    state.theta.set(i, j, k, th);
                }
            }
        }
    }
}

/// Add `-k4 * laplacian(laplacian(f))` (horizontal only) to `tend`.
fn apply_hyperdiffusion<T: Real>(
    f: &Field3<T>,
    k4: T,
    m: &Metrics<T>,
    lap: &mut Field3<T>,
    tend: &mut Field3<T>,
) {
    let (nx, ny, nz, _) = f.shape();
    let inv_dx2 = m.inv_dx * m.inv_dx;
    let four = T::of(4.0);
    // Laplacian on the interior extended by one cell (uses halo width 2).
    for i in -1..=(nx as isize) {
        for j in -1..=(ny as isize) {
            for k in 0..nz {
                let l =
                    (f.at(i + 1, j, k) + f.at(i - 1, j, k) + f.at(i, j + 1, k) + f.at(i, j - 1, k)
                        - four * f.at(i, j, k))
                        * inv_dx2;
                lap.set(i, j, k, l);
            }
        }
    }
    for i in 0..nx as isize {
        for j in 0..ny as isize {
            for k in 0..nz {
                let l2 = (lap.at(i + 1, j, k)
                    + lap.at(i - 1, j, k)
                    + lap.at(i, j + 1, k)
                    + lap.at(i, j - 1, k)
                    - four * lap.at(i, j, k))
                    * inv_dx2;
                tend.add_at(i, j, k, -k4 * l2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;

    fn setup(nx: usize, nz: usize) -> (ModelConfig, BaseState<f64>, ModelState<f64>, Metrics<f64>) {
        let mut cfg = ModelConfig::reduced(nx, nx, nz);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.davies_width = 0;
        cfg.physics = crate::config::PhysicsSwitches::dry();
        let base =
            BaseState::from_sounding(&Sounding::dry_stable(), &cfg.grid.vertical, cfg.sound_speed);
        let state = ModelState::init_from_base(&cfg.grid, &base);
        let m = Metrics::new(&cfg.grid);
        (cfg, base, state, m)
    }

    fn step(
        cfg: &ModelConfig,
        base: &BaseState<f64>,
        state: &mut ModelState<f64>,
        m: &Metrics<f64>,
        ws: &mut DynWorkspace<f64>,
    ) {
        state.fill_halos(cfg.halo);
        step_dynamics(state, base, cfg, m, ws);
    }

    #[test]
    fn balanced_state_stays_balanced() {
        // A resting base state with no perturbation must stay at rest.
        let (mut cfg, base, mut state, m) = setup(8, 12);
        cfg.coriolis_f = 0.0;
        // Remove the background wind so "at rest" is exact.
        state.u.fill(0.0);
        state.v.fill(0.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..20 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        assert!(
            state.w.interior_max_abs() < 1e-10,
            "w = {}",
            state.w.interior_max_abs()
        );
        assert!(state.pi.interior_max_abs() < 1e-10);
        assert!(state.theta.interior_max_abs() < 1e-10);
    }

    #[test]
    fn warm_bubble_rises() {
        let (mut cfg, base, mut state, m) = setup(12, 16);
        cfg.coriolis_f = 0.0;
        state.u.fill(0.0);
        state.v.fill(0.0);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 2000.0, 2000.0, 1500.0, 2.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..60 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        // Updraft must develop above the bubble.
        let mut wmax = 0.0_f64;
        for i in 0..g.nx as isize {
            for j in 0..g.ny as isize {
                for k in 0..g.nz() {
                    wmax = wmax.max(state.w.at(i, j, k));
                }
            }
        }
        assert!(wmax > 0.1, "no updraft developed: wmax = {wmax}");
        assert!(state.all_finite());
    }

    #[test]
    fn cold_bubble_sinks() {
        let (mut cfg, base, mut state, m) = setup(12, 16);
        cfg.coriolis_f = 0.0;
        state.u.fill(0.0);
        state.v.fill(0.0);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 3000.0, 2000.0, 1500.0, -3.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..60 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        let mut wmin = 0.0_f64;
        for i in 0..g.nx as isize {
            for j in 0..g.ny as isize {
                for k in 0..g.nz() {
                    wmin = wmin.min(state.w.at(i, j, k));
                }
            }
        }
        assert!(wmin < -0.1, "no downdraft developed: wmin = {wmin}");
    }

    #[test]
    fn integration_is_acoustically_stable_over_many_steps() {
        let (mut cfg, base, mut state, m) = setup(10, 14);
        cfg.coriolis_f = 0.0;
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 1500.0, 1000.0, 1.0);
        let mut ws = DynWorkspace::new(&cfg);
        for n in 0..300 {
            step(&cfg, &base, &mut state, &m, &mut ws);
            assert!(state.all_finite(), "blow-up at step {n}");
        }
        // Perturbation energy stays bounded.
        assert!(state.w.interior_max_abs() < 30.0);
        assert!(state.pi.interior_max_abs() < 0.1);
    }

    #[test]
    fn surface_w_remains_zero() {
        let (cfg, base, mut state, m) = setup(8, 10);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 1500.0, 800.0, 2.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..30 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(state.w.at(i, j, 0), 0.0);
            }
        }
    }

    #[test]
    fn single_precision_integration_stays_finite() {
        let mut cfg = ModelConfig::reduced(10, 10, 12);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.physics = crate::config::PhysicsSwitches::dry();
        let base = BaseState::<f32>::from_sounding(
            &Sounding::dry_stable(),
            &cfg.grid.vertical,
            cfg.sound_speed,
        );
        let mut state = ModelState::<f32>::init_from_base(&cfg.grid, &base);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 2000.0, 1500.0, 1200.0, 2.0);
        let m = Metrics::new(&cfg.grid);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..100 {
            state.fill_halos(cfg.halo);
            step_dynamics(&mut state, &base, &cfg, &m, &mut ws);
        }
        assert!(state.all_finite());
        assert!(state.w.interior_max_abs() < 30.0);
    }

    #[test]
    fn buoyancy_generates_pressure_response() {
        // A rising bubble must generate a pi' field (mass continuity).
        let (mut cfg, base, mut state, m) = setup(10, 12);
        cfg.coriolis_f = 0.0;
        state.u.fill(0.0);
        state.v.fill(0.0);
        let g = cfg.grid.clone();
        state.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 2000.0, 1500.0, 1200.0, 2.0);
        let mut ws = DynWorkspace::new(&cfg);
        for _ in 0..10 {
            step(&cfg, &base, &mut state, &m, &mut ws);
        }
        assert!(state.pi.interior_max_abs() > 1e-9);
    }
}
