//! # bda-scale — a SCALE-RM analogue: nonhydrostatic convective-scale model
//!
//! From-scratch reproduction of the model component of the BDA system
//! (SCALE-RM; Nishizawa et al. 2015), at the fidelity needed to reproduce the
//! paper's experiments:
//!
//! * **Dynamics** — quasi-compressible nonhydrostatic equations on an
//!   Arakawa-C grid integrated with the paper's HEVI strategy (Table 3:
//!   "explicit in the horizontal, implicit in the vertical"). Horizontal
//!   acoustic/advective terms are integrated forward-backward explicitly;
//!   vertically propagating acoustic modes are treated with a fully implicit
//!   tridiagonal solve per column (`bda_num::tridiag`).
//! * **Microphysics** — single-moment 6-category scheme (qv, qc, qr, qi, qs,
//!   qg) in the spirit of Tomita (2008): saturation adjustment,
//!   auto-conversion, accretion, melting/freezing, evaporation/sublimation
//!   and sedimentation with species-dependent terminal velocities.
//! * **Turbulence** — Smagorinsky (1963) horizontal mixing plus a prognostic
//!   TKE boundary-layer scheme of the MYNN level-2.5 class with implicit
//!   vertical diffusion.
//! * **Surface fluxes** — Beljaars-type bulk formulae with a stability
//!   correction.
//! * **Radiation** — a two-band clear-sky/cloud-modulated heating profile
//!   standing in for MSTRN-X (substitution documented in DESIGN.md).
//! * **Nesting & forcing** — synthetic "JMA mesoscale"-style boundary data
//!   drives the outer domain; the outer ensemble drives the inner 500-m
//!   domain through a Davies relaxation rim, matching Fig. 3b.
//! * **Ensembles** — containers and Rayon-parallel propagation for the
//!   1000-member analysis ensemble and the 11-member forecast ensemble.
//!
//! Everything is generic over [`bda_num::Real`], reproducing the paper's
//! single-precision conversion as a type parameter.

pub mod advect;
pub mod base;
pub mod config;
pub mod constants;
pub mod diagnostics;
pub mod dynamics;
pub mod ensemble;
pub mod forcing;
pub mod microphys;
pub mod model;
pub mod nesting;
pub mod radiation;
pub mod state;
pub mod surface;
pub mod turbulence;

pub use base::BaseState;
pub use config::{ModelConfig, PhysicsSwitches};
pub use ensemble::{Ensemble, EnsembleHealth, HealthBounds, MemberError, MemberHealth};
pub use model::Model;
pub use state::{ModelState, PrognosticVar, ANALYZED_VARS};
