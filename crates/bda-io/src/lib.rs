//! # bda-io — SCALE ↔ LETKF data exchange
//!
//! One of the paper's enabling innovations (§5): *"the data transfer between
//! SCALE and the LETKF was accelerated by replacing the original file I/O
//! with parallel I/O using the MPI data transfer with RAM copy and
//! node-to-node network communications without using files."*
//!
//! This crate provides both sides of that ablation behind one trait:
//!
//! * [`transport::FileTransport`] — the legacy pattern: every member's state
//!   is serialized to a file and read back by the consumer (what typical
//!   NWP systems, with their O(1 h) cycles, can afford — paper §4).
//! * [`transport::MemoryTransport`] — the BDA pattern: states move by RAM
//!   copy through an in-process queue, no filesystem involved.
//!
//! `bda-bench`'s `ablation_io_path` measures the contrast; the workflow
//! crate takes the transport as a parameter so the full cycle can run in
//! either mode.
//!
//! [`mod@format`] defines the self-describing binary member-state format used by
//! the file path (and by any external tooling); its checksum-trailer
//! convention lives in [`mod@frame`], shared with the `bda-serve` tile
//! codec. [`mod@checkpoint`] persists
//! whole-campaign snapshots (ensemble, RNG streams, cycle index, outcome
//! log) atomically with CRC validation so a killed campaign resumes
//! bit-for-bit.

pub mod checkpoint;
pub mod format;
pub mod frame;
pub mod transport;

pub use checkpoint::{
    checkpoint_file_name_scoped, latest_checkpoint, latest_checkpoint_scoped, read_checkpoint,
    valid_scope, write_checkpoint, write_checkpoint_scoped, CampaignSnapshot, CheckpointError,
    OutcomeRecord,
};
pub use format::{decode_states, encode_states};
pub use transport::{EnsembleTransport, FileTransport, MemoryTransport};
