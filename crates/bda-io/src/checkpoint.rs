//! Atomic, CRC-checked campaign checkpoints.
//!
//! The paper's operational run cycled for weeks; a crashed process must not
//! lose the campaign. A snapshot captures everything needed to resume a
//! cycling run bit-for-bit: the flat ensemble states (interiors only —
//! halos are refilled by the first model step), per-member clocks, every
//! RNG stream state, the index of the next cycle, and the supervisor's
//! per-cycle outcome log.
//!
//! Layout: magic `BDAC` (4) | version u16 | precision u8 (4 or 8) |
//! next_cycle u64 | time f64 | n_rng u32 + states u64 each |
//! k u64 | n u64 | per member: time f64 + n values (little-endian) |
//! n_outcomes u32 + records | CRC-32 (IEEE) u32 over everything before it.
//!
//! Durability: [`write_checkpoint`] writes to a temporary file in the same
//! directory, fsyncs it, then atomically renames it into place (and fsyncs
//! the directory on Unix). A `kill -9` at any instant leaves either the old
//! checkpoint, the new one, or a temp file that [`latest_checkpoint`]
//! ignores — never a half-written snapshot that validates.

use bda_num::Real;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BDAC";
const VERSION: u16 = 1;
const TMP_PREFIX: &str = ".tmp-";
const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".bdac";

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One line of the supervisor's outcome log, persisted so a resumed
/// campaign's final report covers the pre-crash cycles too. Deliberately
/// timing-free: two runs of the same campaign (interrupted or not) must
/// produce identical records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutcomeRecord {
    pub cycle: u64,
    /// Disposition label (`completed`, `degraded`, ...).
    pub label: String,
    /// Free-form note (quorum summary, degradation cause, ...).
    pub detail: String,
    /// Transfer retries consumed by the cycle.
    pub retries: u32,
}

/// Everything needed to resume a cycling campaign bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSnapshot<T> {
    /// Index of the next cycle to run on resume.
    pub next_cycle: u64,
    /// Campaign clock at the snapshot, model seconds.
    pub time: f64,
    /// RNG stream states in a caller-defined, stable order.
    pub rng_states: Vec<u64>,
    /// Flat states (caller-defined layout; by convention the truth/nature
    /// state may ride along as a leading extra entry).
    pub members: Vec<Vec<T>>,
    /// Model clock of each entry in `members`.
    pub member_times: Vec<f64>,
    /// Per-cycle outcome log up to (excluding) `next_cycle`.
    pub outcomes: Vec<OutcomeRecord>,
}

/// Checkpoint I/O and validation errors.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    TooShort,
    BadMagic,
    UnsupportedVersion(u16),
    PrecisionMismatch {
        file: u8,
        expected: u8,
    },
    ChecksumMismatch,
    Truncated,
    /// Encode-side: member `member` has `len` values, expected `expected`.
    RaggedEnsemble {
        member: usize,
        len: usize,
        expected: usize,
    },
    /// Encode-side: `member_times` must align with `members`.
    TimesMismatch {
        times: usize,
        members: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::TooShort => write!(f, "checkpoint too short"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::PrecisionMismatch { file, expected } => {
                write!(
                    f,
                    "precision mismatch: file {file} bytes, expected {expected}"
                )
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint CRC mismatch"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::RaggedEnsemble {
                member,
                len,
                expected,
            } => write!(
                f,
                "ragged ensemble: member {member} has {len} values, expected {expected}"
            ),
            CheckpointError::TimesMismatch { times, members } => {
                write!(f, "{times} member times for {members} members")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn precision_tag<T: Real>() -> u8 {
    std::mem::size_of::<T>() as u8
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(CheckpointError::Truncated);
    }
    let s = String::from_utf8_lossy(&buf[..len]).into_owned();
    buf.advance(len);
    Ok(s)
}

/// Encode a snapshot to its binary form (CRC trailer included).
pub fn encode_snapshot<T: Real>(snap: &CampaignSnapshot<T>) -> Result<Bytes, CheckpointError> {
    let k = snap.members.len();
    let n = snap.members.first().map(|m| m.len()).unwrap_or(0);
    for (i, m) in snap.members.iter().enumerate() {
        if m.len() != n {
            return Err(CheckpointError::RaggedEnsemble {
                member: i,
                len: m.len(),
                expected: n,
            });
        }
    }
    if snap.member_times.len() != k {
        return Err(CheckpointError::TimesMismatch {
            times: snap.member_times.len(),
            members: k,
        });
    }
    let prec = precision_tag::<T>() as usize;
    let mut buf = BytesMut::with_capacity(64 + snap.rng_states.len() * 8 + k * (8 + n * prec));
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u8(prec as u8);
    buf.put_u64(snap.next_cycle);
    buf.put_f64(snap.time);
    buf.put_u32(snap.rng_states.len() as u32);
    for &s in &snap.rng_states {
        buf.put_u64(s);
    }
    buf.put_u64(k as u64);
    buf.put_u64(n as u64);
    for (m, &t) in snap.members.iter().zip(&snap.member_times) {
        buf.put_f64(t);
        for &v in m {
            if prec == 4 {
                buf.put_f32_le(v.f64() as f32);
            } else {
                buf.put_f64_le(v.f64());
            }
        }
    }
    buf.put_u32(snap.outcomes.len() as u32);
    for o in &snap.outcomes {
        buf.put_u64(o.cycle);
        buf.put_u32(o.retries);
        put_string(&mut buf, &o.label);
        put_string(&mut buf, &o.detail);
    }
    let sum = crc32(&buf);
    buf.put_u32(sum);
    Ok(buf.freeze())
}

/// Decode and validate a snapshot.
pub fn decode_snapshot<T: Real>(data: &[u8]) -> Result<CampaignSnapshot<T>, CheckpointError> {
    // magic + version + precision + next_cycle + time + n_rng + k + n + n_outcomes + crc
    if data.len() < 4 + 2 + 1 + 8 + 8 + 4 + 8 + 8 + 4 + 4 {
        return Err(CheckpointError::TooShort);
    }
    let (payload, tail) = data.split_at(data.len() - 4);
    let expect = u32::from_be_bytes(tail.try_into().map_err(|_| CheckpointError::TooShort)?);
    if crc32(payload) != expect {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut buf = payload;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let prec = buf.get_u8();
    if prec != precision_tag::<T>() {
        return Err(CheckpointError::PrecisionMismatch {
            file: prec,
            expected: precision_tag::<T>(),
        });
    }
    let next_cycle = buf.get_u64();
    let time = buf.get_f64();
    let n_rng = buf.get_u32() as usize;
    if buf.remaining() < n_rng * 8 {
        return Err(CheckpointError::Truncated);
    }
    let rng_states: Vec<u64> = (0..n_rng).map(|_| buf.get_u64()).collect();
    if buf.remaining() < 16 {
        return Err(CheckpointError::Truncated);
    }
    let k = buf.get_u64() as usize;
    let n = buf.get_u64() as usize;
    if buf.remaining() < k * (8 + n * prec as usize) {
        return Err(CheckpointError::Truncated);
    }
    let mut members = Vec::with_capacity(k);
    let mut member_times = Vec::with_capacity(k);
    for _ in 0..k {
        member_times.push(buf.get_f64());
        let mut m = Vec::with_capacity(n);
        for _ in 0..n {
            let v = if prec == 4 {
                buf.get_f32_le() as f64
            } else {
                buf.get_f64_le()
            };
            m.push(T::of(v));
        }
        members.push(m);
    }
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let n_out = buf.get_u32() as usize;
    let mut outcomes = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        if buf.remaining() < 12 {
            return Err(CheckpointError::Truncated);
        }
        let cycle = buf.get_u64();
        let retries = buf.get_u32();
        let label = get_string(&mut buf)?;
        let detail = get_string(&mut buf)?;
        outcomes.push(OutcomeRecord {
            cycle,
            label,
            detail,
            retries,
        });
    }
    Ok(CampaignSnapshot {
        next_cycle,
        time,
        rng_states,
        members,
        member_times,
        outcomes,
    })
}

/// Canonical file name for a snapshot taken before cycle `next_cycle`.
pub fn checkpoint_file_name(next_cycle: u64) -> String {
    format!("{CKPT_PREFIX}{next_cycle:06}{CKPT_SUFFIX}")
}

/// A scope tag usable in checkpoint file names: non-empty ASCII
/// alphanumerics (shard ids like `s003`). Anything else — separators,
/// dots, empty strings — could collide with the name grammar itself.
pub fn valid_scope(scope: &str) -> bool {
    !scope.is_empty() && scope.bytes().all(|b| b.is_ascii_alphanumeric())
}

/// File name for a snapshot owned by `scope` (e.g. shard `s003`):
/// `ckpt-s003-000042.bdac`. `None` yields the unscoped
/// [`checkpoint_file_name`]. Scoped and unscoped names never collide:
/// the unscoped scan requires an all-digit stem, the scoped scan requires
/// its exact `scope-` prefix.
pub fn checkpoint_file_name_scoped(scope: Option<&str>, next_cycle: u64) -> String {
    match scope {
        Some(tag) => {
            assert!(valid_scope(tag), "invalid checkpoint scope `{tag}`");
            format!("{CKPT_PREFIX}{tag}-{next_cycle:06}{CKPT_SUFFIX}")
        }
        None => checkpoint_file_name(next_cycle),
    }
}

/// Atomically persist a snapshot under `dir` (created if missing).
///
/// Write-temp + fsync + rename (+ directory fsync on Unix): a crash at any
/// point leaves either no new file or a complete, CRC-valid one.
pub fn write_checkpoint<T: Real>(
    dir: &Path,
    snap: &CampaignSnapshot<T>,
) -> Result<PathBuf, CheckpointError> {
    write_checkpoint_scoped(dir, None, snap)
}

/// [`write_checkpoint`] under a scope tag, for co-located per-shard
/// checkpoint files that must never cross-resume.
pub fn write_checkpoint_scoped<T: Real>(
    dir: &Path,
    scope: Option<&str>,
    snap: &CampaignSnapshot<T>,
) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let bytes = encode_snapshot(snap)?;
    let final_name = checkpoint_file_name_scoped(scope, snap.next_cycle);
    let tmp_path = dir.join(format!("{TMP_PREFIX}{final_name}"));
    let final_path = dir.join(final_name);
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        std::io::Write::write_all(&mut f, &bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    #[cfg(unix)]
    {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(final_path)
}

/// Read and validate one checkpoint file.
pub fn read_checkpoint<T: Real>(path: &Path) -> Result<CampaignSnapshot<T>, CheckpointError> {
    let data = std::fs::read(path)?;
    decode_snapshot(&data)
}

/// Find the newest *valid* checkpoint in `dir`: candidates are scanned
/// newest-first (by cycle index in the file name) and the first one that
/// decodes and passes its CRC wins. Temp files and corrupt or truncated
/// snapshots are skipped, so a crash mid-write falls back to the previous
/// checkpoint instead of failing the resume.
pub fn latest_checkpoint<T: Real>(
    dir: &Path,
) -> Result<Option<(PathBuf, CampaignSnapshot<T>)>, CheckpointError> {
    latest_checkpoint_scoped(dir, None)
}

/// [`latest_checkpoint`] restricted to one scope tag. With `Some("s003")`
/// only `ckpt-s003-NNNNNN.bdac` files are candidates; with `None` only the
/// unscoped `ckpt-NNNNNN.bdac` names match — so shards sharing a directory
/// can never resume from each other's (or the campaign driver's) snapshots.
pub fn latest_checkpoint_scoped<T: Real>(
    dir: &Path,
    scope: Option<&str>,
) -> Result<Option<(PathBuf, CampaignSnapshot<T>)>, CheckpointError> {
    if let Some(tag) = scope {
        assert!(valid_scope(tag), "invalid checkpoint scope `{tag}`");
    }
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name
            .strip_prefix(CKPT_PREFIX)
            .and_then(|s| s.strip_suffix(CKPT_SUFFIX))
        else {
            continue;
        };
        let cycle_part = match scope {
            Some(tag) => match stem.strip_prefix(tag).and_then(|s| s.strip_prefix('-')) {
                Some(rest) => rest,
                None => continue,
            },
            None => stem,
        };
        // All-digit cycle stems only: an unscoped scan must never swallow
        // `s003-000042`, and a scoped scan must not accept trailing junk.
        if !cycle_part.is_empty() && cycle_part.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(cycle) = cycle_part.parse::<u64>() {
                candidates.push((cycle, entry.path()));
            }
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, path) in candidates {
        if let Ok(snap) = read_checkpoint::<T>(&path) {
            return Ok(Some((path, snap)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignSnapshot<f32> {
        CampaignSnapshot {
            next_cycle: 3,
            time: 90.0,
            rng_states: vec![0xDEAD_BEEF, 42],
            members: vec![vec![1.5_f32, -0.25, 3.75], vec![0.0, 1e-30, 1e30]],
            member_times: vec![90.0, 90.0],
            outcomes: vec![
                OutcomeRecord {
                    cycle: 0,
                    label: "completed".into(),
                    detail: "alive 4/4".into(),
                    retries: 0,
                },
                OutcomeRecord {
                    cycle: 1,
                    label: "degraded".into(),
                    detail: "alive 3/4, dead [2]".into(),
                    retries: 1,
                },
            ],
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let snap = sample();
        let bytes = encode_snapshot(&snap).unwrap();
        let back: CampaignSnapshot<f32> = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn bit_flip_anywhere_is_rejected() {
        let bytes = encode_snapshot(&sample()).unwrap().to_vec();
        for pos in [0, 7, bytes.len() / 2, bytes.len() - 5, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(
                matches!(
                    decode_snapshot::<f32>(&bad),
                    Err(CheckpointError::ChecksumMismatch) | Err(CheckpointError::BadMagic)
                ),
                "flip at {pos} not caught"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode_snapshot(&sample()).unwrap();
        for len in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            let r = decode_snapshot::<f32>(&bytes[..len]);
            assert!(r.is_err(), "truncation to {len} accepted");
        }
    }

    #[test]
    fn precision_mismatch_is_rejected() {
        let bytes = encode_snapshot(&sample()).unwrap();
        assert!(matches!(
            decode_snapshot::<f64>(&bytes),
            Err(CheckpointError::PrecisionMismatch {
                file: 4,
                expected: 8
            })
        ));
    }

    #[test]
    fn write_then_latest_finds_newest_valid() {
        let dir = std::env::temp_dir().join(format!("bda-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut snap = sample();
        write_checkpoint(&dir, &snap).unwrap();
        snap.next_cycle = 7;
        snap.time = 210.0;
        let p7 = write_checkpoint(&dir, &snap).unwrap();
        // A corrupt newer file must be skipped.
        let p9 = dir.join(checkpoint_file_name(9));
        std::fs::write(&p9, b"garbage").unwrap();
        // Leftover temp files are ignored.
        std::fs::write(dir.join(".tmp-ckpt-000011.bdac"), b"partial").unwrap();
        let (path, found) = latest_checkpoint::<f32>(&dir).unwrap().unwrap();
        assert_eq!(path, p7);
        assert_eq!(found, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scoped_checkpoints_never_cross_resume() {
        // Regression for co-located shard checkpoint dirs: shard s000 and
        // shard s001 write into the same directory; each scan must only
        // ever see its own snapshots, and the unscoped scan none of them.
        let dir = std::env::temp_dir().join(format!("bda-ckpt-scope-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut snap = sample();
        snap.next_cycle = 5;
        write_checkpoint_scoped(&dir, Some("s000"), &snap).unwrap();
        snap.next_cycle = 9;
        snap.time = 270.0;
        write_checkpoint_scoped(&dir, Some("s001"), &snap).unwrap();

        let (p0, s0) = latest_checkpoint_scoped::<f32>(&dir, Some("s000"))
            .unwrap()
            .unwrap();
        assert_eq!(s0.next_cycle, 5);
        assert!(p0.to_string_lossy().contains("ckpt-s000-000005"));
        let (_, s1) = latest_checkpoint_scoped::<f32>(&dir, Some("s001"))
            .unwrap()
            .unwrap();
        assert_eq!(s1.next_cycle, 9);
        // The unscoped scan sees neither shard's files...
        assert!(latest_checkpoint::<f32>(&dir).unwrap().is_none());
        // ...an unknown scope sees nothing...
        assert!(latest_checkpoint_scoped::<f32>(&dir, Some("s002"))
            .unwrap()
            .is_none());
        // ...and a scope that is a prefix of another never matches it.
        assert!(latest_checkpoint_scoped::<f32>(&dir, Some("s00"))
            .unwrap()
            .is_none());

        // An unscoped snapshot with a *newer* cycle index must not shadow
        // the scoped scan either.
        snap.next_cycle = 42;
        write_checkpoint(&dir, &snap).unwrap();
        let (_, s0b) = latest_checkpoint_scoped::<f32>(&dir, Some("s000"))
            .unwrap()
            .unwrap();
        assert_eq!(s0b.next_cycle, 5);
        let (_, su) = latest_checkpoint::<f32>(&dir).unwrap().unwrap();
        assert_eq!(su.next_cycle, 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scope_validation_rejects_separator_smuggling() {
        assert!(valid_scope("s000"));
        assert!(valid_scope("shard7"));
        assert!(!valid_scope(""));
        assert!(!valid_scope("s-0"));
        assert!(!valid_scope("s0.bdac"));
        assert!(!valid_scope("a/b"));
    }

    #[test]
    fn latest_on_missing_dir_is_none() {
        let dir = std::env::temp_dir().join("bda-ckpt-definitely-missing");
        assert!(latest_checkpoint::<f32>(&dir).unwrap().is_none());
    }

    #[test]
    fn ragged_and_misaligned_snapshots_rejected() {
        let mut snap = sample();
        snap.members[1].pop();
        assert!(matches!(
            encode_snapshot(&snap),
            Err(CheckpointError::RaggedEnsemble { member: 1, .. })
        ));
        let mut snap = sample();
        snap.member_times.pop();
        assert!(matches!(
            encode_snapshot(&snap),
            Err(CheckpointError::TimesMismatch {
                times: 1,
                members: 2
            })
        ));
    }
}
