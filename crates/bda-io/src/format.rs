//! Binary member-state format.
//!
//! Layout: magic `BDAF` (4) | version u16 | precision u8 (4 or 8) |
//! k_members u64 | state_len u64 | payload (k * n values, little-endian) |
//! FNV-1a checksum u64 over everything before it.

use crate::frame::{self, FrameError};
use bda_num::Real;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"BDAF";
const VERSION: u16 = 1;

/// Precision tag carried in the file so readers can check compatibility —
/// the paper's single-precision conversion changes this from 8 to 4 and
/// halves every transfer.
fn precision_tag<T: Real>() -> u8 {
    std::mem::size_of::<T>() as u8
}

/// Encode an ensemble of flat member states.
///
/// A ragged ensemble (members of unequal length) is a reportable
/// [`FormatError`], consistent with the decode path — a malformed input
/// must surface as an error the caller can degrade on, not a panic that
/// takes the writer thread down.
pub fn encode_states<T: Real>(members: &[Vec<T>]) -> Result<Bytes, FormatError> {
    let k = members.len();
    let n = members.first().map(|m| m.len()).unwrap_or(0);
    for (i, m) in members.iter().enumerate() {
        if m.len() != n {
            return Err(FormatError::RaggedEnsemble {
                member: i,
                len: m.len(),
                expected: n,
            });
        }
    }
    let prec = precision_tag::<T>() as usize;
    let mut buf = BytesMut::with_capacity(4 + 2 + 1 + 16 + k * n * prec + 8);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u8(prec as u8);
    buf.put_u64(k as u64);
    buf.put_u64(n as u64);
    for m in members {
        for &v in m {
            if prec == 4 {
                buf.put_f32_le(v.f64() as f32);
            } else {
                buf.put_f64_le(v.f64());
            }
        }
    }
    Ok(frame::seal(buf))
}

/// Encoding/decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    TooShort,
    BadMagic,
    UnsupportedVersion(u16),
    PrecisionMismatch {
        file: u8,
        expected: u8,
    },
    ChecksumMismatch,
    Truncated,
    /// Encode-side: member `member` has `len` values where the first
    /// member established `expected`.
    RaggedEnsemble {
        member: usize,
        len: usize,
        expected: usize,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::TooShort => write!(f, "state file too short"),
            FormatError::BadMagic => write!(f, "bad magic"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            FormatError::PrecisionMismatch { file, expected } => {
                write!(
                    f,
                    "precision mismatch: file {file} bytes, expected {expected}"
                )
            }
            FormatError::ChecksumMismatch => write!(f, "checksum mismatch"),
            FormatError::Truncated => write!(f, "payload truncated"),
            FormatError::RaggedEnsemble {
                member,
                len,
                expected,
            } => write!(
                f,
                "ragged ensemble: member {member} has {len} values, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

/// Decode an ensemble of flat member states.
pub fn decode_states<T: Real>(data: &[u8]) -> Result<Vec<Vec<T>>, FormatError> {
    if data.len() < 4 + 2 + 1 + 16 + 8 {
        return Err(FormatError::TooShort);
    }
    let mut buf = frame::open(data).map_err(|e| match e {
        FrameError::TooShort => FormatError::TooShort,
        FrameError::ChecksumMismatch => FormatError::ChecksumMismatch,
    })?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(FormatError::UnsupportedVersion(version));
    }
    let prec = buf.get_u8();
    if prec != precision_tag::<T>() {
        return Err(FormatError::PrecisionMismatch {
            file: prec,
            expected: precision_tag::<T>(),
        });
    }
    let k = buf.get_u64() as usize;
    let n = buf.get_u64() as usize;
    if buf.remaining() < k * n * prec as usize {
        return Err(FormatError::Truncated);
    }
    let mut members = Vec::with_capacity(k);
    for _ in 0..k {
        let mut m = Vec::with_capacity(n);
        for _ in 0..n {
            let v = if prec == 4 {
                buf.get_f32_le() as f64
            } else {
                buf.get_f64_le()
            };
            m.push(T::of(v));
        }
        members.push(m);
    }
    Ok(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let members = vec![vec![1.0_f64, -2.5, 3.25], vec![0.0, 1e-30, 1e30]];
        let bytes = encode_states(&members).unwrap();
        let back: Vec<Vec<f64>> = decode_states(&bytes).unwrap();
        assert_eq!(back, members);
    }

    #[test]
    fn roundtrip_f32() {
        let members = vec![vec![1.5_f32, -0.25], vec![7.0, 9.5]];
        let bytes = encode_states(&members).unwrap();
        let back: Vec<Vec<f32>> = decode_states(&bytes).unwrap();
        assert_eq!(back, members);
    }

    #[test]
    fn single_precision_files_are_half_the_size() {
        let m64 = vec![vec![0.0_f64; 1000]; 4];
        let m32 = vec![vec![0.0_f32; 1000]; 4];
        let b64 = encode_states(&m64).unwrap().len();
        let b32 = encode_states(&m32).unwrap().len();
        // Header + trailer are fixed; payload halves exactly.
        assert_eq!(b64 - b32, 4 * 1000 * 4);
    }

    #[test]
    fn precision_mismatch_detected() {
        let members = vec![vec![1.0_f64, 2.0]];
        let bytes = encode_states(&members).unwrap();
        let r: Result<Vec<Vec<f32>>, _> = decode_states(&bytes);
        assert_eq!(
            r.unwrap_err(),
            FormatError::PrecisionMismatch {
                file: 8,
                expected: 4
            }
        );
    }

    #[test]
    fn corruption_detected() {
        let members = vec![vec![1.0_f64, 2.0, 3.0]];
        let mut bytes = encode_states(&members).unwrap().to_vec();
        bytes[10] ^= 0x55;
        assert_eq!(
            decode_states::<f64>(&bytes).unwrap_err(),
            FormatError::ChecksumMismatch
        );
    }

    #[test]
    fn empty_ensemble_roundtrips() {
        let members: Vec<Vec<f64>> = vec![];
        let back: Vec<Vec<f64>> = decode_states(&encode_states(&members).unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn ragged_members_rejected_as_error() {
        let err = encode_states(&[vec![1.0_f64], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            FormatError::RaggedEnsemble {
                member: 1,
                len: 2,
                expected: 1
            }
        );
        assert!(err.to_string().contains("ragged"));
    }
}
