//! Ensemble-state transports: file I/O vs RAM copy.

use crate::format::{decode_states, encode_states};
use bda_num::Real;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// Moves whole ensembles of flat member states from the model side to the
/// filter side and back.
pub trait EnsembleTransport<T: Real> {
    /// Hand an ensemble over.
    fn send(&mut self, members: &[Vec<T>]) -> std::io::Result<()>;
    /// Take the oldest pending ensemble.
    fn recv(&mut self) -> std::io::Result<Vec<Vec<T>>>;
    /// Human-readable name for bench reports.
    fn name(&self) -> &'static str;
}

/// Legacy pattern: serialize the ensemble to a file, read it back.
///
/// Each `send` writes `ensemble_NNNN.bdaf` (with an fsync when
/// `durable`), each `recv` reads and deletes the oldest pending file —
/// exactly the producer/consumer file handshake SCALE-LETKF replaced.
pub struct FileTransport {
    dir: PathBuf,
    write_counter: u64,
    read_counter: u64,
    /// fsync after write (the safe default for the legacy pattern).
    pub durable: bool,
}

impl FileTransport {
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            write_counter: 0,
            read_counter: 0,
            durable: true,
        })
    }

    fn path(&self, idx: u64) -> PathBuf {
        self.dir.join(format!("ensemble_{idx:06}.bdaf"))
    }
}

impl<T: Real> EnsembleTransport<T> for FileTransport {
    fn send(&mut self, members: &[Vec<T>]) -> std::io::Result<()> {
        let bytes = encode_states(members)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let path = self.path(self.write_counter);
        let tmp = path.with_extension("bdaf.part");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            if self.durable {
                f.sync_all()?;
            }
        }
        std::fs::rename(&tmp, &path)?;
        self.write_counter += 1;
        Ok(())
    }

    fn recv(&mut self) -> std::io::Result<Vec<Vec<T>>> {
        let path = self.path(self.read_counter);
        let data = std::fs::read(&path)?;
        let members = decode_states(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::remove_file(&path)?;
        self.read_counter += 1;
        Ok(members)
    }

    fn name(&self) -> &'static str {
        "file-io"
    }
}

/// The BDA pattern: RAM copy through an in-process queue — the "MPI data
/// transfer with RAM copy ... without using files" of §5. Clonable handles
/// share one queue, so the model and filter sides can live on different
/// threads.
#[derive(Clone, Default)]
pub struct MemoryTransport<T> {
    queue: Arc<Mutex<VecDeque<Vec<Vec<T>>>>>,
}

impl<T: Real> MemoryTransport<T> {
    pub fn new() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

impl<T: Real> EnsembleTransport<T> for MemoryTransport<T> {
    fn send(&mut self, members: &[Vec<T>]) -> std::io::Result<()> {
        self.queue.lock().push_back(members.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> std::io::Result<Vec<Vec<T>>> {
        self.queue.lock().pop_front().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::WouldBlock, "no pending ensemble")
        })
    }

    fn name(&self) -> &'static str {
        "memory (RAM copy)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f32>> {
        (0..4)
            .map(|m| (0..100).map(|i| (m * 1000 + i) as f32).collect())
            .collect()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bda_io_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_transport_roundtrip_fifo() {
        let dir = tempdir("fifo");
        let mut t = FileTransport::new(&dir).unwrap();
        let a = sample();
        let mut b = sample();
        b[0][0] = -1.0;
        EnsembleTransport::<f32>::send(&mut t, &a).unwrap();
        EnsembleTransport::<f32>::send(&mut t, &b).unwrap();
        let ra: Vec<Vec<f32>> = t.recv().unwrap();
        let rb: Vec<Vec<f32>> = t.recv().unwrap();
        assert_eq!(ra, a);
        assert_eq!(rb, b);
        // Files consumed.
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_transport_recv_without_send_errors() {
        let dir = tempdir("empty");
        let mut t = FileTransport::new(&dir).unwrap();
        assert!(EnsembleTransport::<f32>::recv(&mut t).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_transport_roundtrip() {
        let mut t = MemoryTransport::<f64>::new();
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        t.send(&data).unwrap();
        assert_eq!(t.pending(), 1);
        assert_eq!(t.recv().unwrap(), data);
        assert_eq!(t.pending(), 0);
        assert!(t.recv().is_err());
    }

    #[test]
    fn memory_transport_shared_across_clones_and_threads() {
        let t = MemoryTransport::<f32>::new();
        let mut producer = t.clone();
        let data = sample();
        let expected = data.clone();
        let h = std::thread::spawn(move || producer.send(&data).unwrap());
        h.join().unwrap();
        let mut consumer = t.clone();
        assert_eq!(consumer.recv().unwrap(), expected);
    }

    #[test]
    fn transport_names_differ() {
        let f = FileTransport::new(tempdir("name")).unwrap();
        let m = MemoryTransport::<f32>::new();
        assert_ne!(
            EnsembleTransport::<f32>::name(&f),
            EnsembleTransport::<f32>::name(&m)
        );
    }
}
