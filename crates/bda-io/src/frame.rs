//! Sealed-frame helpers: one checksum-trailer convention for every codec.
//!
//! The member-state format ([`crate::format`]), the JIT-DT pipe framing and
//! the egress tile codec (`bda-serve`) all end their frames the same way: an
//! FNV-1a digest of everything before it, appended big-endian. This module
//! is the single home of that convention, so a sealer in one crate and an
//! opener in another can never drift apart — the same reasoning that put
//! [`bda_num::fnv1a`] itself in one place.

use bda_num::fnv1a;
use bytes::{BufMut, Bytes, BytesMut};

/// Bytes appended by [`seal`]: the big-endian FNV-1a trailer.
pub const TRAILER_BYTES: usize = 8;

/// What [`open`] rejects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the trailer itself: cannot possibly be a sealed frame.
    TooShort,
    /// The trailer does not match the body: damaged or truncated in
    /// transit.
    ChecksumMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame shorter than its checksum trailer"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append the FNV-1a trailer and freeze the frame.
pub fn seal(mut body: BytesMut) -> Bytes {
    let sum = fnv1a(&body);
    body.put_u64(sum);
    body.freeze()
}

/// Verify the trailer and return the body it covered.
pub fn open(data: &[u8]) -> Result<&[u8], FrameError> {
    if data.len() < TRAILER_BYTES {
        return Err(FrameError::TooShort);
    }
    let (body, tail) = data.split_at(data.len() - TRAILER_BYTES);
    let expect = u64::from_be_bytes(tail.try_into().map_err(|_| FrameError::TooShort)?);
    if fnv1a(body) != expect {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"nowcast tile");
        let sealed = seal(b);
        assert_eq!(sealed.len(), 12 + TRAILER_BYTES);
        assert_eq!(open(&sealed).unwrap(), b"nowcast tile");
    }

    #[test]
    fn empty_body_seals() {
        let sealed = seal(BytesMut::new());
        assert_eq!(open(&sealed).unwrap(), b"");
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(open(b"1234567").unwrap_err(), FrameError::TooShort);
        assert_eq!(open(b"").unwrap_err(), FrameError::TooShort);
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[0xA5; 24]);
        let sealed = seal(b).to_vec();
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut damaged = sealed.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    open(&damaged).is_err(),
                    "flip at byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"some payload bytes");
        let sealed = seal(b).to_vec();
        for cut in TRAILER_BYTES..sealed.len() {
            assert!(
                open(&sealed[..cut]).is_err(),
                "cut at {cut} slipped through"
            );
        }
    }
}
