//! Property-based invariants of the halo exchange.
//!
//! The halo bus sits on a fault boundary: frames get dropped, duplicated,
//! reordered, truncated and bit-flipped. Whatever arrives, the exchange
//! must produce a *typed* outcome — never a panic, never a silently
//! applied stale or damaged strip — and a full federation cycle must land
//! on one of the ladder's named outcomes no matter which shard faults are
//! scheduled where.

use bda_core::osse::OsseConfig;
use bda_io::checkpoint::OutcomeRecord;
use bda_shard::{
    decode_halo, encode_halo, encode_msg, CollectStatus, FederationConfig, HaloBus, HaloFrame,
    HaloMsg, LocalFederation, NetFrameReader, NetMsg, WireEvent,
};
use bda_workflow::FaultPlan;
use proptest::prelude::*;

fn strip_frame(cycle: u64, shard: usize, members: usize, len: usize, fill: f32) -> HaloFrame<f32> {
    HaloFrame::Strip(HaloMsg {
        shard,
        cycle,
        i0: 0,
        i1: 2,
        points_analyzed: len,
        strips: vec![vec![fill; len]; members],
    })
}

/// Every label a shard worker can legally emit — the typed outcome set of
/// the degradation ladder.
const LADDER_LABELS: [&str; 6] = [
    "completed",
    "degraded",
    "halo-reuse",
    "boundary-widened",
    "forecast-only",
    "below-quorum",
];

fn assert_ladder_labels(records: &[OutcomeRecord]) {
    for r in records {
        assert!(
            LADDER_LABELS.contains(&r.label.as_str()),
            "untyped outcome label {:?}",
            r.label
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-flipping any byte of a sealed halo frame never panics the
    /// decoder: it returns a typed error, or (only when the flip misses
    /// every checked byte — impossible under CRC unless the flip is a
    /// no-op) the original frame.
    #[test]
    fn decoder_survives_any_single_corruption(
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
        cycle in 0u64..1000,
        members in 1usize..4,
        len in 1usize..32,
    ) {
        let frame = strip_frame(cycle, 1, members, len, 3.5);
        let mut bytes = encode_halo(&frame).expect("encode").to_vec();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= mask;
        // A real flip must not round-trip: the frame CRC catches payload
        // damage, the header checks catch the rest.
        prop_assert!(decode_halo::<f32>(&bytes).is_err());
    }

    /// Truncation at any point yields a typed error, never a panic.
    #[test]
    fn decoder_survives_any_truncation(
        cut_seed in any::<u64>(),
        cycle in 0u64..1000,
        len in 1usize..32,
    ) {
        let frame = strip_frame(cycle, 0, 2, len, -1.25);
        let bytes = encode_halo(&frame).expect("encode");
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(decode_halo::<f32>(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage decodes to a typed error.
    #[test]
    fn decoder_survives_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        prop_assert!(decode_halo::<f32>(&bytes).is_err());
    }

    /// Any delivery schedule over a bus slot — publish, duplicate
    /// republish, stale republish of an older cycle, skip/stall markers,
    /// or nothing at all — collects as a typed [`CollectStatus`]; a
    /// republish after a marker (the resume/replay path) is last-writer-
    /// wins and still well-typed.
    #[test]
    fn bus_slot_is_typed_under_drop_dup_reorder(
        actions in prop::collection::vec(0u8..5, 1..12),
        cycle in 0u64..50,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "bda-shard-prop-bus-{}-{cycle}-{}",
            std::process::id(),
            actions.iter().fold(0u64, |h, &a| h.wrapping_mul(31).wrapping_add(a as u64)),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let bus = HaloBus::new(&dir).expect("bus");
        for &a in &actions {
            match a {
                0 => bus.publish(&strip_frame(cycle, 0, 2, 4, 1.0)).expect("publish"),
                1 => bus.publish(&strip_frame(cycle, 0, 2, 4, 1.0)).expect("dup"),
                // A stale frame from an *older* cycle landing in transit —
                // it occupies its own slot, never this cycle's.
                2 => bus.publish(&strip_frame(cycle.saturating_sub(1), 0, 2, 4, 9.0)).expect("stale"),
                3 => bus.publish(&HaloFrame::<f32>::Skip { shard: 0, cycle }).expect("skip"),
                _ => bus.publish(&HaloFrame::<f32>::Stall { shard: 0, cycle }).expect("stall"),
            }
        }
        let status = bus.try_collect::<f32>(cycle, 0);
        match status {
            CollectStatus::Ready(m) => {
                // Only this cycle's own strip may surface here.
                prop_assert_eq!(m.cycle, cycle);
                prop_assert_eq!(m.shard, 0);
            }
            CollectStatus::Skipped | CollectStatus::Stalled => {}
            CollectStatus::Missing { .. } => {
                // Legal only if nothing was ever published for this slot.
                prop_assert!(actions.iter().all(|&a| a == 2));
            }
            CollectStatus::Corrupt(_) => prop_assert!(false, "atomic writes never tear"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An arbitrary small transport message for stream proptests.
fn net_msg(kind: u8, sender: usize, epoch: u64, cycle: u64) -> NetMsg {
    match kind % 4 {
        0 => NetMsg::Hello { sender, epoch },
        1 => NetMsg::Halo {
            sender,
            epoch,
            cycle,
            frame: encode_halo(&strip_frame(cycle, sender, 1, 4, 0.5)).expect("halo"),
        },
        2 => NetMsg::Req {
            sender,
            epoch,
            cycle,
        },
        _ => NetMsg::Heartbeat {
            sender,
            epoch,
            cycle,
        },
    }
}

/// Feed `stream` through a [`NetFrameReader`] in arbitrary chunk sizes
/// and return every parsed message (EOF drained).
fn parse_stream(stream: &[u8], chunk_seed: u64) -> Vec<NetMsg> {
    let mut reader = NetFrameReader::new();
    let mut got = Vec::new();
    let mut off = 0usize;
    let mut seed = chunk_seed;
    while off < stream.len() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let chunk = 1 + (seed as usize) % 97;
        let end = (off + chunk).min(stream.len());
        reader.push(&stream[off..end]);
        while let Some(ev) = reader.next_event() {
            if let WireEvent::Msg { msg, .. } = ev {
                got.push(msg);
            }
        }
        off = end;
    }
    reader.finish();
    while let Some(ev) = reader.next_event() {
        if let WireEvent::Msg { msg, .. } = ev {
            got.push(msg);
        }
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Garbage spliced between messages, delivered in arbitrary chunks:
    /// the reader never panics, never invents a message, and recovers
    /// the real ones in order (a garbage run that fakes a stream magic
    /// may swallow a later message into a typed corrupt window, so the
    /// recovered list is an ordered subsequence — and when the garbage
    /// cannot fake a magic, recovery is exact; see the next property).
    #[test]
    fn garbage_splices_always_resync_to_a_typed_outcome(
        msgs in prop::collection::vec((0u8..4, 0usize..4, 1u64..50, 0u64..50), 1..6),
        junk in prop::collection::vec(prop::collection::vec(0u8..=255, 0..64), 1..7),
        chunk_seed in any::<u64>(),
    ) {
        let originals: Vec<NetMsg> =
            msgs.iter().map(|&(k, s, e, c)| net_msg(k, s, e, c)).collect();
        let mut stream = Vec::new();
        for (i, m) in originals.iter().enumerate() {
            stream.extend_from_slice(&junk[i % junk.len()]);
            stream.extend_from_slice(&encode_msg(m));
        }
        stream.extend_from_slice(&junk[originals.len() % junk.len()]);
        let got = parse_stream(&stream, chunk_seed);
        // Ordered subsequence: every recovered message matches the next
        // unconsumed original — nothing invented, nothing reordered.
        let mut it = originals.iter();
        for g in &got {
            prop_assert!(
                it.any(|o| o == g),
                "parser invented or reordered a message: {g:?}"
            );
        }
    }

    /// Garbage that cannot contain the stream magic (no `B` bytes) costs
    /// nothing: every spliced message is recovered exactly, in order.
    #[test]
    fn magicless_garbage_costs_no_messages(
        msgs in prop::collection::vec((0u8..4, 0usize..4, 1u64..50, 0u64..50), 1..6),
        junk in prop::collection::vec(prop::collection::vec(0u8..=255, 0..64), 1..7),
        chunk_seed in any::<u64>(),
    ) {
        let originals: Vec<NetMsg> =
            msgs.iter().map(|&(k, s, e, c)| net_msg(k, s, e, c)).collect();
        let mut stream = Vec::new();
        for (i, m) in originals.iter().enumerate() {
            let cleaned: Vec<u8> = junk[i % junk.len()]
                .iter()
                .map(|&b| if b == b'B' { b'C' } else { b })
                .collect();
            stream.extend_from_slice(&cleaned);
            stream.extend_from_slice(&encode_msg(m));
        }
        let got = parse_stream(&stream, chunk_seed);
        prop_assert_eq!(got, originals);
    }

    /// A single byte flip anywhere in a wire message is always caught —
    /// magic, length, or sealed body — and never surfaces as a parsed
    /// message, so a damaged halo can never reach the apply path.
    #[test]
    fn corrupted_wire_frames_never_parse(
        kind in 0u8..4,
        sender in 0usize..4,
        epoch in 1u64..50,
        cycle in 0u64..50,
        pos_seed in any::<u64>(),
        mask in 1u8..=255,
        chunk_seed in any::<u64>(),
    ) {
        let mut bytes = encode_msg(&net_msg(kind, sender, epoch, cycle)).to_vec();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= mask;
        let got = parse_stream(&bytes, chunk_seed);
        prop_assert!(got.is_empty(), "damaged message parsed anyway: {got:?}");
    }

    /// Truncation at any point yields typed events only — the incomplete
    /// window drains at EOF without a panic and without a message.
    #[test]
    fn truncated_wire_frames_never_parse(
        kind in 0u8..4,
        sender in 0usize..4,
        epoch in 1u64..50,
        cycle in 0u64..50,
        cut_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
    ) {
        let bytes = encode_msg(&net_msg(kind, sender, epoch, cycle));
        let cut = (cut_seed as usize) % bytes.len();
        let got = parse_stream(&bytes[..cut], chunk_seed);
        prop_assert!(got.is_empty(), "truncated message parsed anyway: {got:?}");
    }
}

proptest! {
    // Full federations per case are expensive; a handful of cases over a
    // tiny domain still sweeps kills, stalls and drops across every
    // (shard, cycle) slot.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any schedule of shard faults — kills, stalls, halo drops, stacked
    /// arbitrarily across shards and cycles — runs to completion without
    /// a panic, and every cycle of every shard lands on a typed ladder
    /// outcome.
    #[test]
    fn federation_lands_on_typed_outcomes_under_arbitrary_shard_faults(
        faults in prop::collection::vec((0u8..3, 0usize..2, 0usize..3), 0..5),
        seed in 1u64..100,
    ) {
        let n_shards = 2;
        let n_cycles = 3;
        let mut plan = FaultPlan::none();
        for &(kind, shard, cycle) in &faults {
            plan = match kind {
                // Kills at cycle 0 exercise the no-checkpoint-yet respawn.
                0 => plan.shard_kill(cycle, shard),
                1 => plan.shard_stall(cycle, shard),
                _ => plan.halo_drop(cycle, shard),
            };
        }
        let dir = std::env::temp_dir().join(format!(
            "bda-shard-prop-fed-{}-{seed}-{}",
            std::process::id(),
            faults.iter().fold(0u64, |h, &(k, s, c)| {
                h.wrapping_mul(131).wrapping_add((k as u64) << 16 | (s as u64) << 8 | c as u64)
            }),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = FederationConfig::new(
            OsseConfig::reduced(6, 4, 3, 1, seed),
            n_shards,
            n_cycles,
            dir.clone(),
        );
        cfg.plan = plan;
        let mut fed = LocalFederation::<f32>::start(cfg).expect("start");
        fed.run().expect("faulted federation still completes");
        for w in &fed.workers {
            prop_assert_eq!(w.records.len(), n_cycles);
            assert_ladder_labels(&w.records);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
