//! Deterministic-order and epoch-fence regression tests for the extracted
//! `FenceTable` (the netbus inbox). The loom suite in
//! `crates/bda-check/tests/loom_netbus.rs` proves the concurrent
//! interleavings; these tests pin the single-threaded contract — above
//! all that every snapshot/sweep order is sorted *by construction*, so
//! the transport's observable byte streams can never depend on hash
//! iteration order.

use bda_shard::{Admit, FenceTable, SlotGet};

#[test]
fn keys_snapshot_is_sorted_regardless_of_admission_order() {
    let ft = FenceTable::<u32>::new(4);
    // Admit in scrambled (cycle, sender) order.
    for (sender, cycle, epoch, payload) in [
        (3usize, 9u64, 1u64, 39u32),
        (0, 9, 1, 9),
        (2, 7, 1, 27),
        (1, 8, 1, 18),
        (0, 7, 1, 7),
        (3, 7, 1, 37),
    ] {
        assert_eq!(ft.admit(sender, cycle, epoch, payload), Admit::Accepted);
    }
    // The snapshot is ascending (cycle, sender) — the exact order a
    // digest or debug sweep would emit. Pinned so a regression back to a
    // hash container (nondeterministic byte streams) fails loudly.
    assert_eq!(
        ft.keys(),
        vec![
            (7, 0, 1),
            (7, 2, 1),
            (7, 3, 1),
            (8, 1, 1),
            (9, 0, 1),
            (9, 3, 1),
        ]
    );
    // And it is stable: two snapshots are byte-identical.
    assert_eq!(ft.keys(), ft.keys());
}

#[test]
fn fence_verdicts_ratchet_reject_and_retro_fence() {
    let ft = FenceTable::<u32>::new(2);
    assert_eq!(ft.admit(1, 5, 1, 11), Admit::Accepted);
    assert_eq!(
        ft.fetch(5, 1),
        SlotGet::Ready {
            epoch: 1,
            payload: 11
        }
    );
    // A newer epoch announces itself (hello, no payload): the old slot is
    // retro-fenced at read even though it was admitted legitimately.
    assert_eq!(ft.observe(1, 3), Admit::Accepted);
    assert_eq!(ft.fence_of(1), 3);
    assert_eq!(ft.fetch(5, 1), SlotGet::Fenced { got: 1, fenced: 3 });
    // Anything below the fence is now rejected on arrival...
    assert_eq!(ft.admit(1, 5, 2, 22), Admit::Stale { got: 2, fenced: 3 });
    // ...and the rejected frame must not have touched the slot.
    assert_eq!(ft.fetch(5, 1), SlotGet::Fenced { got: 1, fenced: 3 });
    // The fence epoch itself is admissible and replaces the fenced slot.
    assert_eq!(ft.admit(1, 5, 3, 33), Admit::Accepted);
    assert_eq!(
        ft.fetch(5, 1),
        SlotGet::Ready {
            epoch: 3,
            payload: 33
        }
    );
    // Unknown (cycle, sender) is Missing, not an error.
    assert_eq!(ft.fetch(6, 0), SlotGet::Missing);
}

#[test]
fn prune_below_bounds_the_slot_store() {
    let ft = FenceTable::<u32>::new(2);
    for cycle in 0..10u64 {
        ft.admit(0, cycle, 1, cycle as u32);
        ft.admit(1, cycle, 1, cycle as u32);
    }
    assert_eq!(ft.keys().len(), 20);
    // Everything below cycle 7 goes; 7..10 for both senders stays.
    assert_eq!(ft.prune_below(7), 14);
    assert_eq!(
        ft.keys(),
        vec![
            (7, 0, 1),
            (7, 1, 1),
            (8, 0, 1),
            (8, 1, 1),
            (9, 0, 1),
            (9, 1, 1),
        ]
    );
    // Pruning is idempotent.
    assert_eq!(ft.prune_below(7), 0);
    // Pruned slots read back Missing.
    assert_eq!(ft.fetch(3, 0), SlotGet::Missing);
}
