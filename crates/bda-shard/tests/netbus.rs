//! Socket-transport behaviour under injected network faults.
//!
//! Bit-parity of clean and kill/resume socket federations against the
//! single-process reference lives in the workspace-level
//! `tests/shard_parity.rs` (which owns the reference builder); this file
//! pins down the *degradation* side of the invariant — every injected
//! network fault lands on an exact expected outcome table, zombie
//! writers are fenced as typed rejects, and link health turns typed when
//! a peer vanishes.

use bda_core::osse::OsseConfig;
use bda_shard::federation::NetTuning;
use bda_shard::netbus::{NetBus, NetBusConfig};
use bda_shard::{
    CollectStatus, FederationConfig, HaloError, HaloFrame, HaloMsg, HaloTransport, NetFederation,
};
use bda_workflow::{FaultPlan, LinkHealth};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CYCLES: usize = 3;

fn config() -> OsseConfig {
    OsseConfig::reduced(10, 8, 6, 2, 11)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bda-netbus-{tag}-{}", std::process::id()))
}

/// Short deadlines so injected faults expire onto the ladder in test
/// time; the stall delay out-waits the deadline by design.
fn tuning(chaos: bool) -> NetTuning {
    NetTuning {
        halo_deadline: Duration::from_millis(900),
        poll: Duration::from_millis(5),
        chaos,
        stall_delay: Duration::from_millis(2200),
        seed: 0x57_A71C,
    }
}

fn run_net_federation(
    n_shards: usize,
    plan: FaultPlan,
    chaos: bool,
    tag: &str,
) -> NetFederation<f32> {
    let dir = tmp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FederationConfig::new(config(), n_shards, CYCLES, dir);
    cfg.plan = plan;
    let mut fed = NetFederation::start(cfg, tuning(chaos)).expect("net federation start");
    fed.run().expect("net federation run");
    fed
}

fn labels(fed: &NetFederation<f32>, s: usize) -> Vec<String> {
    fed.workers[s]
        .records
        .iter()
        .map(|r| r.label.clone())
        .collect()
}

#[test]
fn partition_degrades_both_sides_and_nobody_else() {
    // partition:0-1@1 — shards 0 and 1 cannot exchange cycle-1 traffic
    // (pushes, REQ pulls, replies — the proxy drops them all), so each
    // reuses the other's cycle-0 halo; shard 2 sees both sides fine.
    let fed = run_net_federation(3, FaultPlan::none().partition(1, 0, 1), true, "partition");
    assert_eq!(labels(&fed, 0), ["completed", "halo-reuse", "completed"]);
    assert_eq!(labels(&fed, 1), ["completed", "halo-reuse", "completed"]);
    assert_eq!(labels(&fed, 2), ["completed", "completed", "completed"]);
    assert!(fed.workers[0].records[1]
        .detail
        .contains("reused halo of [1]"));
    assert!(fed.workers[1].records[1]
        .detail
        .contains("reused halo of [0]"));
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}

#[test]
fn netstall_degrades_the_listeners_not_the_laggard() {
    // netstall:1@1 — shard 1's cycle-1 messages are held in-path beyond
    // the halo deadline. Its peer degrades to halo-reuse; shard 1 itself
    // hears everyone fine and completes.
    let fed = run_net_federation(2, FaultPlan::none().net_stall(1, 1), true, "netstall");
    assert_eq!(labels(&fed, 0), ["completed", "halo-reuse", "completed"]);
    assert_eq!(labels(&fed, 1), ["completed", "completed", "completed"]);
    assert!(fed.workers[0].records[1]
        .detail
        .contains("reused halo of [1]"));
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}

#[test]
fn wiregarbage_is_typed_resynced_and_degrades_exactly_the_listeners() {
    // wiregarbage:1@1 — shard 1's cycle-1 messages arrive as garbage
    // plus a checksum-broken copy. The receiver resyncs (typed, counted)
    // and degrades; no corrupt halo is ever applied, and cycles 0/2
    // parse cleanly off the same stream.
    let fed = run_net_federation(2, FaultPlan::none().wire_garbage(1, 1), true, "garbage");
    assert_eq!(labels(&fed, 0), ["completed", "halo-reuse", "completed"]);
    assert_eq!(labels(&fed, 1), ["completed", "completed", "completed"]);
    let stats = fed.workers[0].bus().stats();
    assert!(
        stats.wire_garbage > 0,
        "receiver should have counted garbage skips: {stats:?}"
    );
    assert!(
        stats.wire_corrupt > 0,
        "receiver should have counted checksum failures: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}

fn strip(shard: usize, cycle: u64) -> HaloFrame<f32> {
    HaloFrame::Strip(HaloMsg {
        shard,
        cycle,
        i0: 0,
        i1: 2,
        points_analyzed: 4,
        strips: vec![vec![0.25, 0.5, 0.75, 1.0]],
    })
}

fn bus(dir: &PathBuf, shard: usize) -> NetBus {
    NetBus::start(NetBusConfig::new(shard, 2), dir).expect("netbus start")
}

fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ok()
}

#[test]
fn zombie_writer_is_fenced_as_a_typed_stale_epoch() {
    let dir = tmp_dir("zombie");
    let _ = std::fs::remove_dir_all(&dir);
    let b = bus(&dir, 1);
    let a = bus(&dir, 0);
    assert_eq!(a.epoch(), 1);

    // Clean delivery first, and a cycle-3 slot filled by epoch 1.
    a.publish(&strip(0, 0)).unwrap();
    assert!(matches!(
        b.collect_blocking::<f32>(0, 0, Duration::from_secs(2), Duration::from_millis(5)),
        CollectStatus::Ready(_)
    ));
    a.publish(&strip(0, 3)).unwrap();
    assert!(wait_until(Duration::from_secs(2), || matches!(
        b.try_collect::<f32>(3, 0),
        CollectStatus::Ready(_)
    )));

    // Shard 0 "respawns": a second bus instance bumps the durable epoch.
    // Its hello fences the old instance out at every peer.
    let a2 = bus(&dir, 0);
    assert_eq!(a2.epoch(), 2);
    assert!(
        wait_until(Duration::from_secs(3), || matches!(
            b.try_collect::<f32>(3, 0),
            CollectStatus::Corrupt(HaloError::StaleEpoch { got: 1, fenced: 2 })
        )),
        "pre-respawn inbox slot should turn into a typed StaleEpoch reject"
    );

    // The zombie keeps writing: its frames are counted, rejected, and
    // never reach a slot.
    a.publish(&strip(0, 2)).unwrap();
    assert!(
        wait_until(Duration::from_secs(3), || b.stats().stale_epoch_rejects > 0),
        "zombie publish should land on the stale-epoch counter"
    );
    assert!(matches!(
        b.try_collect::<f32>(2, 0),
        CollectStatus::Missing { .. }
    ));

    // The live epoch's frame for the same slot goes straight through.
    a2.publish(&strip(0, 2)).unwrap();
    assert!(matches!(
        b.collect_blocking::<f32>(2, 0, Duration::from_secs(2), Duration::from_millis(5)),
        CollectStatus::Ready(_)
    ));

    drop(a);
    drop(a2);
    drop(b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_lagging_peer_extends_the_collect_deadline() {
    // Shard 0 publishes cycle 0 and *stays there*, heartbeating, while
    // shard 1 collects cycle 1 under a deadline shorter than shard 0's
    // eventual publish. Fresh beacons + an advertised cycle behind the
    // requested one mean "lagging, not partitioned": the collect extends
    // past its nominal deadline and lands Ready instead of degrading —
    // the cascade-breaker for free-running federations, where one shard's
    // deadline wait would otherwise expire its neighbours' next cycle.
    // (The partition test above pins the converse: a *silent* peer stops
    // qualifying and expires onto the ladder on time.)
    let dir = tmp_dir("lagging");
    let _ = std::fs::remove_dir_all(&dir);
    let b = bus(&dir, 1);
    let a = bus(&dir, 0);
    a.publish(&strip(0, 0)).unwrap();
    assert!(matches!(
        b.collect_blocking::<f32>(0, 0, Duration::from_secs(2), Duration::from_millis(5)),
        CollectStatus::Ready(_)
    ));

    let started = Instant::now();
    let deadline = Duration::from_millis(300);
    let status = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(900));
            a.publish(&strip(0, 1)).expect("late publish");
        });
        b.collect_blocking::<f32>(1, 0, deadline, Duration::from_millis(5))
    });
    assert!(
        matches!(status, CollectStatus::Ready(_)),
        "lagging peer's late frame should still land: {status:?}"
    );
    assert!(
        started.elapsed() > deadline,
        "the collect must have waited past its nominal deadline"
    );

    drop(a);
    drop(b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_dead_peer_turns_the_link_partitioned_on_the_control_plane() {
    let dir = tmp_dir("linkhealth");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = NetBusConfig::new(0, 2);
    cfg.partition_after = Duration::from_millis(150);
    let a = NetBus::start(cfg, &dir).expect("netbus start");
    let b = bus(&dir, 1);

    // Traffic brings the link up.
    a.publish(&strip(0, 0)).unwrap();
    assert!(matches!(
        b.collect_blocking::<f32>(0, 0, Duration::from_secs(2), Duration::from_millis(5)),
        CollectStatus::Ready(_)
    ));
    // Wait for a *genuine* outbound connection (the link-health default
    // is Connected, so the accessor alone proves nothing yet).
    assert!(wait_until(Duration::from_secs(3), || a.stats().connects > 0));
    assert!(a
        .link_health()
        .iter()
        .any(|&(p, h)| p == 1 && h == LinkHealth::Connected));

    // Peer dies; past `partition_after` the link is typed Partitioned —
    // both on the accessor and on the control-plane file the supervisor
    // reads for quorum.
    drop(b);
    assert!(
        wait_until(Duration::from_secs(4), || a
            .link_health()
            .iter()
            .any(|&(p, h)| p == 1 && h == LinkHealth::Partitioned)),
        "link to a dead peer should turn Partitioned"
    );
    assert!(wait_until(Duration::from_secs(2), || a
        .control()
        .read_link_states(0)
        .contains(&LinkHealth::Partitioned)));

    drop(a);
    let _ = std::fs::remove_dir_all(&dir);
}
