//! Deterministic in-path network chaos.
//!
//! [`ChaosProxy`] sits between a shard's advertised port and its real
//! listener: it registers *itself* under the shard's
//! [`registry_name`](crate::netbus::registry_name) while the shard (in
//! `raw_registry` mode) hides under
//! [`raw_registry_name`](crate::netbus::raw_registry_name). Every peer
//! connection therefore flows through the proxy, which parses `BDAN`
//! message boundaries in both directions and applies the scheduled
//! network faults from a [`FaultPlan`]:
//!
//! - `partition:A-B@C` — every message between shards `A` and `B` whose
//!   cycle is `C` is dropped, both directions (pushes, `REQ` pulls and
//!   their replies), so neither side can see the other that cycle.
//! - `netstall:S@C` — messages *from* `S` about cycle `C` are held for
//!   `stall_delay` and released late (a reorder, from the receiver's
//!   point of view). With `stall_delay` beyond the halo deadline, peers
//!   degrade before the frame lands.
//! - `wiregarbage:S@C` — messages from `S` about cycle `C` are forwarded
//!   as seeded garbage plus a checksum-broken copy: the receiver's
//!   [`NetFrameReader`](crate::wire::NetFrameReader) resyncs and counts
//!   typed garbage/corrupt events, and the halo never decodes.
//!
//! Fault matching is per *message* on its declared `(sender, cycle)` —
//! which is exactly why `REQ` replies are subject to the same faults as
//! pushes: a receiver cannot pull its way around a partition or a stall
//! within the faulted cycle, so the degradation ladder engages
//! deterministically. The raw listen port is re-resolved on every
//! accepted connection, so a SIGKILLed-and-respawned shard (new raw
//! port, new epoch) reappears behind the same stable proxy port.
//!
//! The proxy is itself boring: seeded, single-purpose threads, no shared
//! mutable state beyond the learned client id per connection. All
//! nondeterminism in a chaos run comes from the *schedule*, not the
//! proxy.

use crate::bus::HaloBus;
use crate::netbus::{raw_registry_name, registry_name};
use crate::wire::{NetFrameReader, WireEvent};
use bda_num::{cast, SplitMix64};
use bda_workflow::FaultPlan;
use bytes::Bytes;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the fault schedule says to do with one parsed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Forward,
    Drop,
    Hold,
    Garble,
}

struct ProxyShared {
    /// The shard this proxy fronts.
    target: usize,
    plan: FaultPlan,
    ctl: HaloBus,
    /// How long a `netstall` holds a message.
    stall_delay: Duration,
    seed: u64,
    stop: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// In-path fault injector for one shard's listener. See the module docs.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
    /// The stable port peers actually dial.
    pub port: u16,
}

impl ChaosProxy {
    /// Bind the proxy for shard `target` and advertise it under the
    /// shard's registry name on the control plane at `dir`. The fronted
    /// shard must run its `NetBus` in `raw_registry` mode.
    pub fn start(
        target: usize,
        plan: FaultPlan,
        dir: impl AsRef<Path>,
        stall_delay: Duration,
        seed: u64,
    ) -> Result<Self, String> {
        let ctl = HaloBus::new(dir.as_ref()).map_err(|e| format!("chaos control plane: {e}"))?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("chaos bind for shard {target}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("chaos nonblocking: {e}"))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("chaos local_addr: {e}"))?
            .port();
        ctl.write_atomic(&registry_name(target), format!("{port} 0").as_bytes())
            .map_err(|e| format!("chaos registry: {e}"))?;
        let shared = Arc::new(ProxyShared {
            target,
            plan,
            ctl,
            stall_delay,
            seed,
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(accept_shared, listener));
        Ok(Self {
            shared,
            accept_thread: Some(accept_thread),
            port,
        })
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads = std::mem::take(&mut *self.shared.threads.lock());
        for t in threads {
            let _ = t.join();
        }
    }
}

/// The fronted shard's *raw* (unproxied) address, re-resolved per
/// connection so respawns (new raw port) reappear behind the proxy.
fn raw_addr(shared: &ProxyShared) -> Option<SocketAddr> {
    let line =
        std::fs::read_to_string(shared.ctl.dir().join(raw_registry_name(shared.target))).ok()?;
    let port: u16 = line.split_whitespace().next()?.parse().ok()?;
    Some(SocketAddr::from(([127, 0, 0, 1], port)))
}

fn accept_loop(shared: Arc<ProxyShared>, listener: TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Some(addr) = raw_addr(&shared) else {
                    // No raw listener yet — refuse; the peer redials.
                    continue;
                };
                let Ok(raw) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = raw.set_nodelay(true);
                // The connecting shard's id, learned from the first
                // upstream message and shared with the reply pump (for
                // partition pair matching on replies).
                let client_id = Arc::new(AtomicUsize::new(usize::MAX));
                spawn_pump(&shared, &client, &raw, Direction::Upstream, &client_id);
                spawn_pump(&shared, &raw, &client, Direction::Downstream, &client_id);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// client → fronted shard.
    Upstream,
    /// fronted shard → client (`REQ` replies, mostly).
    Downstream,
}

fn spawn_pump(
    shared: &Arc<ProxyShared>,
    src: &TcpStream,
    dst: &TcpStream,
    dir: Direction,
    client_id: &Arc<AtomicUsize>,
) {
    let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
        return;
    };
    let shared_c = Arc::clone(shared);
    let client_c = Arc::clone(client_id);
    let handle = std::thread::spawn(move || pump(shared_c, src, dst, dir, client_c));
    shared.threads.lock().push(handle);
}

/// One direction of one proxied connection: parse message boundaries,
/// ask the schedule for a verdict per message, forward / drop / hold /
/// garble accordingly. Exits (and tears both streams down) on EOF or a
/// hard socket error — the shard-side redial then re-resolves the raw
/// port, which is how respawns heal.
fn pump(
    shared: Arc<ProxyShared>,
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    client_id: Arc<AtomicUsize>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(10)));
    let mut reader = NetFrameReader::new();
    let mut buf = [0u8; 64 * 1024];
    let mut held: Vec<(Instant, Bytes)> = Vec::new();
    let mut rng = SplitMix64::new(
        shared.seed ^ cast::u64_of(shared.target) ^ if dir == Direction::Upstream { 0 } else { 1 },
    );
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Release any held (netstalled) messages whose delay elapsed,
        // in arrival order.
        // bda-check: allow(wallclock) — stall release clock.
        let now = Instant::now();
        while let Some((at, _)) = held.first() {
            if *at > now {
                break;
            }
            let (_, bytes) = held.remove(0);
            if dst.write_all(&bytes).is_err() {
                teardown(&src, &dst);
                return;
            }
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                teardown(&src, &dst);
                return;
            }
            Ok(n) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        };
        reader.push(&buf[..n]);
        while let Some(ev) = reader.next_event() {
            let WireEvent::Msg { msg, raw } = ev else {
                // The real buses emit clean streams; anything unparsable
                // here was injected by *us* on another hop. Drop it.
                continue;
            };
            if dir == Direction::Upstream {
                client_id.store(msg.sender(), Ordering::SeqCst);
            }
            let peer = match dir {
                Direction::Upstream => shared.target,
                Direction::Downstream => client_id.load(Ordering::SeqCst),
            };
            let ok = match verdict(&shared, msg.sender(), peer, msg.cycle()) {
                Verdict::Forward => dst.write_all(&raw).is_ok(),
                Verdict::Drop => true,
                Verdict::Hold => {
                    // bda-check: allow(wallclock) — stall release clock.
                    held.push((Instant::now() + shared.stall_delay, raw));
                    true
                }
                Verdict::Garble => write_garbled(&mut dst, &raw, &mut rng).is_ok(),
            };
            if !ok {
                teardown(&src, &dst);
                return;
            }
        }
    }
    teardown(&src, &dst);
}

fn teardown(src: &TcpStream, dst: &TcpStream) {
    let _ = src.shutdown(std::net::Shutdown::Both);
    let _ = dst.shutdown(std::net::Shutdown::Both);
}

/// The schedule's ruling for one message from `sender` to `peer` about
/// `cycle`. Cycle-less messages (hellos) always pass.
fn verdict(shared: &ProxyShared, sender: usize, peer: usize, cycle: Option<u64>) -> Verdict {
    let Some(cycle) = cycle else {
        return Verdict::Forward;
    };
    let c = cast::index_of_u64(cycle);
    let pair = (sender.min(peer), sender.max(peer));
    if shared.plan.partitions(c).contains(&pair) {
        return Verdict::Drop;
    }
    if shared.plan.net_stalls(c).contains(&sender) {
        return Verdict::Hold;
    }
    if shared.plan.wire_garbages(c).contains(&sender) {
        return Verdict::Garble;
    }
    Verdict::Forward
}

/// Forward `raw` as damage: a run of seeded garbage (guaranteed free of
/// the stream magic) followed by the message with one body byte flipped,
/// so the receiver sees a typed garbage skip plus a typed checksum
/// failure — and no halo.
fn write_garbled(dst: &mut TcpStream, raw: &[u8], rng: &mut SplitMix64) -> std::io::Result<()> {
    let mut junk = [0u8; 48];
    for b in junk.iter_mut() {
        let v = rng.next_u64().to_le_bytes()[0];
        // No 'B' bytes → no accidental "BDAN" resync point inside junk.
        *b = if v == b'B' { b'C' } else { v };
    }
    dst.write_all(&junk)?;
    let mut copy = raw.to_vec();
    if copy.len() > crate::wire::NET_HEADER_BYTES {
        copy[crate::wire::NET_HEADER_BYTES] ^= 0x5A;
    }
    dst.write_all(&copy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_for(plan: FaultPlan) -> ProxyShared {
        let dir = std::env::temp_dir().join(format!("bda-chaos-v-{}", std::process::id()));
        ProxyShared {
            target: 1,
            plan,
            ctl: HaloBus::new(&dir).unwrap(),
            stall_delay: Duration::from_millis(50),
            seed: 7,
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn verdicts_follow_the_schedule() {
        let plan = FaultPlan::none()
            .partition(2, 0, 1)
            .net_stall(3, 2)
            .wire_garbage(4, 0);
        let s = shared_for(plan);
        assert_eq!(verdict(&s, 0, 1, Some(2)), Verdict::Drop);
        assert_eq!(verdict(&s, 1, 0, Some(2)), Verdict::Drop);
        assert_eq!(verdict(&s, 0, 1, Some(1)), Verdict::Forward);
        assert_eq!(verdict(&s, 2, 0, Some(3)), Verdict::Hold);
        assert_eq!(verdict(&s, 0, 2, Some(3)), Verdict::Forward);
        assert_eq!(verdict(&s, 0, 1, Some(4)), Verdict::Garble);
        assert_eq!(verdict(&s, 0, 1, None), Verdict::Forward);
    }
}
