//! The halo wire format.
//!
//! One frame per (cycle, shard): either the shard's analyzed strip for
//! every ensemble member, or a typed marker (skip / stall) standing in for
//! it so receivers learn *why* a strip is missing instead of inferring it
//! from silence. Frames are checksum-sealed with the same FNV-1a trailer
//! convention as every other wire format in the system
//! ([`bda_io::frame`]), and the member payload reuses the
//! [`bda_io::format`] state codec — precision mismatches between an `f32`
//! shard and an `f64` shard surface as typed errors, not garbage floats.
//!
//! Layout: magic `BDAH` (4) | version u16 | kind u8 | shard u32 |
//! cycle u64 | i0 u32 | i1 u32 | points_analyzed u64 | payload
//! (`encode_states` frame, strip kind only) | FNV-1a checksum u64.

use bda_io::format::{decode_states, encode_states, FormatError};
use bda_io::frame::{self, FrameError};
use bda_num::{cast, Real};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"BDAH";
const VERSION: u16 = 1;
const HEADER_BYTES: usize = 4 + 2 + 1 + 4 + 8 + 4 + 4 + 8;

const KIND_STRIP: u8 = 0;
const KIND_SKIP: u8 = 1;
const KIND_STALL: u8 = 2;

/// A shard's analyzed strip for one cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct HaloMsg<T: Real> {
    pub shard: usize,
    pub cycle: u64,
    /// Owned x-range `[i0, i1)` the strips cover.
    pub i0: usize,
    pub i1: usize,
    /// Grid points this shard's own analysis updated — receivers fold this
    /// into their posterior-diagnostics decision.
    pub points_analyzed: usize,
    /// Per-member strip flats (every member, alive and respawned).
    pub strips: Vec<Vec<T>>,
}

/// Everything a (cycle, shard) slot on the bus can hold.
#[derive(Clone, Debug, PartialEq)]
pub enum HaloFrame<T: Real> {
    /// The analyzed strip arrived.
    Strip(HaloMsg<T>),
    /// The shard deliberately published nothing this cycle (its halo was
    /// dropped in transit, modeled at the sender) — receivers step to the
    /// halo-reuse rung.
    Skip { shard: usize, cycle: u64 },
    /// The shard declared itself over deadline — receivers treat it as
    /// lagging and step to the halo-reuse rung without waiting.
    Stall { shard: usize, cycle: u64 },
}

impl<T: Real> HaloFrame<T> {
    pub fn shard(&self) -> usize {
        match self {
            HaloFrame::Strip(m) => m.shard,
            HaloFrame::Skip { shard, .. } | HaloFrame::Stall { shard, .. } => *shard,
        }
    }

    pub fn cycle(&self) -> u64 {
        match self {
            HaloFrame::Strip(m) => m.cycle,
            HaloFrame::Skip { cycle, .. } | HaloFrame::Stall { cycle, .. } => *cycle,
        }
    }
}

/// Typed decode failures — a corrupt or alien halo must degrade the
/// receiving shard's cycle, never panic it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HaloError {
    TooShort,
    BadMagic,
    BadVersion(u16),
    BadKind(u8),
    /// The outer checksum failed: bytes damaged in transit.
    Corrupt,
    /// The member payload failed to decode (inner codec error).
    Payload(FormatError),
    /// Strip shape disagrees with the declared `[i0, i1)` range.
    GeometryMismatch {
        declared: usize,
        got: usize,
    },
    /// The frame arrived from a fenced-off (pre-respawn) epoch of its
    /// sender — a zombie writer. Typed reject, never applied.
    StaleEpoch {
        got: u64,
        fenced: u64,
    },
}

impl std::fmt::Display for HaloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaloError::TooShort => write!(f, "halo frame too short"),
            HaloError::BadMagic => write!(f, "bad halo magic"),
            HaloError::BadVersion(v) => write!(f, "unsupported halo version {v}"),
            HaloError::BadKind(k) => write!(f, "unknown halo kind {k}"),
            HaloError::Corrupt => write!(f, "halo frame corrupted in transit"),
            HaloError::Payload(e) => write!(f, "halo payload: {e}"),
            HaloError::GeometryMismatch { declared, got } => {
                write!(f, "halo geometry mismatch: declared {declared}, got {got}")
            }
            HaloError::StaleEpoch { got, fenced } => {
                write!(f, "halo from fenced epoch {got} (current {fenced})")
            }
        }
    }
}

impl std::error::Error for HaloError {}

/// Encode a frame, checksum-sealed.
pub fn encode_halo<T: Real>(frame_msg: &HaloFrame<T>) -> Result<Bytes, HaloError> {
    let (kind, shard, cycle, i0, i1, points, payload) = match frame_msg {
        HaloFrame::Strip(m) => {
            let payload = encode_states(&m.strips).map_err(HaloError::Payload)?;
            (
                KIND_STRIP,
                m.shard,
                m.cycle,
                m.i0,
                m.i1,
                m.points_analyzed,
                Some(payload),
            )
        }
        HaloFrame::Skip { shard, cycle } => (KIND_SKIP, *shard, *cycle, 0, 0, 0, None),
        HaloFrame::Stall { shard, cycle } => (KIND_STALL, *shard, *cycle, 0, 0, 0, None),
    };
    let body = payload.as_ref().map(|p| p.len()).unwrap_or(0);
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + body + 8);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u8(kind);
    buf.put_u32(cast::u32_of_index(shard));
    buf.put_u64(cycle);
    buf.put_u32(cast::u32_of_index(i0));
    buf.put_u32(cast::u32_of_index(i1));
    buf.put_u64(cast::u64_of(points));
    if let Some(p) = payload {
        buf.put_slice(&p);
    }
    Ok(frame::seal(buf))
}

/// Decode a sealed frame.
pub fn decode_halo<T: Real>(data: &[u8]) -> Result<HaloFrame<T>, HaloError> {
    if data.len() < HEADER_BYTES + 8 {
        return Err(HaloError::TooShort);
    }
    let mut buf = frame::open(data).map_err(|e| match e {
        FrameError::TooShort => HaloError::TooShort,
        FrameError::ChecksumMismatch => HaloError::Corrupt,
    })?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(HaloError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(HaloError::BadVersion(version));
    }
    let kind = buf.get_u8();
    let shard = cast::index_of_u32(buf.get_u32());
    let cycle = buf.get_u64();
    let i0 = cast::index_of_u32(buf.get_u32());
    let i1 = cast::index_of_u32(buf.get_u32());
    let points_analyzed = cast::index_of_u64(buf.get_u64());
    match kind {
        KIND_SKIP => Ok(HaloFrame::Skip { shard, cycle }),
        KIND_STALL => Ok(HaloFrame::Stall { shard, cycle }),
        KIND_STRIP => {
            let strips = decode_states::<T>(buf).map_err(HaloError::Payload)?;
            if i1 < i0 {
                return Err(HaloError::GeometryMismatch {
                    declared: 0,
                    got: i1,
                });
            }
            // Every member strip must be a whole number of (i1-i0) columns;
            // the receiver's ShardLayout does the exact-length check against
            // its own geometry on application.
            if let Some(first) = strips.first() {
                let width = i1 - i0;
                if width == 0 || first.len() % width != 0 {
                    return Err(HaloError::GeometryMismatch {
                        declared: width,
                        got: first.len(),
                    });
                }
            }
            Ok(HaloFrame::Strip(HaloMsg {
                shard,
                cycle,
                i0,
                i1,
                points_analyzed,
                strips,
            }))
        }
        other => Err(HaloError::BadKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> HaloMsg<f32> {
        HaloMsg {
            shard: 1,
            cycle: 42,
            i0: 5,
            i1: 7,
            points_analyzed: 12,
            strips: vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]],
        }
    }

    #[test]
    fn strip_round_trips() {
        let f = HaloFrame::Strip(msg());
        let bytes = encode_halo(&f).unwrap();
        assert_eq!(decode_halo::<f32>(&bytes).unwrap(), f);
    }

    #[test]
    fn markers_round_trip() {
        for f in [
            HaloFrame::<f32>::Skip { shard: 0, cycle: 3 },
            HaloFrame::<f32>::Stall { shard: 2, cycle: 9 },
        ] {
            let bytes = encode_halo(&f).unwrap();
            assert_eq!(decode_halo::<f32>(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn corruption_is_typed_not_a_panic() {
        let mut bytes = encode_halo(&HaloFrame::Strip(msg())).unwrap().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        assert_eq!(decode_halo::<f32>(&bytes).unwrap_err(), HaloError::Corrupt);
    }

    #[test]
    fn truncation_and_alien_bytes_are_typed() {
        assert_eq!(decode_halo::<f32>(b"xx").unwrap_err(), HaloError::TooShort);
        let bytes = encode_halo(&HaloFrame::Strip(msg())).unwrap();
        assert_eq!(
            decode_halo::<f32>(&bytes[..bytes.len() - 3]).unwrap_err(),
            HaloError::Corrupt
        );
    }

    #[test]
    fn precision_mismatch_is_typed() {
        let bytes = encode_halo(&HaloFrame::Strip(msg())).unwrap();
        assert!(matches!(
            decode_halo::<f64>(&bytes).unwrap_err(),
            HaloError::Payload(FormatError::PrecisionMismatch { .. })
        ));
    }
}
