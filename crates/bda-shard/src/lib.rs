//! # bda-shard — multi-process shard federation
//!
//! The paper's 30-second cycle exists because the analysis was spread over
//! 11,580 Fugaku nodes; one process owning every member and every radar is
//! a single fault domain around the whole forecast. This crate splits the
//! LETKF domain into `S` shards — separate OS processes in production
//! (`examples/federation.rs`), phase-locked in-process workers for
//! deterministic tests ([`federation::LocalFederation`]) — that exchange
//! analyzed-strip "halos" through a spool directory
//! ([`bus::HaloBus`], the file flavour of JIT-DT, sequenced with the same
//! [`bda_jitdt::SeqTracker`] discipline as radar volumes) and checkpoint
//! independently in the CRC-guarded [`bda_io::checkpoint`] format under
//! shard-scoped filenames, so a SIGKILLed shard resumes on its own while
//! the rest of the federation keeps cycling.
//!
//! Correctness is anchored the hard way: with no faults injected, a
//! seeded OSSE produces a **bit-identical** analysis single-process vs
//! sharded (any `S`), and deterministic shard-fault scenarios (kill,
//! stall, halo drop/dup) land on exact expected outcome tables — see
//! `tests/shard_parity.rs` and the module docs of [`worker`] for why the
//! parity holds.
//!
//! Shard-process supervision (deadlines, typed shard health, respawn
//! budgets, federation quorum) lives in `bda_workflow::shard_supervisor`,
//! which this crate's bus implements the control plane for.

pub mod bus;
pub mod chaos;
pub mod facade;
pub mod federation;
pub mod fence;
pub mod layout;
pub mod msg;
pub mod netbus;
pub mod wire;
pub mod worker;

pub use bus::{CollectStatus, HaloBus, HaloTransport};
pub use chaos::ChaosProxy;
pub use federation::{FederationConfig, LocalFederation, NetFederation};
pub use fence::{Admit, FenceTable, SlotGet};
pub use layout::ShardLayout;
pub use msg::{decode_halo, encode_halo, HaloError, HaloFrame, HaloMsg};
pub use netbus::{NetBus, NetBusConfig, NetStats};
pub use wire::{encode_msg, NetFrameReader, NetMsg, WireEvent};
pub use worker::{outcome_table, PendingPublish, ShardConfig, ShardWorker};
