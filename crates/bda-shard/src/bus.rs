//! The federation bus: a shared spool directory of sealed halo frames.
//!
//! This is deliberately the *file* flavour of JIT-DT — the paper's
//! transfer daemon watches for new-file creation and ships whole volumes;
//! here every shard publishes `halo-c{cycle}-s{shard}.bin` atomically
//! (tmp + rename, the [`bda_io::checkpoint`] convention) and peers poll
//! for it. Sequencing discipline comes from the same
//! [`bda_jitdt::SeqTracker`] the ingest and egress paths use: each
//! receiver classifies halo cycle numbers per peer, so a replayed halo is
//! a typed duplicate and a stale one is typed out-of-order instead of
//! silently overwriting newer state.
//!
//! The bus also carries the supervisor's control plane: per-shard dead
//! markers, a federation-wide forecast-only directive, and per-cycle
//! outcome record files the supervisor (a different OS process) reads to
//! decide deadlines and quorum.

use crate::msg::{decode_halo, encode_halo, HaloError, HaloFrame};
use bda_num::Real;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// What a receiver found in a (cycle, shard) bus slot.
#[derive(Clone, Debug, PartialEq)]
pub enum CollectStatus<T: Real> {
    /// The peer's analyzed strip is here.
    Ready(crate::msg::HaloMsg<T>),
    /// The peer published a skip marker (halo dropped in transit).
    Skipped,
    /// The peer published a stall marker (missed its deadline).
    Stalled,
    /// Nothing published (yet); with a dead marker on the bus this is
    /// final, otherwise it may still arrive.
    Missing { peer_dead: bool },
    /// A frame exists but failed to decode — typed, never a panic.
    Corrupt(HaloError),
}

/// The seam between a shard worker and whatever carries its halos — the
/// file spool ([`HaloBus`]) or loopback sockets
/// ([`NetBus`](crate::netbus::NetBus)). Everything a worker does to a
/// transport during a cycle lives here; the degradation ladder on top is
/// transport-agnostic, which is what lets the socket federation inherit
/// the file federation's parity proofs wholesale.
pub trait HaloTransport {
    /// Publish a halo frame for its (cycle, shard) slot. Network
    /// delivery failure is *not* an error — it degrades receivers onto
    /// the ladder; only local encode/spool failures surface here.
    fn publish<T: Real>(&self, frame: &HaloFrame<T>) -> Result<(), String>;
    /// Single non-blocking poll of shard `shard`'s slot for `cycle`.
    fn try_collect<T: Real>(&self, cycle: u64, shard: usize) -> CollectStatus<T>;
    /// Poll shard `shard`'s slot until something arrives, the peer is
    /// dead, or `deadline` elapses.
    fn collect_blocking<T: Real>(
        &self,
        cycle: u64,
        shard: usize,
        deadline: Duration,
        poll: Duration,
    ) -> CollectStatus<T>;
    /// The active forecast-only directive, if any.
    fn forecast_only_from(&self) -> Option<u64>;
    /// Record the shard's outcome line for `cycle` on the control plane.
    fn write_record(&self, cycle: u64, shard: usize, line: &str) -> std::io::Result<()>;
}

/// Shared spool directory handle.
#[derive(Clone, Debug)]
pub struct HaloBus {
    dir: PathBuf,
}

fn halo_name(cycle: u64, shard: usize) -> String {
    format!("halo-c{cycle:06}-s{shard:03}.bin")
}

fn record_name(cycle: u64, shard: usize) -> String {
    format!("rec-c{cycle:06}-s{shard:03}.txt")
}

fn dead_name(shard: usize) -> String {
    format!("dead-s{shard:03}")
}

fn link_name(shard: usize) -> String {
    format!("link-s{shard:03}")
}

const FORECAST_ONLY: &str = "forecast-only-from";

impl HaloBus {
    /// Open (creating if needed) the spool directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically write `bytes` to `name` (tmp + rename, so a reader never
    /// observes a half-written frame and a republish after resume is
    /// idempotent). `pub(crate)` so the socket transport reuses the same
    /// convention for its control-plane files (port registry, epoch fence,
    /// link health) in the same directory.
    pub(crate) fn write_atomic(&self, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join(format!(".tmp-{name}"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(name))
    }

    /// Publish a halo frame for its (cycle, shard) slot.
    pub fn publish<T: Real>(&self, frame: &HaloFrame<T>) -> Result<(), String> {
        let bytes = encode_halo(frame).map_err(|e| format!("encode halo: {e}"))?;
        self.write_atomic(&halo_name(frame.cycle(), frame.shard()), &bytes)
            .map_err(|e| format!("publish halo: {e}"))
    }

    /// Single non-blocking poll of shard `shard`'s slot for `cycle`.
    pub fn try_collect<T: Real>(&self, cycle: u64, shard: usize) -> CollectStatus<T> {
        let path = self.dir.join(halo_name(cycle, shard));
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                return CollectStatus::Missing {
                    peer_dead: self.is_dead(shard),
                }
            }
        };
        match decode_halo::<T>(&bytes) {
            Ok(HaloFrame::Strip(m)) => CollectStatus::Ready(m),
            Ok(HaloFrame::Skip { .. }) => CollectStatus::Skipped,
            Ok(HaloFrame::Stall { .. }) => CollectStatus::Stalled,
            Err(e) => CollectStatus::Corrupt(e),
        }
    }

    /// Poll shard `shard`'s slot until something is there, the peer is
    /// marked dead, or `deadline` elapses (the per-shard halo deadline —
    /// on expiry the caller steps the degradation ladder).
    pub fn collect_blocking<T: Real>(
        &self,
        cycle: u64,
        shard: usize,
        deadline: Duration,
        poll: Duration,
    ) -> CollectStatus<T> {
        let start = Instant::now(); // bda-check: allow(wallclock)
        loop {
            let status = self.try_collect::<T>(cycle, shard);
            match status {
                CollectStatus::Missing { peer_dead: false } if start.elapsed() < deadline => {
                    std::thread::sleep(poll);
                }
                other => return other,
            }
        }
    }

    /// Mark shard `shard` dead (supervisor gave up respawning it).
    pub fn mark_dead(&self, shard: usize) -> std::io::Result<()> {
        self.write_atomic(&dead_name(shard), b"dead")
    }

    /// Lift a dead marker (the shard respawned after all).
    pub fn mark_alive(&self, shard: usize) -> std::io::Result<()> {
        match fs::remove_file(self.dir.join(dead_name(shard))) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Whether shard `shard` carries a dead marker.
    pub fn is_dead(&self, shard: usize) -> bool {
        self.dir.join(dead_name(shard)).exists()
    }

    /// Supervisor directive: from `cycle` on, every shard runs
    /// forecast-only (the last ladder rung — quorum of shards lost).
    pub fn set_forecast_only_from(&self, cycle: u64) -> std::io::Result<()> {
        self.write_atomic(FORECAST_ONLY, format!("{cycle}").as_bytes())
    }

    /// The active forecast-only directive, if any.
    pub fn forecast_only_from(&self) -> Option<u64> {
        let bytes = fs::read_to_string(self.dir.join(FORECAST_ONLY)).ok()?;
        bytes.trim().parse().ok()
    }

    /// Record shard `shard`'s outcome line for `cycle` — the supervisor's
    /// readiness signal (a shard that wrote its record met its deadline).
    pub fn write_record(&self, cycle: u64, shard: usize, line: &str) -> std::io::Result<()> {
        self.write_atomic(&record_name(cycle, shard), line.as_bytes())
    }

    /// Read shard `shard`'s outcome line for `cycle`.
    pub fn read_record(&self, cycle: u64, shard: usize) -> Option<String> {
        fs::read_to_string(self.dir.join(record_name(cycle, shard))).ok()
    }

    /// Whether shard `shard` finished `cycle` (its record exists).
    pub fn has_record(&self, cycle: u64, shard: usize) -> bool {
        self.dir.join(record_name(cycle, shard)).exists()
    }

    /// Publish shard `shard`'s per-peer link health (socket federations;
    /// the supervisor folds it into quorum). One `peer:state` token per
    /// peer, space-separated.
    pub fn write_link_states(
        &self,
        shard: usize,
        states: &[(usize, bda_workflow::LinkHealth)],
    ) -> std::io::Result<()> {
        let line = states
            .iter()
            .map(|(peer, h)| format!("{peer}:{h}"))
            .collect::<Vec<_>>()
            .join(" ");
        self.write_atomic(&link_name(shard), line.as_bytes())
    }

    /// Shard `shard`'s published link health, if any (file-bus
    /// federations never write one).
    pub fn read_link_states(&self, shard: usize) -> Vec<bda_workflow::LinkHealth> {
        let Ok(line) = fs::read_to_string(self.dir.join(link_name(shard))) else {
            return Vec::new();
        };
        line.split_whitespace()
            .filter_map(|tok| tok.split_once(':'))
            .filter_map(|(_, h)| h.parse().ok())
            .collect()
    }
}

impl HaloTransport for HaloBus {
    fn publish<T: Real>(&self, frame: &HaloFrame<T>) -> Result<(), String> {
        HaloBus::publish(self, frame)
    }
    fn try_collect<T: Real>(&self, cycle: u64, shard: usize) -> CollectStatus<T> {
        HaloBus::try_collect(self, cycle, shard)
    }
    fn collect_blocking<T: Real>(
        &self,
        cycle: u64,
        shard: usize,
        deadline: Duration,
        poll: Duration,
    ) -> CollectStatus<T> {
        HaloBus::collect_blocking(self, cycle, shard, deadline, poll)
    }
    fn forecast_only_from(&self) -> Option<u64> {
        HaloBus::forecast_only_from(self)
    }
    fn write_record(&self, cycle: u64, shard: usize, line: &str) -> std::io::Result<()> {
        HaloBus::write_record(self, cycle, shard, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::HaloMsg;

    fn tmp_bus(tag: &str) -> HaloBus {
        let dir = std::env::temp_dir().join(format!("bda-halo-bus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        HaloBus::new(dir).unwrap()
    }

    fn strip(cycle: u64, shard: usize) -> HaloFrame<f32> {
        HaloFrame::Strip(HaloMsg {
            shard,
            cycle,
            i0: 0,
            i1: 2,
            points_analyzed: 4,
            strips: vec![vec![1.0; 4]; 2],
        })
    }

    #[test]
    fn publish_then_collect_round_trips() {
        let bus = tmp_bus("roundtrip");
        assert_eq!(
            bus.try_collect::<f32>(0, 0),
            CollectStatus::Missing { peer_dead: false }
        );
        bus.publish(&strip(0, 0)).unwrap();
        match bus.try_collect::<f32>(0, 0) {
            CollectStatus::Ready(m) => assert_eq!((m.cycle, m.shard), (0, 0)),
            other => panic!("expected Ready, got {other:?}"),
        }
        // Republish (post-resume replay) is idempotent.
        bus.publish(&strip(0, 0)).unwrap();
        assert!(matches!(
            bus.try_collect::<f32>(0, 0),
            CollectStatus::Ready(_)
        ));
    }

    #[test]
    fn markers_and_dead_flags_are_typed() {
        let bus = tmp_bus("markers");
        bus.publish(&HaloFrame::<f32>::Skip { shard: 1, cycle: 2 })
            .unwrap();
        bus.publish(&HaloFrame::<f32>::Stall { shard: 2, cycle: 2 })
            .unwrap();
        assert_eq!(bus.try_collect::<f32>(2, 1), CollectStatus::Skipped);
        assert_eq!(bus.try_collect::<f32>(2, 2), CollectStatus::Stalled);
        bus.mark_dead(1).unwrap();
        assert!(bus.is_dead(1));
        assert_eq!(
            bus.try_collect::<f32>(3, 1),
            CollectStatus::Missing { peer_dead: true }
        );
        bus.mark_alive(1).unwrap();
        assert!(!bus.is_dead(1));
        bus.mark_alive(1).unwrap(); // idempotent
    }

    #[test]
    fn corrupt_frame_is_a_typed_status() {
        let bus = tmp_bus("corrupt");
        let mut bytes = encode_halo(&strip(5, 0)).unwrap().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        bus.write_atomic(&halo_name(5, 0), &bytes).unwrap();
        assert_eq!(
            bus.try_collect::<f32>(5, 0),
            CollectStatus::Corrupt(HaloError::Corrupt)
        );
    }

    #[test]
    fn forecast_only_directive_and_records() {
        let bus = tmp_bus("directive");
        assert_eq!(bus.forecast_only_from(), None);
        bus.set_forecast_only_from(7).unwrap();
        assert_eq!(bus.forecast_only_from(), Some(7));
        assert!(!bus.has_record(3, 0));
        bus.write_record(3, 0, "completed alive 6").unwrap();
        assert!(bus.has_record(3, 0));
        assert_eq!(bus.read_record(3, 0).unwrap(), "completed alive 6");
    }

    #[test]
    fn blocking_collect_returns_on_deadline() {
        let bus = tmp_bus("deadline");
        let status =
            bus.collect_blocking::<f32>(9, 0, Duration::from_millis(30), Duration::from_millis(5));
        assert_eq!(status, CollectStatus::Missing { peer_dead: false });
    }
}
