//! Loopback-TCP halo transport with epoch fencing.
//!
//! [`NetBus`] implements [`HaloTransport`](crate::bus::HaloTransport) over
//! real sockets: every shard binds a loopback listener, advertises its
//! port through a registry file on the control-plane directory, and pushes
//! sealed halo frames to every peer as `BDAN` messages
//! ([`crate::wire`]). The file [`HaloBus`] stays underneath as the
//! *control plane* (records, dead markers, the forecast-only directive,
//! link-health lines) — only the hot halo path moves onto sockets.
//!
//! The design invariant is the crate's: **no network behaviour can
//! corrupt an analysis — only degrade it** onto the typed ladder.
//! Concretely:
//!
//! - **Sealed frames, resynced streams.** Bytes damaged in transit fail
//!   the body checksum and cost the receiver exactly one magic; garbage
//!   between messages is skipped to the next magic. Both are typed
//!   [`WireEvent`]s counted in [`NetStats`], never applied state.
//! - **Epoch fencing.** Every (re)spawn of a shard's bus increments a
//!   durable epoch (`epoch-s{NNN}` on the control plane) carried in the
//!   hello handshake and every frame. Receivers fence each peer at the
//!   highest epoch seen; anything older is a zombie writer and lands on
//!   [`HaloError::StaleEpoch`] — a typed reject, never an applied halo.
//! - **Pull-based recovery.** Publishers keep their sealed frames in an
//!   in-cycle history; a receiver that missed a push (partition, respawn,
//!   lost connection) sends `REQ` and gets the frame replayed. Respawn
//!   replay, partition heal and plain packet loss all share this one
//!   path, which is why socket federations keep bit-parity across them.
//! - **Bounded, jittered reconnect.** Outbound links redial through the
//!   shared [`Backoff`] helper; a link down past `partition_after` turns
//!   [`LinkHealth::Partitioned`], one that keeps redialing turns
//!   [`LinkHealth::Flapping`] — published to the control plane for the
//!   supervisor's quorum arithmetic.
//!
//! Delivery failure is *not* a publish error: a partitioned peer simply
//! misses the push and either pulls the frame later or degrades onto
//! halo-reuse at its deadline. Only local encode failures surface.

use crate::bus::{CollectStatus, HaloBus, HaloTransport};
use crate::fence::{Admit, FenceTable, SlotGet};
use crate::msg::{decode_halo, encode_halo, HaloError, HaloFrame};
use crate::wire::{encode_msg, NetFrameReader, NetMsg, WireEvent};
use bda_num::{cast, Real};
use bda_workflow::backoff::Backoff;
use bda_workflow::LinkHealth;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many cycles behind a shard's own published cycle a halo slot may
/// lag before [`FenceTable::prune_below`] drops it — far beyond any
/// collection deadline, so pruning can never race a live collect.
const INBOX_KEEP_CYCLES: u64 = 64;

/// Registry file carrying shard `shard`'s advertised listen port.
pub fn registry_name(shard: usize) -> String {
    format!("net-s{shard:03}")
}

/// Registry file carrying shard `shard`'s *raw* listen port when an
/// in-path proxy owns the advertised one (chaos mode).
pub fn raw_registry_name(shard: usize) -> String {
    format!("net-raw-s{shard:03}")
}

/// Durable epoch counter for shard `shard` — read + incremented on every
/// [`NetBus::start`] so respawns fence their predecessors.
pub fn epoch_name(shard: usize) -> String {
    format!("epoch-s{shard:03}")
}

/// Tuning for one shard's socket transport. Defaults suit in-process
/// tests; the multi-process example stretches the deadlines.
#[derive(Clone, Debug)]
pub struct NetBusConfig {
    pub shard: usize,
    pub n_shards: usize,
    /// Interval between heartbeats (which double as the reconnect and
    /// link-health clock).
    pub heartbeat: Duration,
    /// Reconnect backoff base / cap (jittered, see [`Backoff`]).
    pub reconnect_base: Duration,
    pub reconnect_cap: Duration,
    /// Dial timeout for one connection attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout — the granularity at which reader threads
    /// notice shutdown.
    pub read_timeout: Duration,
    /// A link down longer than this is `Partitioned`.
    pub partition_after: Duration,
    /// Reconnect count at which a link turns `Flapping` (sticky).
    pub flap_reconnects: u64,
    /// Seed for reconnect jitter (derived per shard).
    pub seed: u64,
    /// Chaos mode: advertise under [`raw_registry_name`] and leave
    /// [`registry_name`] to the in-path proxy.
    pub raw_registry: bool,
}

impl NetBusConfig {
    pub fn new(shard: usize, n_shards: usize) -> Self {
        Self {
            shard,
            n_shards,
            heartbeat: Duration::from_millis(25),
            reconnect_base: Duration::from_millis(5),
            reconnect_cap: Duration::from_millis(160),
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(25),
            partition_after: Duration::from_millis(400),
            flap_reconnects: 3,
            seed: 0xB0A5_0000 ^ cast::u64_of(shard),
            raw_registry: false,
        }
    }
}

/// Transport counters — every typed network event the bus survived.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Halo messages accepted into the inbox.
    pub halos_received: u64,
    /// `REQ` pulls answered from history.
    pub reqs_served: u64,
    /// Messages rejected because their epoch was fenced off (zombies).
    pub stale_epoch_rejects: u64,
    /// Garbage runs skipped by stream resync.
    pub wire_garbage: u64,
    /// Sealed bodies that failed their checksum.
    pub wire_corrupt: u64,
    /// Successful outbound dials (first connects included).
    pub connects: u64,
    /// Successful re-dials after a link dropped.
    pub reconnects: u64,
}

/// Outbound link state for one peer.
struct Link {
    stream: Option<TcpStream>,
    backoff: Backoff,
    next_attempt: Option<Instant>,
    /// Successful dials (first connect included).
    connects: u64,
    down_since: Option<Instant>,
    flapping: bool,
}

impl Link {
    fn health(&self, partition_after: Duration) -> LinkHealth {
        if let Some(since) = self.down_since {
            // bda-check: allow(wallclock) — link-health clock.
            if since.elapsed() >= partition_after {
                return LinkHealth::Partitioned;
            }
        }
        if self.flapping {
            LinkHealth::Flapping
        } else {
            LinkHealth::Connected
        }
    }
}

struct Shared {
    cfg: NetBusConfig,
    /// This instance's fenced epoch (bumped on the control plane at start).
    epoch: u64,
    /// Control plane: records, dead markers, directives, registries.
    ctl: HaloBus,
    stop: AtomicBool,
    current_cycle: AtomicU64,
    /// Per-peer epoch fences plus the (cycle, peer) → newest-epoch halo
    /// slot store — the extracted state machine the loom suite checks.
    fence: FenceTable<Bytes>,
    /// Own published frames by cycle — the `REQ` replay source.
    history: Mutex<BTreeMap<u64, Bytes>>,
    /// Highest cycle each peer has advertised (heartbeats, halos, reqs
    /// all carry the sender's current cycle) — the lag detector.
    peer_cycle: Vec<AtomicU64>,
    /// When each peer was last heard from (any fence-valid message).
    last_heard: Vec<Mutex<Option<Instant>>>,
    links: Vec<Mutex<Link>>,
    stats: Mutex<NetStats>,
    /// Reader threads spawned per accepted/dialed connection.
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// Socket halo transport for one shard. See the module docs.
pub struct NetBus {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    heartbeat_thread: Option<JoinHandle<()>>,
}

impl NetBus {
    /// Bind a loopback listener, bump and fence this shard's epoch, and
    /// advertise the port on the control-plane registry. `dir` is the
    /// same spool directory a file federation would use.
    pub fn start(cfg: NetBusConfig, dir: impl AsRef<Path>) -> Result<Self, String> {
        let ctl = HaloBus::new(dir.as_ref()).map_err(|e| format!("netbus control plane: {e}"))?;
        let shard = cfg.shard;
        let epoch = bump_epoch(&ctl, shard)?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("netbus bind shard {shard}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("netbus nonblocking: {e}"))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("netbus local_addr: {e}"))?
            .port();
        let reg = if cfg.raw_registry {
            raw_registry_name(shard)
        } else {
            registry_name(shard)
        };
        ctl.write_atomic(&reg, format!("{port} {epoch}").as_bytes())
            .map_err(|e| format!("netbus registry: {e}"))?;

        let links = (0..cfg.n_shards)
            .map(|peer| {
                Mutex::new(Link {
                    stream: None,
                    backoff: Backoff::new(cfg.reconnect_base, cfg.reconnect_cap)
                        .with_jitter(0.25, cfg.seed ^ cast::u64_of(peer)),
                    next_attempt: None,
                    connects: 0,
                    down_since: None,
                    flapping: false,
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            epoch,
            ctl,
            stop: AtomicBool::new(false),
            current_cycle: AtomicU64::new(0),
            fence: FenceTable::new(cfg.n_shards),
            history: Mutex::new(BTreeMap::new()),
            peer_cycle: (0..cfg.n_shards).map(|_| AtomicU64::new(0)).collect(),
            last_heard: (0..cfg.n_shards).map(|_| Mutex::new(None)).collect(),
            links,
            stats: Mutex::new(NetStats::default()),
            readers: Mutex::new(Vec::new()),
            cfg,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(accept_shared, listener));
        let hb_shared = Arc::clone(&shared);
        let heartbeat_thread = std::thread::spawn(move || heartbeat_loop(hb_shared));
        Ok(Self {
            shared,
            accept_thread: Some(accept_thread),
            heartbeat_thread: Some(heartbeat_thread),
        })
    }

    /// This instance's fenced epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// The control-plane file bus underneath.
    pub fn control(&self) -> &HaloBus {
        &self.shared.ctl
    }

    /// Snapshot of the transport counters.
    pub fn stats(&self) -> NetStats {
        self.shared.stats.lock().clone()
    }

    /// Whether `shard` is alive but visibly *behind* `cycle` — beacons
    /// still fresh (within `partition_after`) and its advertised cycle
    /// short of the requested one. A lagging peer is a scheduling fact,
    /// not a fault: free-running federations extend their collect past
    /// the nominal deadline for it (a peer stuck in its *own* deadline
    /// wait would otherwise cascade false degradations downstream),
    /// while a partitioned peer goes silent, stops qualifying, and
    /// expires onto the ladder on time. The extension is capped at 8×
    /// the nominal deadline as a livelock backstop; progress is
    /// otherwise guaranteed because the least-advanced shard never sees
    /// a peer behind it, so it never extends.
    fn peer_is_lagging(
        &self,
        cycle: u64,
        shard: usize,
        start: Instant,
        deadline: Duration,
    ) -> bool {
        if shard >= self.shared.cfg.n_shards {
            return false;
        }
        if start.elapsed() >= deadline.saturating_mul(8) {
            return false;
        }
        if self.shared.peer_cycle[shard].load(Ordering::SeqCst) >= cycle {
            return false;
        }
        let heard = *self.shared.last_heard[shard].lock();
        // bda-check: allow(wallclock) — peer-liveness clock.
        heard.is_some_and(|at| at.elapsed() < self.shared.cfg.partition_after)
    }

    /// Per-peer link health (own slot reads `Connected`).
    pub fn link_health(&self) -> Vec<(usize, LinkHealth)> {
        (0..self.shared.cfg.n_shards)
            .filter(|&p| p != self.shared.cfg.shard)
            .map(|p| {
                (
                    p,
                    self.shared.links[p]
                        .lock()
                        .health(self.shared.cfg.partition_after),
                )
            })
            .collect()
    }
}

impl Drop for NetBus {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for link in &self.shared.links {
            let mut l = link.lock();
            if let Some(s) = l.stream.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.heartbeat_thread.take() {
            let _ = t.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock());
        for t in readers {
            let _ = t.join();
        }
    }
}

/// Read, increment and persist shard `shard`'s epoch counter.
fn bump_epoch(ctl: &HaloBus, shard: usize) -> Result<u64, String> {
    let path = ctl.dir().join(epoch_name(shard));
    let prev: u64 = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    let epoch = prev + 1;
    ctl.write_atomic(&epoch_name(shard), format!("{epoch}").as_bytes())
        .map_err(|e| format!("netbus epoch: {e}"))?;
    Ok(epoch)
}

/// Resolve a peer's dialable address from its registry file.
fn peer_addr(shared: &Shared, peer: usize) -> Option<SocketAddr> {
    let name = registry_name(peer);
    let line = std::fs::read_to_string(shared.ctl.dir().join(name)).ok()?;
    let port: u16 = line.split_whitespace().next()?.parse().ok()?;
    Some(SocketAddr::from(([127, 0, 0, 1], port)))
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
                let _ = stream.set_nodelay(true);
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || reader_loop(conn_shared, stream));
                shared.readers.lock().push(handle);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Drain one connection: parse `BDAN` messages, fence epochs, slot halos,
/// answer `REQ`s on the same stream. Every abnormal byte is a typed,
/// counted event; nothing here can panic the shard.
fn reader_loop(shared: Arc<Shared>, stream: TcpStream) {
    let mut reader = NetFrameReader::new();
    let mut buf = [0u8; 64 * 1024];
    let mut conn = stream;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match conn.read(&mut buf) {
            Ok(0) => {
                reader.finish();
                drain_events(&shared, &mut reader, &mut conn);
                return;
            }
            Ok(n) => {
                reader.push(&buf[..n]);
                drain_events(&shared, &mut reader, &mut conn);
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn drain_events(shared: &Shared, reader: &mut NetFrameReader, conn: &mut TcpStream) {
    while let Some(ev) = reader.next_event() {
        match ev {
            WireEvent::Msg { msg, .. } => handle_msg(shared, msg, conn),
            WireEvent::Garbage { .. } => shared.stats.lock().wire_garbage += 1,
            WireEvent::Corrupt => shared.stats.lock().wire_corrupt += 1,
        }
    }
}

fn handle_msg(shared: &Shared, msg: NetMsg, conn: &mut TcpStream) {
    let sender = msg.sender();
    if sender >= shared.cfg.n_shards || sender == shared.cfg.shard {
        // Alien or reflected sender id — typed drop, same bucket as
        // corruption (a scribbled sender field fails here, not deeper in).
        shared.stats.lock().wire_corrupt += 1;
        return;
    }
    // Epoch fence: anything below the highest epoch seen from this sender
    // is a zombie (pre-respawn) writer.
    if let Admit::Stale { .. } = shared.fence.observe(sender, msg.epoch()) {
        shared.stats.lock().stale_epoch_rejects += 1;
        return;
    }
    // Liveness bookkeeping for the lag detector: every fence-valid
    // message proves the peer is up, and every cycle-carrying one
    // advertises how far along it is.
    // bda-check: allow(wallclock) — peer-liveness clock.
    *shared.last_heard[sender].lock() = Some(Instant::now());
    if let Some(c) = msg.cycle() {
        shared.peer_cycle[sender].fetch_max(c, Ordering::SeqCst);
    }
    match msg {
        NetMsg::Hello { .. } | NetMsg::Heartbeat { .. } => {}
        NetMsg::Halo {
            sender,
            epoch,
            cycle,
            frame,
        } => {
            // Newer-epoch-wins admission; the fence already passed above,
            // so the frame counts as received even if a raced respawn
            // retro-fences it before anyone collects.
            shared.fence.admit(sender, cycle, epoch, frame);
            shared.stats.lock().halos_received += 1;
        }
        NetMsg::Req { cycle, .. } => {
            let frame = shared.history.lock().get(&cycle).cloned();
            if let Some(frame) = frame {
                let reply = encode_msg(&NetMsg::Halo {
                    sender: shared.cfg.shard,
                    epoch: shared.epoch,
                    cycle,
                    frame,
                });
                let _ = conn.write_all(&reply);
                shared.stats.lock().reqs_served += 1;
            }
        }
    }
}

/// Send `bytes` to `peer`, dialing (or re-dialing under backoff) first if
/// the link is down. Returns whether the write reached the socket —
/// `false` is not an error, it is the peer's problem to pull or degrade.
fn link_send(shared: &Arc<Shared>, peer: usize, bytes: &[u8]) -> bool {
    let mut link = shared.links[peer].lock();
    if link.stream.is_none() && !try_dial(shared, peer, &mut link) {
        return false;
    }
    let Some(stream) = link.stream.as_mut() else {
        return false;
    };
    match stream.write_all(bytes) {
        Ok(()) => true,
        Err(_) => {
            link.stream = None;
            // bda-check: allow(wallclock) — link-health clock.
            link.down_since = Some(Instant::now());
            false
        }
    }
}

/// One dial attempt for `peer`, respecting the backoff schedule. On
/// success the hello handshake goes out first and a reader thread is
/// spawned for the peer's replies (`REQ` answers come back this way).
fn try_dial(shared: &Arc<Shared>, peer: usize, link: &mut Link) -> bool {
    // bda-check: allow(wallclock) — reconnect schedule.
    let now = Instant::now();
    if let Some(at) = link.next_attempt {
        if now < at {
            return false;
        }
    }
    let dial = peer_addr(shared, peer)
        .and_then(|addr| TcpStream::connect_timeout(&addr, shared.cfg.connect_timeout).ok());
    let Some(stream) = dial else {
        // A peer we cannot reach is down whether or not we ever held a
        // connection to it — the first failed attempt timestamps the
        // outage, and `partition_after` later it is typed Partitioned.
        if link.down_since.is_none() {
            link.down_since = Some(now);
        }
        if let Some(delay) = link.backoff.next_delay() {
            link.next_attempt = Some(now + delay);
        }
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let hello = encode_msg(&NetMsg::Hello {
        sender: shared.cfg.shard,
        epoch: shared.epoch,
    });
    if let Ok(reply_stream) = stream.try_clone() {
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || reader_loop(conn_shared, reply_stream));
        shared.readers.lock().push(handle);
    }
    let mut stream = stream;
    if stream.write_all(&hello).is_err() {
        if link.down_since.is_none() {
            link.down_since = Some(now);
        }
        if let Some(delay) = link.backoff.next_delay() {
            link.next_attempt = Some(now + delay);
        }
        return false;
    }
    link.connects += 1;
    if link.connects > shared.cfg.flap_reconnects {
        link.flapping = true;
    }
    {
        let mut stats = shared.stats.lock();
        stats.connects += 1;
        if link.connects > 1 {
            stats.reconnects += 1;
        }
    }
    link.stream = Some(stream);
    link.backoff.reset();
    link.next_attempt = None;
    link.down_since = None;
    true
}

/// Heartbeat + link-health clock: periodically beacons every peer (which
/// also drives reconnects while idle) and publishes this shard's per-peer
/// link health to the control plane for the supervisor's quorum.
fn heartbeat_loop(shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        let cycle = shared.current_cycle.load(Ordering::SeqCst);
        let beat = encode_msg(&NetMsg::Heartbeat {
            sender: shared.cfg.shard,
            epoch: shared.epoch,
            cycle,
        });
        let mut states = Vec::with_capacity(shared.cfg.n_shards.saturating_sub(1));
        for peer in 0..shared.cfg.n_shards {
            if peer == shared.cfg.shard {
                continue;
            }
            link_send(&shared, peer, &beat);
            states.push((
                peer,
                shared.links[peer].lock().health(shared.cfg.partition_after),
            ));
        }
        let _ = shared.ctl.write_link_states(shared.cfg.shard, &states);
        std::thread::sleep(shared.cfg.heartbeat);
    }
}

impl HaloTransport for NetBus {
    /// Store the sealed frame in local history (the `REQ` replay source)
    /// and best-effort push it to every peer. A peer that misses the push
    /// pulls it later or degrades — never an error here.
    fn publish<T: Real>(&self, frame: &HaloFrame<T>) -> Result<(), String> {
        let cycle = frame.cycle();
        self.shared.current_cycle.store(cycle, Ordering::SeqCst);
        // Bound the halo slot store: a slot more than a full collection
        // window behind this shard's own cycle can never be collected.
        self.shared
            .fence
            .prune_below(cycle.saturating_sub(INBOX_KEEP_CYCLES));
        let bytes = encode_halo(frame).map_err(|e| format!("encode halo: {e}"))?;
        self.shared.history.lock().insert(cycle, bytes.clone());
        let msg = encode_msg(&NetMsg::Halo {
            sender: self.shared.cfg.shard,
            epoch: self.shared.epoch,
            cycle,
            frame: bytes,
        });
        for peer in 0..self.shared.cfg.n_shards {
            if peer != self.shared.cfg.shard {
                link_send(&self.shared, peer, &msg);
            }
        }
        Ok(())
    }

    fn try_collect<T: Real>(&self, cycle: u64, shard: usize) -> CollectStatus<T> {
        let bytes = match self.shared.fence.fetch(cycle, shard) {
            SlotGet::Missing => {
                return CollectStatus::Missing {
                    peer_dead: self.shared.ctl.is_dead(shard),
                }
            }
            // A newer epoch of this peer has spoken since the slot was
            // filled — the slot is a zombie's leavings. Typed, not used.
            SlotGet::Fenced { got, fenced } => {
                return CollectStatus::Corrupt(HaloError::StaleEpoch { got, fenced })
            }
            SlotGet::Ready { payload, .. } => payload,
        };
        match decode_halo::<T>(&bytes) {
            Ok(HaloFrame::Strip(m)) => CollectStatus::Ready(m),
            Ok(HaloFrame::Skip { .. }) => CollectStatus::Skipped,
            Ok(HaloFrame::Stall { .. }) => CollectStatus::Stalled,
            Err(e) => CollectStatus::Corrupt(e),
        }
    }

    /// Poll the inbox, nudging the peer with throttled `REQ` pulls while
    /// the slot is empty — the unified recovery path for missed pushes,
    /// healed partitions, and post-respawn replay.
    fn collect_blocking<T: Real>(
        &self,
        cycle: u64,
        shard: usize,
        deadline: Duration,
        poll: Duration,
    ) -> CollectStatus<T> {
        let start = Instant::now(); // bda-check: allow(wallclock)
        let req = encode_msg(&NetMsg::Req {
            sender: self.shared.cfg.shard,
            epoch: self.shared.epoch,
            cycle,
        });
        let mut last_req: Option<Instant> = None;
        let req_every = poll.max(self.shared.cfg.heartbeat);
        loop {
            let status = self.try_collect::<T>(cycle, shard);
            let keep_waiting = matches!(status, CollectStatus::Missing { peer_dead: false })
                || matches!(status, CollectStatus::Corrupt(HaloError::StaleEpoch { .. }));
            if !keep_waiting {
                return status;
            }
            if start.elapsed() >= deadline && !self.peer_is_lagging(cycle, shard, start, deadline) {
                return status;
            }
            // bda-check: allow(wallclock) — REQ throttle.
            let now = Instant::now();
            let due = match last_req {
                None => true,
                Some(t) => now.duration_since(t) >= req_every,
            };
            if due {
                link_send(&self.shared, shard, &req);
                last_req = Some(now);
            }
            std::thread::sleep(poll);
        }
    }

    fn forecast_only_from(&self) -> Option<u64> {
        self.shared.ctl.forecast_only_from()
    }

    fn write_record(&self, cycle: u64, shard: usize, line: &str) -> std::io::Result<()> {
        self.shared.ctl.write_record(cycle, shard, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listener_is_dialable_at_registered_port() {
        let dir = std::env::temp_dir().join(format!("bda-netbus-dial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = NetBus::start(NetBusConfig::new(0, 2), &dir).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let b = NetBus::start(NetBusConfig::new(1, 2), &dir).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let line = std::fs::read_to_string(dir.join("net-s001")).unwrap();
        let port: u16 = line.split_whitespace().next().unwrap().parse().unwrap();
        let r = TcpStream::connect_timeout(
            &SocketAddr::from(([127, 0, 0, 1], port)),
            Duration::from_millis(250),
        );
        assert!(r.is_ok(), "dial to fresh netbus: {r:?}");
        drop(b);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_bumps_are_durable_and_monotonic() {
        let dir = std::env::temp_dir().join(format!("bda-netbus-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctl = HaloBus::new(&dir).unwrap();
        assert_eq!(bump_epoch(&ctl, 0).unwrap(), 1);
        assert_eq!(bump_epoch(&ctl, 0).unwrap(), 2);
        assert_eq!(bump_epoch(&ctl, 1).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
