//! Deterministic in-process federation driver.
//!
//! [`LocalFederation`] runs every shard worker inside one process with a
//! strict phase discipline per cycle — kills/respawns, then every shard's
//! publish, then every shard's collect (single-poll, no timeouts) — so
//! federated campaigns are bit-reproducible and the shard-fault scenarios
//! (`shardkill`, `shardstall`, `halodrop`) land on exact expected outcome
//! tables. The multi-*process* flavour of the same protocol lives in
//! `examples/federation.rs` under the `bda_workflow::shard_supervisor`;
//! both drive the identical [`ShardWorker`] cycle code, which is what
//! makes the local mode a faithful model.
//!
//! A `shardkill:S@C` here is a *virtual SIGKILL*: worker `S` is dropped on
//! the floor at the start of cycle `C` (whatever in-memory state it had is
//! gone) and rebuilt from its own scoped checkpoint, replaying forward to
//! rejoin the federation in the same cycle — exactly the recovery path a
//! real killed process takes, minus the wall clock.

use crate::chaos::ChaosProxy;
use crate::netbus::{NetBus, NetBusConfig};
use crate::worker::{ShardConfig, ShardWorker};
use bda_core::osse::OsseConfig;
use bda_num::Real;
use bda_workflow::FaultPlan;
use std::path::PathBuf;
use std::time::Duration;

/// Federation-wide configuration, expanded per shard by
/// [`FederationConfig::shard_config`].
#[derive(Clone, Debug)]
pub struct FederationConfig {
    pub osse: OsseConfig,
    pub n_shards: usize,
    pub n_cycles: usize,
    pub spinup_seconds: f64,
    /// Root directory: the halo bus spools under `<dir>/bus`, and every
    /// shard checkpoints under the *shared* `<dir>/ckpt` (scoped filenames
    /// keep them apart — deliberately exercising the collision guard).
    pub dir: PathBuf,
    pub checkpoint_every: usize,
    pub plan: FaultPlan,
}

impl FederationConfig {
    pub fn new(
        osse: OsseConfig,
        n_shards: usize,
        n_cycles: usize,
        dir: impl Into<PathBuf>,
    ) -> Self {
        Self {
            osse,
            n_shards,
            n_cycles,
            spinup_seconds: 0.0,
            dir: dir.into(),
            checkpoint_every: 1,
            plan: FaultPlan::none(),
        }
    }

    /// The per-shard worker configuration for shard `s`.
    pub fn shard_config(&self, s: usize) -> ShardConfig {
        let mut cfg = ShardConfig::new(self.osse.clone(), self.n_shards, s, self.n_cycles);
        cfg.spinup_seconds = self.spinup_seconds;
        cfg.bus_dir = self.dir.join("bus");
        cfg.ckpt_dir = self.dir.join("ckpt");
        cfg.checkpoint_every = self.checkpoint_every;
        cfg.plan = self.plan.clone();
        cfg
    }
}

/// All shards in one process, phase-locked per cycle.
pub struct LocalFederation<T: Real> {
    pub cfg: FederationConfig,
    pub workers: Vec<ShardWorker<T>>,
}

impl<T: Real> LocalFederation<T> {
    /// Build and start (or resume) every shard worker.
    pub fn start(cfg: FederationConfig) -> Result<Self, String> {
        let workers = (0..cfg.n_shards)
            .map(|s| ShardWorker::start_or_resume(cfg.shard_config(s)).map(|(w, _)| w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { cfg, workers })
    }

    /// Run the full campaign: every cycle applies scheduled virtual kills
    /// (drop + rebuild-from-checkpoint + replay), then all shards publish,
    /// then all shards collect. Single-poll collects — by the time any
    /// shard collects, every live shard has published, so the no-fault
    /// path is timeout-free and fully deterministic.
    pub fn run(&mut self) -> Result<(), String> {
        for cycle in 0..bda_num::cast::u64_of(self.cfg.n_cycles) {
            for s in self
                .cfg
                .plan
                .shard_kills(bda_num::cast::index_of_u64(cycle))
            {
                self.respawn(s, cycle)?;
            }
            let mut pendings = Vec::with_capacity(self.workers.len());
            for w in &mut self.workers {
                pendings.push(w.run_cycle_publish(cycle)?);
            }
            for (w, p) in self.workers.iter_mut().zip(pendings) {
                w.run_cycle_collect(p, false);
            }
        }
        Ok(())
    }

    /// Virtual SIGKILL of shard `s` at the start of `cycle`: the worker
    /// (and all its in-memory state) is discarded, a fresh one resumes
    /// from its own scoped checkpoint, and the missed cycles are replayed
    /// against the halos still spooled on the bus — republishes are
    /// idempotent and the peers' frames for those cycles are still there,
    /// so the replay reconverges bit-for-bit before `cycle` begins.
    fn respawn(&mut self, s: usize, cycle: u64) -> Result<(), String> {
        let (mut w, resumed) = ShardWorker::start_or_resume(self.cfg.shard_config(s))?;
        if !resumed && cycle > 0 {
            return Err(format!(
                "shard {s} killed at cycle {cycle} but no checkpoint found"
            ));
        }
        while w.next_cycle() < cycle {
            let c = w.next_cycle();
            let p = w.run_cycle_publish(c)?;
            w.run_cycle_collect(p, false);
        }
        self.workers[s] = w;
        Ok(())
    }

    /// Shard `s`'s outcome table.
    pub fn table(&self, s: usize) -> String {
        self.workers[s].table()
    }
}

/// Tuning knobs for an in-process *socket* federation — how long a
/// collect waits (short, so injected network faults expire onto the
/// ladder within test time) and whether the chaos proxies sit in-path.
#[derive(Clone, Debug)]
pub struct NetTuning {
    /// Blocking-collect deadline per peer halo.
    pub halo_deadline: Duration,
    pub poll: Duration,
    /// Put a [`ChaosProxy`] in front of every shard and route the fault
    /// plan's network faults through it.
    pub chaos: bool,
    /// How long a `netstall` holds a message — keep it beyond
    /// `halo_deadline` so stalled peers degrade instead of racing.
    pub stall_delay: Duration,
    pub seed: u64,
}

impl Default for NetTuning {
    fn default() -> Self {
        Self {
            halo_deadline: Duration::from_millis(1500),
            poll: Duration::from_millis(5),
            chaos: false,
            stall_delay: Duration::from_millis(2500),
            seed: 0xC_4A05,
        }
    }
}

/// The same phase-locked federation as [`LocalFederation`], but every
/// halo crosses a real loopback socket through [`NetBus`] — and, in
/// chaos mode, through an in-path [`ChaosProxy`] per shard. Collects are
/// *blocking* (pushes are asynchronous; the deadline is how network
/// faults turn into ladder rungs), which is the one protocol difference
/// from the file flavour; everything downstream of the transport is the
/// identical [`ShardWorker`] cycle code, so a clean socket run is
/// bit-identical to the file run and to single-process.
pub struct NetFederation<T: Real> {
    pub cfg: FederationConfig,
    pub net: NetTuning,
    pub workers: Vec<ShardWorker<T, NetBus>>,
    /// In-path proxies (chaos mode) — held for their lifetime.
    _proxies: Vec<ChaosProxy>,
}

impl<T: Real> NetFederation<T> {
    fn net_shard_config(cfg: &FederationConfig, net: &NetTuning, s: usize) -> ShardConfig {
        let mut sc = cfg.shard_config(s);
        sc.halo_deadline = net.halo_deadline;
        sc.poll = net.poll;
        sc
    }

    fn start_bus(cfg: &FederationConfig, net: &NetTuning, s: usize) -> Result<NetBus, String> {
        let mut bc = NetBusConfig::new(s, cfg.n_shards);
        bc.raw_registry = net.chaos;
        bc.seed ^= net.seed;
        NetBus::start(bc, cfg.dir.join("bus"))
    }

    /// Start every shard on its own socket bus (and, in chaos mode, its
    /// own in-path proxy).
    pub fn start(cfg: FederationConfig, net: NetTuning) -> Result<Self, String> {
        let proxies = if net.chaos {
            (0..cfg.n_shards)
                .map(|s| {
                    ChaosProxy::start(
                        s,
                        cfg.plan.clone(),
                        cfg.dir.join("bus"),
                        net.stall_delay,
                        net.seed ^ 0x9E37,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };
        let workers = (0..cfg.n_shards)
            .map(|s| {
                let bus = Self::start_bus(&cfg, &net, s)?;
                ShardWorker::start_or_resume_on(Self::net_shard_config(&cfg, &net, s), bus)
                    .map(|(w, _)| w)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            cfg,
            net,
            workers,
            _proxies: proxies,
        })
    }

    /// Run the full campaign. Same phase discipline as
    /// [`LocalFederation::run`], except collects block up to the halo
    /// deadline: a push crosses a socket, so "published" and "visible"
    /// are separated by real wire time (or by an injected fault).
    pub fn run(&mut self) -> Result<(), String> {
        for cycle in 0..bda_num::cast::u64_of(self.cfg.n_cycles) {
            for s in self
                .cfg
                .plan
                .shard_kills(bda_num::cast::index_of_u64(cycle))
            {
                self.respawn(s, cycle)?;
            }
            let mut pendings = Vec::with_capacity(self.workers.len());
            for w in &mut self.workers {
                pendings.push(w.run_cycle_publish(cycle)?);
            }
            for (w, p) in self.workers.iter_mut().zip(pendings) {
                w.run_cycle_collect(p, true);
            }
        }
        Ok(())
    }

    /// Virtual SIGKILL over sockets: the worker *and its bus* are
    /// dropped (listener closed, links cut — a real dead process), then
    /// a fresh bus starts under a bumped epoch and the worker resumes
    /// from its checkpoint. Replay collects pull missed halos from peer
    /// history via `REQ` — the file spool is not involved — and the
    /// replay republishes refill this shard's own history for peers'
    /// pulls. Anything still written by the old instance is fenced off
    /// by the epoch bump as a typed stale reject.
    pub fn respawn(&mut self, s: usize, cycle: u64) -> Result<(), String> {
        // Drop first: kill semantics, and it frees the registry slot.
        let _ = self.workers.remove(s);
        let bus = Self::start_bus(&self.cfg, &self.net, s)?;
        let (mut w, resumed) =
            ShardWorker::start_or_resume_on(Self::net_shard_config(&self.cfg, &self.net, s), bus)?;
        if !resumed && cycle > 0 {
            return Err(format!(
                "shard {s} killed at cycle {cycle} but no checkpoint found"
            ));
        }
        while w.next_cycle() < cycle {
            let c = w.next_cycle();
            let p = w.run_cycle_publish(c)?;
            w.run_cycle_collect(p, true);
        }
        self.workers.insert(s, w);
        Ok(())
    }

    /// Shard `s`'s outcome table.
    pub fn table(&self, s: usize) -> String {
        self.workers[s].table()
    }
}
