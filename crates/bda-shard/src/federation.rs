//! Deterministic in-process federation driver.
//!
//! [`LocalFederation`] runs every shard worker inside one process with a
//! strict phase discipline per cycle — kills/respawns, then every shard's
//! publish, then every shard's collect (single-poll, no timeouts) — so
//! federated campaigns are bit-reproducible and the shard-fault scenarios
//! (`shardkill`, `shardstall`, `halodrop`) land on exact expected outcome
//! tables. The multi-*process* flavour of the same protocol lives in
//! `examples/federation.rs` under the `bda_workflow::shard_supervisor`;
//! both drive the identical [`ShardWorker`] cycle code, which is what
//! makes the local mode a faithful model.
//!
//! A `shardkill:S@C` here is a *virtual SIGKILL*: worker `S` is dropped on
//! the floor at the start of cycle `C` (whatever in-memory state it had is
//! gone) and rebuilt from its own scoped checkpoint, replaying forward to
//! rejoin the federation in the same cycle — exactly the recovery path a
//! real killed process takes, minus the wall clock.

use crate::worker::{ShardConfig, ShardWorker};
use bda_core::osse::OsseConfig;
use bda_num::Real;
use bda_workflow::FaultPlan;
use std::path::PathBuf;

/// Federation-wide configuration, expanded per shard by
/// [`FederationConfig::shard_config`].
#[derive(Clone, Debug)]
pub struct FederationConfig {
    pub osse: OsseConfig,
    pub n_shards: usize,
    pub n_cycles: usize,
    pub spinup_seconds: f64,
    /// Root directory: the halo bus spools under `<dir>/bus`, and every
    /// shard checkpoints under the *shared* `<dir>/ckpt` (scoped filenames
    /// keep them apart — deliberately exercising the collision guard).
    pub dir: PathBuf,
    pub checkpoint_every: usize,
    pub plan: FaultPlan,
}

impl FederationConfig {
    pub fn new(
        osse: OsseConfig,
        n_shards: usize,
        n_cycles: usize,
        dir: impl Into<PathBuf>,
    ) -> Self {
        Self {
            osse,
            n_shards,
            n_cycles,
            spinup_seconds: 0.0,
            dir: dir.into(),
            checkpoint_every: 1,
            plan: FaultPlan::none(),
        }
    }

    /// The per-shard worker configuration for shard `s`.
    pub fn shard_config(&self, s: usize) -> ShardConfig {
        let mut cfg = ShardConfig::new(self.osse.clone(), self.n_shards, s, self.n_cycles);
        cfg.spinup_seconds = self.spinup_seconds;
        cfg.bus_dir = self.dir.join("bus");
        cfg.ckpt_dir = self.dir.join("ckpt");
        cfg.checkpoint_every = self.checkpoint_every;
        cfg.plan = self.plan.clone();
        cfg
    }
}

/// All shards in one process, phase-locked per cycle.
pub struct LocalFederation<T: Real> {
    pub cfg: FederationConfig,
    pub workers: Vec<ShardWorker<T>>,
}

impl<T: Real> LocalFederation<T> {
    /// Build and start (or resume) every shard worker.
    pub fn start(cfg: FederationConfig) -> Result<Self, String> {
        let workers = (0..cfg.n_shards)
            .map(|s| ShardWorker::start_or_resume(cfg.shard_config(s)).map(|(w, _)| w))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { cfg, workers })
    }

    /// Run the full campaign: every cycle applies scheduled virtual kills
    /// (drop + rebuild-from-checkpoint + replay), then all shards publish,
    /// then all shards collect. Single-poll collects — by the time any
    /// shard collects, every live shard has published, so the no-fault
    /// path is timeout-free and fully deterministic.
    pub fn run(&mut self) -> Result<(), String> {
        for cycle in 0..bda_num::cast::u64_of(self.cfg.n_cycles) {
            for s in self
                .cfg
                .plan
                .shard_kills(bda_num::cast::index_of_u64(cycle))
            {
                self.respawn(s, cycle)?;
            }
            let mut pendings = Vec::with_capacity(self.workers.len());
            for w in &mut self.workers {
                pendings.push(w.run_cycle_publish(cycle)?);
            }
            for (w, p) in self.workers.iter_mut().zip(pendings) {
                w.run_cycle_collect(p, false);
            }
        }
        Ok(())
    }

    /// Virtual SIGKILL of shard `s` at the start of `cycle`: the worker
    /// (and all its in-memory state) is discarded, a fresh one resumes
    /// from its own scoped checkpoint, and the missed cycles are replayed
    /// against the halos still spooled on the bus — republishes are
    /// idempotent and the peers' frames for those cycles are still there,
    /// so the replay reconverges bit-for-bit before `cycle` begins.
    fn respawn(&mut self, s: usize, cycle: u64) -> Result<(), String> {
        let (mut w, resumed) = ShardWorker::start_or_resume(self.cfg.shard_config(s))?;
        if !resumed && cycle > 0 {
            return Err(format!(
                "shard {s} killed at cycle {cycle} but no checkpoint found"
            ));
        }
        while w.next_cycle() < cycle {
            let c = w.next_cycle();
            let p = w.run_cycle_publish(c)?;
            w.run_cycle_collect(p, false);
        }
        self.workers[s] = w;
        Ok(())
    }

    /// Shard `s`'s outcome table.
    pub fn table(&self, s: usize) -> String {
        self.workers[s].table()
    }
}
