//! Domain decomposition for the shard federation.
//!
//! The LETKF analysis is independent per grid point (the whole reason the
//! paper could spread it over 11,580 nodes), so the federation splits the
//! domain into `S` x-strips via [`bda_grid::decomp::TileDecomp`] — the
//! same remainder-first cuts the in-process thread pool uses. Each shard
//! analyzes only its own strip and publishes it as a "halo" to every peer;
//! a shard's strip in the member-flat layout
//! `((v * nx + i) * ny + j) * nz + k` is per-variable contiguous, so
//! extraction and application are plain `copy_from_slice` runs.

use bda_grid::decomp::TileDecomp;
use bda_letkf::StateLayout;
use bda_num::Real;

/// The x-strip decomposition of the analysis domain across `n_shards`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub nvar: usize,
    regions: Vec<(usize, usize)>,
}

impl ShardLayout {
    /// Cut `layout`'s x axis into `n_shards` strips (remainder-first, the
    /// [`TileDecomp`] convention, so widths differ by at most one).
    pub fn new(layout: &StateLayout, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        assert!(
            n_shards <= layout.nx,
            "{n_shards} shards over {} columns",
            layout.nx
        );
        let decomp = TileDecomp::new(layout.nx, layout.ny, n_shards, 1);
        let regions = decomp.tiles().iter().map(|t| (t.i0, t.i1)).collect();
        Self {
            nx: layout.nx,
            ny: layout.ny,
            nz: layout.nz,
            nvar: layout.nvar,
            regions,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.regions.len()
    }

    /// The half-open x-range `[i0, i1)` owned by shard `s`.
    pub fn region(&self, s: usize) -> (usize, usize) {
        self.regions[s]
    }

    /// Total flat length of one member state.
    pub fn flat_len(&self) -> usize {
        self.nvar * self.nx * self.ny * self.nz
    }

    /// Flat length of shard `s`'s strip (per member).
    pub fn strip_len(&self, s: usize) -> usize {
        let (i0, i1) = self.region(s);
        self.nvar * (i1 - i0) * self.ny * self.nz
    }

    /// Per-variable contiguous runs `[a, b)` of shard `s`'s strip within a
    /// full member flat.
    fn runs(&self, s: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (i0, i1) = self.region(s);
        let plane = self.ny * self.nz;
        (0..self.nvar).map(move |v| ((v * self.nx + i0) * plane, (v * self.nx + i1) * plane))
    }

    /// Copy shard `s`'s strip out of a full member flat.
    pub fn extract_region<T: Real>(&self, flat: &[T], s: usize) -> Vec<T> {
        assert_eq!(flat.len(), self.flat_len(), "flat length mismatch");
        let mut strip = Vec::with_capacity(self.strip_len(s));
        for (a, b) in self.runs(s) {
            strip.extend_from_slice(&flat[a..b]);
        }
        strip
    }

    /// Overwrite shard `s`'s strip inside a full member flat — the inverse
    /// of [`ShardLayout::extract_region`].
    pub fn apply_region<T: Real>(&self, flat: &mut [T], s: usize, strip: &[T]) {
        assert_eq!(flat.len(), self.flat_len(), "flat length mismatch");
        assert_eq!(strip.len(), self.strip_len(s), "strip length mismatch");
        let mut off = 0;
        for (a, b) in self.runs(s) {
            flat[a..b].copy_from_slice(&strip[off..off + (b - a)]);
            off += b - a;
        }
    }

    /// The bottom rung short of forecast-only: shard `s` is dead and no
    /// halo for its strip exists at all, so a surviving peer widens its
    /// boundary assumption into the orphaned strip — every orphaned column
    /// is filled from the nearest column outside the strip, the
    /// clamp-extension boundary condition of [`bda_grid::halo`]'s
    /// [`HaloPolicy::Clamp`](bda_grid::halo::HaloPolicy) applied at shard
    /// granularity. Columns left of the strip midpoint clamp to the left
    /// neighbour, the rest to the right (whichever exists).
    pub fn widen_into_region<T: Real>(&self, flat: &mut [T], s: usize) {
        let (i0, i1) = self.region(s);
        let left = i0.checked_sub(1);
        let right = if i1 < self.nx { Some(i1) } else { None };
        let plane = self.ny * self.nz;
        let mid = i0 + (i1 - i0).div_ceil(2);
        for v in 0..self.nvar {
            let base = v * self.nx;
            for i in i0..i1 {
                let src = match (left, right) {
                    (Some(l), Some(r)) => {
                        if i < mid {
                            l
                        } else {
                            r
                        }
                    }
                    (Some(l), None) => l,
                    (None, Some(r)) => r,
                    // A single-shard layout has no peers to widen for.
                    (None, None) => continue,
                };
                let (dst_a, src_a) = ((base + i) * plane, (base + src) * plane);
                // Split-borrow via ptr-free copy_within on the var slab.
                let slab = &mut flat[base * plane..(base + self.nx) * plane];
                let (d, s2) = (dst_a - base * plane, src_a - base * plane);
                slab.copy_within(s2..s2 + plane, d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(nx: usize) -> StateLayout {
        StateLayout {
            nx,
            ny: 3,
            nz: 2,
            nvar: 2,
            dx: 500.0,
            z_center: vec![250.0, 750.0],
        }
    }

    #[test]
    fn regions_tile_the_x_axis_remainder_first() {
        let sl = ShardLayout::new(&layout(10), 3);
        assert_eq!(sl.region(0), (0, 4));
        assert_eq!(sl.region(1), (4, 7));
        assert_eq!(sl.region(2), (7, 10));
        assert_eq!(
            (0..3).map(|s| sl.strip_len(s)).sum::<usize>(),
            sl.flat_len()
        );
    }

    #[test]
    fn extract_apply_round_trips_and_tiles_exactly() {
        let sl = ShardLayout::new(&layout(7), 2);
        let flat: Vec<f64> = (0..sl.flat_len()).map(|i| i as f64).collect();
        let mut rebuilt = vec![0.0f64; sl.flat_len()];
        for s in 0..2 {
            let strip = sl.extract_region(&flat, s);
            assert_eq!(strip.len(), sl.strip_len(s));
            sl.apply_region(&mut rebuilt, s, &strip);
        }
        assert_eq!(rebuilt, flat);
    }

    #[test]
    fn widen_clamps_orphaned_columns_to_nearest_neighbour() {
        let sl = ShardLayout::new(&layout(6), 3); // strips of 2 columns
        let plane = sl.ny * sl.nz;
        // Column i carries the constant value i in every var.
        let mut flat = vec![0.0f64; sl.flat_len()];
        for v in 0..sl.nvar {
            for i in 0..sl.nx {
                let a = (v * sl.nx + i) * plane;
                flat[a..a + plane].iter_mut().for_each(|x| *x = i as f64);
            }
        }
        // Middle shard (columns 2,3) dies: 2 clamps left (column 1),
        // 3 clamps right (column 4).
        sl.widen_into_region(&mut flat, 1);
        for v in 0..sl.nvar {
            let col = |i: usize| flat[(v * sl.nx + i) * plane];
            assert_eq!(col(2), 1.0);
            assert_eq!(col(3), 4.0);
            assert_eq!(col(1), 1.0);
            assert_eq!(col(4), 4.0);
        }
        // Edge shard 0 dies: both its columns clamp right.
        sl.widen_into_region(&mut flat, 0);
        for v in 0..sl.nvar {
            let col = |i: usize| flat[(v * sl.nx + i) * plane];
            assert_eq!(col(0), 1.0);
            assert_eq!(col(1), 1.0);
        }
    }
}
