//! The checked sync facade for the epoch-fence protocol: the **only**
//! place [`crate::fence`] touches synchronization primitives.
//!
//! `bda-check`'s `pool_facade` rule denies `std::sync` / `parking_lot` /
//! `loom::sync` tokens inside `fence.rs`, so every atomic and lock the
//! fence state machine performs is guaranteed to route through here — and
//! therefore to run, unmodified, under the loom model checker when the
//! `loom-model` feature swaps the backing implementation. The protocol
//! code in [`crate::fence`] is byte-for-byte identical in both builds;
//! only these re-exports change. (This is the same discipline
//! `vendor/rayon` uses for its work-stealing protocol.)
//!
//! The production arm hands out `parking_lot::Mutex` — infallible `lock()`,
//! no poisoning — so the loom arm wraps `loom::sync::Mutex` to the same
//! shape: a poisoned model lock just yields the inner guard (the model's
//! assertions, not poison propagation, are what detect broken schedules).

#[cfg(not(feature = "loom-model"))]
mod imp {
    pub use parking_lot::Mutex;
    pub use std::sync::atomic::{AtomicU64, Ordering};
}

#[cfg(feature = "loom-model")]
mod imp {
    pub use loom::sync::atomic::{AtomicU64, Ordering};

    /// `parking_lot::Mutex`-shaped adapter over the loom mutex.
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Self(loom::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> loom::sync::MutexGuard<'_, T> {
            self.0
                .lock()
                .unwrap_or_else(loom::sync::PoisonError::into_inner)
        }
    }
}

pub use imp::*;
