//! The socket stream framing under the halo transport (`BDAN`).
//!
//! [`msg`](crate::msg) defines what one halo *frame* looks like; this
//! module defines how frames survive a byte *stream* that an adversarial
//! network (or the chaos proxy) can cut, delay, truncate and scribble on.
//! Every message on a netbus connection is
//!
//! ```text
//! magic "BDAN" (4) | body length u32 | sealed body
//! body = kind u8 | sender u32 | epoch u64 | payload… | FNV-1a trailer u64
//! ```
//!
//! sealed with the same [`bda_io::frame`] trailer convention as every
//! other codec in the system. Kinds: `HELLO` (handshake, carries the
//! sender's fenced epoch), `HALO` (payload = one sealed `BDAH` halo frame,
//! prefixed by its cycle so in-path tooling can route without decoding
//! members), `REQ` (pull request for a peer's published halo — the replay
//! path after a respawn or a healed partition), `HEARTBEAT` (liveness +
//! current cycle).
//!
//! [`NetFrameReader`] is the incremental parser: bytes in, typed
//! [`WireEvent`]s out. Its one hard invariant is *resynchronization* — any
//! amount of garbage between messages is skipped to the next occurrence
//! of the magic and reported as a typed event, a sealed body whose
//! checksum fails costs exactly the four magic bytes before rescanning
//! (so a message hiding inside a damaged window is still found), and
//! nothing ever panics. The proptests in `tests/proptests.rs` pin this
//! down with arbitrary garbage splices.

use bda_num::cast;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Stream-level magic. Distinct from the halo-frame magic (`BDAH`): the
/// stream carries halo frames *inside* `HALO` messages.
pub const NET_MAGIC: &[u8; 4] = b"BDAN";

/// magic + body-length prefix.
pub const NET_HEADER_BYTES: usize = 4 + 4;

/// Upper bound on one message body; anything larger is a damaged length
/// field, not a real message (the largest real payload is one halo strip
/// set, far below this).
pub const MAX_BODY_BYTES: usize = 1 << 26;

const KIND_HELLO: u8 = 0;
const KIND_HALO: u8 = 1;
const KIND_REQ: u8 = 2;
const KIND_HEARTBEAT: u8 = 3;

/// One parsed transport message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetMsg {
    /// Connection handshake: who is writing, and from which fenced epoch.
    Hello { sender: usize, epoch: u64 },
    /// One sealed `BDAH` halo frame. `cycle` duplicates the frame's cycle
    /// so the receiver can slot it (and the chaos proxy can route it)
    /// without decoding members; [`crate::worker`] re-validates the inner
    /// values on acceptance, so a tampered wrapper is caught there.
    Halo {
        sender: usize,
        epoch: u64,
        cycle: u64,
        frame: Bytes,
    },
    /// Pull request: "send me your halo for `cycle`" — the replay path
    /// for respawned shards and healed partitions.
    Req {
        sender: usize,
        epoch: u64,
        cycle: u64,
    },
    /// Liveness beacon carrying the sender's current cycle.
    Heartbeat {
        sender: usize,
        epoch: u64,
        cycle: u64,
    },
}

impl NetMsg {
    pub fn sender(&self) -> usize {
        match self {
            NetMsg::Hello { sender, .. }
            | NetMsg::Halo { sender, .. }
            | NetMsg::Req { sender, .. }
            | NetMsg::Heartbeat { sender, .. } => *sender,
        }
    }

    pub fn epoch(&self) -> u64 {
        match self {
            NetMsg::Hello { epoch, .. }
            | NetMsg::Halo { epoch, .. }
            | NetMsg::Req { epoch, .. }
            | NetMsg::Heartbeat { epoch, .. } => *epoch,
        }
    }

    /// The cycle this message is about, when it has one (`Hello` doesn't).
    pub fn cycle(&self) -> Option<u64> {
        match self {
            NetMsg::Hello { .. } => None,
            NetMsg::Halo { cycle, .. }
            | NetMsg::Req { cycle, .. }
            | NetMsg::Heartbeat { cycle, .. } => Some(*cycle),
        }
    }
}

/// Encode one message: magic | length | sealed body.
pub fn encode_msg(msg: &NetMsg) -> Bytes {
    let (kind, sender, epoch) = match msg {
        NetMsg::Hello { sender, epoch } => (KIND_HELLO, *sender, *epoch),
        NetMsg::Halo { sender, epoch, .. } => (KIND_HALO, *sender, *epoch),
        NetMsg::Req { sender, epoch, .. } => (KIND_REQ, *sender, *epoch),
        NetMsg::Heartbeat { sender, epoch, .. } => (KIND_HEARTBEAT, *sender, *epoch),
    };
    let mut body = BytesMut::with_capacity(1 + 4 + 8 + 16);
    body.put_u8(kind);
    body.put_u32(cast::u32_of_index(sender));
    body.put_u64(epoch);
    match msg {
        NetMsg::Hello { .. } => {}
        NetMsg::Halo { cycle, frame, .. } => {
            body.put_u64(*cycle);
            body.put_slice(frame);
        }
        NetMsg::Req { cycle, .. } | NetMsg::Heartbeat { cycle, .. } => {
            body.put_u64(*cycle);
        }
    }
    let sealed = bda_io::frame::seal(body);
    let mut out = BytesMut::with_capacity(NET_HEADER_BYTES + sealed.len());
    out.put_slice(NET_MAGIC);
    out.put_u32(cast::u32_of_index(sealed.len()));
    out.put_slice(&sealed);
    out.freeze()
}

/// What the incremental reader hands back per step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireEvent {
    /// A checksum-verified message, plus its exact encoded bytes so an
    /// in-path forwarder can pass it through without re-encoding.
    Msg { msg: NetMsg, raw: Bytes },
    /// Bytes between messages that were not a message: skipped to the
    /// next magic. The count is the typed record of the damage.
    Garbage { skipped: usize },
    /// A magic-led window whose seal or body failed to verify: the magic
    /// was dropped and scanning resumed just past it.
    Corrupt,
}

/// Incremental stream parser with magic-scan resynchronization.
#[derive(Debug, Default)]
pub struct NetFrameReader {
    buf: Vec<u8>,
    /// No more bytes will arrive (peer EOF): pending over-long windows
    /// are drained as garbage instead of waited on.
    eof: bool,
}

impl NetFrameReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Declare end-of-stream: whatever cannot complete a message anymore
    /// is surfaced as garbage by subsequent [`next_event`](Self::next_event)
    /// calls.
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Buffered bytes not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next event out of the buffer, or `None` when more bytes
    /// are needed (or the stream is fully drained after [`finish`](Self::finish)).
    pub fn next_event(&mut self) -> Option<WireEvent> {
        // Scan to the next magic; everything before it is garbage.
        match find_magic(&self.buf) {
            Some(0) => {}
            Some(at) => {
                self.buf.drain(..at);
                return Some(WireEvent::Garbage { skipped: at });
            }
            None => {
                // Keep a potential magic prefix at the tail; drop the
                // rest. At EOF even the prefix can never complete.
                let keep = if self.eof { 0 } else { tail_keep(&self.buf) };
                let drop = self.buf.len() - keep;
                if drop > 0 {
                    self.buf.drain(..drop);
                    return Some(WireEvent::Garbage { skipped: drop });
                }
                return None;
            }
        }
        if self.buf.len() < NET_HEADER_BYTES {
            if self.eof && !self.buf.is_empty() {
                let skipped = self.buf.len();
                self.buf.clear();
                return Some(WireEvent::Garbage { skipped });
            }
            return None;
        }
        let len = cast::index_of_u32(u32::from_be_bytes([
            self.buf[4],
            self.buf[5],
            self.buf[6],
            self.buf[7],
        ]));
        if len > MAX_BODY_BYTES {
            // A length this large is a damaged header, not a message:
            // drop the magic and rescan inside the window.
            self.buf.drain(..4);
            return Some(WireEvent::Corrupt);
        }
        if self.buf.len() < NET_HEADER_BYTES + len {
            if self.eof {
                // The window can never complete; skip the magic and
                // keep looking for messages inside it.
                self.buf.drain(..4);
                return Some(WireEvent::Corrupt);
            }
            return None;
        }
        let window = &self.buf[..NET_HEADER_BYTES + len];
        match decode_body(&window[NET_HEADER_BYTES..]) {
            Some(msg) => {
                let raw = Bytes::copy_from_slice(window);
                self.buf.drain(..NET_HEADER_BYTES + len);
                Some(WireEvent::Msg { msg, raw })
            }
            None => {
                // Damaged seal or malformed body: give up only the
                // magic so a real message inside the window is still
                // reachable by the rescan.
                self.buf.drain(..4);
                Some(WireEvent::Corrupt)
            }
        }
    }

    /// Drain every remaining event (used at EOF).
    pub fn drain(&mut self) -> Vec<WireEvent> {
        let mut out = Vec::new();
        while let Some(e) = self.next_event() {
            out.push(e);
        }
        out
    }
}

/// Position of the first `BDAN` magic in `buf`.
fn find_magic(buf: &[u8]) -> Option<usize> {
    buf.windows(NET_MAGIC.len())
        .position(|w| w == NET_MAGIC.as_slice())
}

/// How many tail bytes could still be the start of a magic.
fn tail_keep(buf: &[u8]) -> usize {
    let max = (NET_MAGIC.len() - 1).min(buf.len());
    (1..=max)
        .rev()
        .find(|&k| NET_MAGIC.starts_with(&buf[buf.len() - k..]))
        .unwrap_or(0)
}

/// Verify the seal and decode one message body. `None` on any damage —
/// the caller types it as [`WireEvent::Corrupt`].
fn decode_body(sealed: &[u8]) -> Option<NetMsg> {
    let mut body = bda_io::frame::open(sealed).ok()?;
    if body.remaining() < 1 + 4 + 8 {
        return None;
    }
    let kind = body.get_u8();
    let sender = cast::index_of_u32(body.get_u32());
    let epoch = body.get_u64();
    match kind {
        KIND_HELLO => body.is_empty().then_some(NetMsg::Hello { sender, epoch }),
        KIND_HALO => {
            if body.remaining() < 8 {
                return None;
            }
            let cycle = body.get_u64();
            Some(NetMsg::Halo {
                sender,
                epoch,
                cycle,
                frame: Bytes::copy_from_slice(body),
            })
        }
        KIND_REQ | KIND_HEARTBEAT => {
            if body.remaining() != 8 {
                return None;
            }
            let cycle = body.get_u64();
            Some(if kind == KIND_REQ {
                NetMsg::Req {
                    sender,
                    epoch,
                    cycle,
                }
            } else {
                NetMsg::Heartbeat {
                    sender,
                    epoch,
                    cycle,
                }
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halo_msg() -> NetMsg {
        NetMsg::Halo {
            sender: 2,
            epoch: 7,
            cycle: 42,
            frame: Bytes::from_static(b"sealed-bdah-bytes"),
        }
    }

    fn events_of(bytes: &[u8]) -> Vec<WireEvent> {
        let mut r = NetFrameReader::new();
        r.push(bytes);
        r.finish();
        r.drain()
    }

    #[test]
    fn every_kind_round_trips() {
        for msg in [
            NetMsg::Hello {
                sender: 0,
                epoch: 1,
            },
            halo_msg(),
            NetMsg::Req {
                sender: 1,
                epoch: 3,
                cycle: 9,
            },
            NetMsg::Heartbeat {
                sender: 3,
                epoch: 1,
                cycle: 5,
            },
        ] {
            let raw = encode_msg(&msg);
            let got = events_of(&raw);
            assert_eq!(
                got,
                vec![WireEvent::Msg {
                    msg: msg.clone(),
                    raw: raw.clone()
                }],
                "{msg:?}"
            );
        }
    }

    #[test]
    fn split_delivery_reassembles() {
        let raw = encode_msg(&halo_msg());
        let mut r = NetFrameReader::new();
        for chunk in raw.chunks(3) {
            r.push(chunk);
        }
        match r.next_event() {
            Some(WireEvent::Msg { msg, .. }) => assert_eq!(msg, halo_msg()),
            other => panic!("expected message, got {other:?}"),
        }
        assert_eq!(r.next_event(), None);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn garbage_between_messages_is_skipped_and_typed() {
        let raw = encode_msg(&halo_msg());
        let mut stream = Vec::new();
        stream.extend_from_slice(b"noise before");
        stream.extend_from_slice(&raw);
        stream.extend_from_slice(&[0xFF; 7]);
        stream.extend_from_slice(&raw);
        let events = events_of(&stream);
        let msgs = events
            .iter()
            .filter(|e| matches!(e, WireEvent::Msg { .. }))
            .count();
        let skipped: usize = events
            .iter()
            .map(|e| match e {
                WireEvent::Garbage { skipped } => *skipped,
                _ => 0,
            })
            .sum();
        assert_eq!(msgs, 2, "{events:?}");
        assert_eq!(skipped, 12 + 7);
    }

    #[test]
    fn corrupted_body_costs_the_magic_then_resyncs() {
        let mut bad = encode_msg(&halo_msg()).to_vec();
        let n = bad.len();
        bad[n - 2] ^= 0x5A; // break the seal
        let good = encode_msg(&NetMsg::Hello {
            sender: 1,
            epoch: 2,
        });
        let mut stream = bad;
        stream.extend_from_slice(&good);
        let events = events_of(&stream);
        assert!(
            events.contains(&WireEvent::Corrupt),
            "damage must be typed: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                WireEvent::Msg {
                    msg: NetMsg::Hello {
                        sender: 1,
                        epoch: 2
                    },
                    ..
                }
            )),
            "reader must resync onto the good message: {events:?}"
        );
    }

    #[test]
    fn oversized_length_is_typed_not_allocated() {
        let mut stream = Vec::new();
        stream.extend_from_slice(NET_MAGIC);
        stream.extend_from_slice(&u32::MAX.to_be_bytes());
        let good = encode_msg(&NetMsg::Hello {
            sender: 0,
            epoch: 1,
        });
        stream.extend_from_slice(&good);
        let events = events_of(&stream);
        assert_eq!(events.first(), Some(&WireEvent::Corrupt));
        assert!(events.iter().any(|e| matches!(e, WireEvent::Msg { .. })));
    }

    #[test]
    fn truncated_tail_is_garbage_at_eof() {
        let raw = encode_msg(&halo_msg());
        let mut r = NetFrameReader::new();
        r.push(&raw[..raw.len() - 5]);
        assert_eq!(r.next_event(), None, "without EOF the window may fill");
        r.finish();
        let events = r.drain();
        assert!(!events.iter().any(|e| matches!(e, WireEvent::Msg { .. })));
        assert!(!events.is_empty());
    }

    #[test]
    fn magic_prefix_at_tail_is_retained_until_eof() {
        let mut r = NetFrameReader::new();
        r.push(b"junkBD");
        assert_eq!(r.next_event(), Some(WireEvent::Garbage { skipped: 4 }));
        assert_eq!(r.next_event(), None);
        assert_eq!(r.pending(), 2, "possible magic prefix kept");
        r.push(b"AN");
        r.push(
            &encode_msg(&NetMsg::Hello {
                sender: 5,
                epoch: 9,
            })[NET_MAGIC.len()..],
        );
        match r.next_event() {
            Some(WireEvent::Msg {
                msg:
                    NetMsg::Hello {
                        sender: 5,
                        epoch: 9,
                    },
                ..
            }) => {}
            other => panic!("split magic must reassemble, got {other:?}"),
        }
    }
}
