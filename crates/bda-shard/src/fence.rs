//! The epoch-fence state machine of the halo transport, extracted from the
//! socket plumbing so the loom model checker can execute the exact
//! production admission logic (see `crates/bda-check/tests/loom_netbus.rs`).
//!
//! A shard that respawns bumps its durable epoch; everything its previous
//! incarnation still has in flight — half-written frames in a socket
//! buffer, `REQ` replies from a zombie process, pre-respawn inbox slots —
//! must never be *applied* once any message of the new epoch has been
//! seen. Three cooperating defenses guarantee that, and each is a method
//! here:
//!
//! 1. **CAS-max fence** ([`FenceTable::observe`]): every fence-valid
//!    message ratchets the per-sender fence to its epoch; anything below
//!    the fence is rejected on arrival.
//! 2. **Newer-epoch-wins slots** ([`FenceTable::admit`]): a slot is only
//!    overwritten by an equal-or-newer epoch, so a zombie frame that
//!    slipped past the fence check (raced the ratchet) cannot clobber a
//!    new-epoch frame that landed first.
//! 3. **Retro-fencing** ([`FenceTable::fetch`]): reads re-check the slot
//!    epoch against the *current* fence, so a pre-respawn slot that was
//!    admitted before the new epoch announced itself is rejected at
//!    consumption — the reader sees a typed stale verdict, never zombie
//!    payload.
//!
//! All synchronization goes through [`crate::facade`] (enforced by
//! `bda-check`'s `pool_facade` rule), which is what makes the loom suite's
//! exhaustive 2-thread exploration a proof about this code rather than
//! about a model of it. Slots live in a `BTreeMap`, so any future
//! iteration (draining, debugging, digests) is deterministically ordered —
//! the `unordered_iter` hazard is ruled out by construction.

use crate::facade::{AtomicU64, Mutex, Ordering};
use std::collections::BTreeMap;

/// Verdict of presenting a message's epoch to the fence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Epoch at or above the fence: the fence ratcheted up to it.
    Accepted,
    /// Epoch below the fence: a zombie (pre-respawn) writer. Dropped.
    Stale { got: u64, fenced: u64 },
}

/// Outcome of reading a `(cycle, sender)` slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotGet<P> {
    /// A fence-valid payload.
    Ready { epoch: u64, payload: P },
    /// The slot holds a pre-respawn epoch: retro-fenced, payload withheld.
    Fenced { got: u64, fenced: u64 },
    /// Nothing stored for this (cycle, sender).
    Missing,
}

struct Slot<P> {
    epoch: u64,
    payload: P,
}

/// Per-sender epoch fences plus the fenced `(cycle, sender)` slot store.
pub struct FenceTable<P> {
    /// Highest epoch seen from each sender (the ratchet).
    fenced: Vec<AtomicU64>,
    /// `(cycle, sender)` → newest-epoch payload. Ordered map: snapshots
    /// and sweeps iterate deterministically.
    slots: Mutex<BTreeMap<(u64, usize), Slot<P>>>,
}

impl<P: Clone> FenceTable<P> {
    pub fn new(n_senders: usize) -> Self {
        Self {
            fenced: (0..n_senders).map(|_| AtomicU64::new(0)).collect(),
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Current fence for `sender`.
    pub fn fence_of(&self, sender: usize) -> u64 {
        self.fenced[sender].load(Ordering::SeqCst)
    }

    /// Present a message's epoch to `sender`'s fence: reject below-fence
    /// epochs, ratchet the fence up to accepted ones. Lock-free CAS-max —
    /// concurrent observers of different epochs converge on the maximum.
    pub fn observe(&self, sender: usize, epoch: u64) -> Admit {
        let fence = &self.fenced[sender];
        let mut fenced = fence.load(Ordering::SeqCst);
        loop {
            if epoch < fenced {
                return Admit::Stale { got: epoch, fenced };
            }
            match fence.compare_exchange(fenced, epoch, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Admit::Accepted,
                Err(now) => fenced = now,
            }
        }
    }

    /// [`Self::observe`] the epoch, then store the payload under
    /// `(cycle, sender)` if it passed — with newer-epoch-wins overwrite
    /// semantics, so a raced zombie write can never replace a new-epoch
    /// frame that is already in the slot. Returns the observe verdict.
    pub fn admit(&self, sender: usize, cycle: u64, epoch: u64, payload: P) -> Admit {
        let verdict = self.observe(sender, epoch);
        if let Admit::Stale { .. } = verdict {
            return verdict;
        }
        let mut slots = self.slots.lock();
        match slots.get(&(cycle, sender)) {
            Some(existing) if existing.epoch > epoch => {}
            _ => {
                slots.insert((cycle, sender), Slot { epoch, payload });
            }
        }
        verdict
    }

    /// Read the `(cycle, sender)` slot, re-checking its epoch against the
    /// *current* fence (retro-fencing): a slot admitted before the sender's
    /// respawn announced itself is reported [`SlotGet::Fenced`], never
    /// returned as payload.
    pub fn fetch(&self, cycle: u64, sender: usize) -> SlotGet<P> {
        let slots = self.slots.lock();
        let Some(slot) = slots.get(&(cycle, sender)) else {
            return SlotGet::Missing;
        };
        let fenced = self.fenced[sender].load(Ordering::SeqCst);
        if slot.epoch < fenced {
            return SlotGet::Fenced {
                got: slot.epoch,
                fenced,
            };
        }
        SlotGet::Ready {
            epoch: slot.epoch,
            payload: slot.payload.clone(),
        }
    }

    /// Drop every slot whose cycle is below `cycle`, returning how many
    /// were removed. The transport calls this as it publishes new cycles so
    /// the slot store stays bounded by the collection window.
    pub fn prune_below(&self, cycle: u64) -> usize {
        let mut slots = self.slots.lock();
        let keep = slots.split_off(&(cycle, 0));
        let dropped = slots.len();
        *slots = keep;
        dropped
    }

    /// Sorted snapshot of the occupied `(cycle, sender)` keys and their
    /// epochs. Deterministic by construction (ordered map) — pinned by a
    /// regression test so debugging/digest paths can rely on the order.
    pub fn keys(&self) -> Vec<(u64, usize, u64)> {
        self.slots
            .lock()
            .iter()
            .map(|(&(cycle, sender), slot)| (cycle, sender, slot.epoch))
            .collect()
    }
}
