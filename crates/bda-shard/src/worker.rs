//! One federation shard: an OSSE replica that analyzes only its own
//! x-strip and assembles the rest of the domain from peer halos.
//!
//! ## Parity mechanics
//!
//! Every shard runs the *full* truth integration and ensemble forecast (a
//! clean cycle draws from no mutable RNG stream — the scan is seeded by
//! `cfg.seed` and the cycle time, and the respawn stream only advances
//! when members die, identically on every shard). Only the LETKF analysis
//! is region-restricted, and the per-gridpoint LETKF transform makes a
//! region-restricted analysis bit-identical at owned points. After halo
//! exchange each shard therefore holds the same assembled ensemble the
//! single-process cycle would have produced — bit-for-bit, which is what
//! `tests/shard_parity.rs` pins down.
//!
//! ## Cycle split
//!
//! [`ShardWorker::run_cycle_publish`] checkpoints (scoped, CRC-guarded, in
//! the [`bda_io::checkpoint`] format), runs [`Osse::cycle_begin`] on its
//! strip and publishes the analyzed strip;
//! [`ShardWorker::run_cycle_collect`] gathers peer strips, steps the
//! degradation ladder for anything missing, and finishes the cycle. The
//! ladder, in order:
//!
//! 1. fresh halo → applied (`completed`);
//! 2. halo missing / stalled / dropped / corrupt → previous-cycle halo
//!    reused, flagged (`halo-reuse`);
//! 3. no previous halo either (shard dead since the start) → the boundary
//!    assumption widens into the orphaned strip (`boundary-widened`);
//! 4. supervisor declares federation quorum lost → forecast-only cycles
//!    (`forecast-only`).

use crate::bus::{CollectStatus, HaloBus, HaloTransport};
use crate::layout::ShardLayout;
use crate::msg::{HaloFrame, HaloMsg};
use bda_core::osse::{CycleOutcome, Osse, OsseConfig, PendingCycle};
use bda_io::checkpoint::{latest_checkpoint_scoped, write_checkpoint_scoped, OutcomeRecord};
use bda_jitdt::{SeqClass, SeqTracker};
use bda_num::{cast, Real};
use bda_workflow::FaultPlan;
use std::path::PathBuf;
use std::time::Duration;

/// Everything a shard process needs to run its slice of the federation.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    pub osse: OsseConfig,
    pub n_shards: usize,
    pub shard: usize,
    pub n_cycles: usize,
    /// System spin-up before cycle 0 (fresh starts only — resumed shards
    /// restore a post-spin-up state from their checkpoint).
    pub spinup_seconds: f64,
    /// Shared halo spool directory.
    pub bus_dir: PathBuf,
    /// Checkpoint directory — deliberately shareable between shards: the
    /// scoped filename grammar keeps co-located shards from cross-resuming.
    pub ckpt_dir: PathBuf,
    /// Checkpoint at the start of every `checkpoint_every`-th cycle.
    pub checkpoint_every: usize,
    /// Shard-level fault schedule (`shardstall`/`halodrop` are modeled at
    /// the sender so both local and multi-process runs are deterministic).
    pub plan: FaultPlan,
    /// How long a blocking collect waits for a peer halo before stepping
    /// the ladder.
    pub halo_deadline: Duration,
    pub poll: Duration,
}

impl ShardConfig {
    pub fn new(osse: OsseConfig, n_shards: usize, shard: usize, n_cycles: usize) -> Self {
        Self {
            osse,
            n_shards,
            shard,
            n_cycles,
            spinup_seconds: 0.0,
            bus_dir: PathBuf::from("bus"),
            ckpt_dir: PathBuf::from("ckpt"),
            checkpoint_every: 1,
            plan: FaultPlan::none(),
            halo_deadline: Duration::from_secs(30),
            poll: Duration::from_millis(10),
        }
    }

    /// The checkpoint scope tag for `shard` (`s007`-style).
    pub fn scope_tag(shard: usize) -> String {
        format!("s{shard:03}")
    }
}

/// A cycle paused between publish and collect.
pub struct PendingPublish<T: Real> {
    cycle: u64,
    pending: PendingCycle,
    /// Full-domain analyzed flats: own strip analyzed, peer strips still
    /// prior until collect overwrites them.
    flats: Vec<Vec<T>>,
    forecast_only: bool,
}

impl<T: Real> PendingPublish<T> {
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// One shard of the federation, generic over its halo transport (file
/// spool by default, loopback sockets via
/// [`start_or_resume_on`](Self::start_or_resume_on)).
pub struct ShardWorker<T: Real, B: HaloTransport = HaloBus> {
    pub cfg: ShardConfig,
    pub osse: Osse<T>,
    slayout: ShardLayout,
    bus: B,
    scope: String,
    /// Per-peer halo sequencing discipline (replays and stragglers become
    /// typed drops, exactly like radar volumes on the ingest pipe).
    trackers: Vec<SeqTracker>,
    /// Last successfully applied strip per peer — ladder rung 2's fuel.
    prev_strips: Vec<Option<Vec<Vec<T>>>>,
    /// Durable per-cycle outcome log (checkpointed, so a resumed shard's
    /// table is seamless).
    pub records: Vec<OutcomeRecord>,
    /// Full outcomes of *this process* (diagnostics; not checkpointed).
    pub outcomes: Vec<CycleOutcome>,
    next_cycle: u64,
}

impl<T: Real> ShardWorker<T> {
    /// Build the worker on the default file-spool transport and either
    /// resume from the newest valid scoped checkpoint or start fresh.
    /// Returns `true` when a checkpoint was resumed.
    pub fn start_or_resume(cfg: ShardConfig) -> Result<(Self, bool), String> {
        let bus = HaloBus::new(&cfg.bus_dir).map_err(|e| format!("open bus: {e}"))?;
        Self::start_or_resume_on(cfg, bus)
    }
}

impl<T: Real, B: HaloTransport> ShardWorker<T, B> {
    /// Build the worker on an explicit transport (the socket federation
    /// path) and either resume from the newest valid scoped checkpoint or
    /// start fresh (spinning up the system). Returns `true` when a
    /// checkpoint was resumed.
    pub fn start_or_resume_on(cfg: ShardConfig, bus: B) -> Result<(Self, bool), String> {
        assert!(cfg.shard < cfg.n_shards, "shard index out of range");
        let mut osse = Osse::<T>::new(cfg.osse.clone());
        let slayout = ShardLayout::new(&osse.layout().clone(), cfg.n_shards);
        let scope = ShardConfig::scope_tag(cfg.shard);
        let found = latest_checkpoint_scoped::<T>(&cfg.ckpt_dir, Some(&scope))
            .map_err(|e| format!("scan checkpoints: {e}"))?;
        let (records, next_cycle, resumed) = match found {
            Some((_, snap)) => {
                osse.restore_state(&snap);
                (snap.outcomes.clone(), snap.next_cycle, true)
            }
            None => {
                if cfg.spinup_seconds > 0.0 {
                    osse.spinup_system(cfg.spinup_seconds);
                }
                (Vec::new(), 0, false)
            }
        };
        let n = cfg.n_shards;
        Ok((
            Self {
                cfg,
                osse,
                slayout,
                bus,
                scope,
                trackers: vec![SeqTracker::new(); n],
                prev_strips: vec![None; n],
                records,
                outcomes: Vec::new(),
                next_cycle,
            },
            resumed,
        ))
    }

    /// The next cycle this shard will run (resume point after a kill).
    pub fn next_cycle(&self) -> u64 {
        self.next_cycle
    }

    pub fn shard(&self) -> usize {
        self.cfg.shard
    }

    pub fn bus(&self) -> &B {
        &self.bus
    }

    pub fn layout(&self) -> &ShardLayout {
        &self.slayout
    }

    /// First half of cycle `cycle`: checkpoint (scoped), run the strip
    /// analysis, publish the halo (or the fault-scheduled marker).
    pub fn run_cycle_publish(&mut self, cycle: u64) -> Result<PendingPublish<T>, String> {
        let every = cast::u64_of(self.cfg.checkpoint_every.max(1));
        if cycle.is_multiple_of(every) {
            let mut snap = self.osse.snapshot_state();
            snap.next_cycle = cycle;
            snap.outcomes = self
                .records
                .iter()
                .filter(|o| o.cycle < cycle)
                .cloned()
                .collect();
            write_checkpoint_scoped(&self.cfg.ckpt_dir, Some(&self.scope), &snap)
                .map_err(|e| format!("checkpoint: {e}"))?;
        }

        let forecast_only = self
            .bus
            .forecast_only_from()
            .is_some_and(|from| cycle >= from);
        let (i0, i1) = self.slayout.region(self.cfg.shard);
        // Quorum lost: the whole federation degrades to forecast-only —
        // an empty analysis region skips every point while the forecast,
        // scan and health machinery keep cycling.
        let region = if forecast_only { (i0, i0) } else { (i0, i1) };
        let pending = self.osse.cycle_begin(Some(region));
        let flats = self.osse.analyzed_flats();

        let c = cast::index_of_u64(cycle);
        let shard = self.cfg.shard;
        let frame = if self.cfg.plan.shard_stalls(c).contains(&shard) {
            HaloFrame::Stall { shard, cycle }
        } else if self.cfg.plan.halo_drops(c).contains(&shard) {
            HaloFrame::Skip { shard, cycle }
        } else {
            HaloFrame::Strip(HaloMsg {
                shard,
                cycle,
                i0,
                i1,
                points_analyzed: pending.points_analyzed(),
                strips: flats
                    .iter()
                    .map(|f| self.slayout.extract_region(f, shard))
                    .collect(),
            })
        };
        self.bus.publish(&frame)?;
        Ok(PendingPublish {
            cycle,
            pending,
            flats,
            forecast_only,
        })
    }

    /// Validate and sequence-classify a collected strip; anything off
    /// steps the ladder instead of being applied.
    fn accept(&mut self, peer: usize, cycle: u64, m: HaloMsg<T>) -> Option<HaloMsg<T>> {
        if m.cycle != cycle || m.shard != peer {
            return None;
        }
        match self.trackers[peer].classify(m.cycle) {
            SeqClass::Fresh { .. } => {}
            // A replayed or stale halo is dropped like a replayed radar
            // volume: newest-wins, typed, never applied backwards.
            SeqClass::Duplicate { .. } | SeqClass::OutOfOrder { .. } => return None,
        }
        if (m.i0, m.i1) != self.slayout.region(peer) {
            return None;
        }
        let want = self.slayout.strip_len(peer);
        if m.strips.len() != self.osse.ensemble.size() || m.strips.iter().any(|s| s.len() != want) {
            return None;
        }
        Some(m)
    }

    /// Second half of cycle `cycle`: gather peer halos (blocking on the
    /// per-shard deadline when `wait`, single-poll otherwise), step the
    /// degradation ladder, assemble the full-domain analysis and finish
    /// the cycle. Returns the cycle's durable outcome record.
    pub fn run_cycle_collect(&mut self, p: PendingPublish<T>, wait: bool) -> OutcomeRecord {
        let PendingPublish {
            cycle,
            mut pending,
            mut flats,
            forecast_only,
        } = p;
        let mut reused: Vec<usize> = Vec::new();
        let mut widened: Vec<usize> = Vec::new();
        for peer in 0..self.cfg.n_shards {
            if peer == self.cfg.shard {
                continue;
            }
            let status = if wait {
                self.bus
                    .collect_blocking::<T>(cycle, peer, self.cfg.halo_deadline, self.cfg.poll)
            } else {
                self.bus.try_collect::<T>(cycle, peer)
            };
            let fresh = match status {
                CollectStatus::Ready(m) => self.accept(peer, cycle, m),
                CollectStatus::Skipped
                | CollectStatus::Stalled
                | CollectStatus::Missing { .. }
                | CollectStatus::Corrupt(_) => None,
            };
            match fresh {
                Some(m) => {
                    for (f, strip) in flats.iter_mut().zip(&m.strips) {
                        self.slayout.apply_region(f, peer, strip);
                    }
                    pending.note_exchanged_points(m.points_analyzed);
                    self.prev_strips[peer] = Some(m.strips);
                }
                None => {
                    if let Some(prev) = &self.prev_strips[peer] {
                        // Rung 2: previous-cycle halo, flagged. Stale data
                        // beats a hole in the domain for one cycle.
                        for (f, strip) in flats.iter_mut().zip(prev) {
                            self.slayout.apply_region(f, peer, strip);
                        }
                        reused.push(peer);
                    } else {
                        // Rung 3: nothing from this peer, ever — widen the
                        // boundary assumption into the orphaned strip.
                        for f in flats.iter_mut() {
                            self.slayout.widen_into_region(f, peer);
                        }
                        widened.push(peer);
                    }
                }
            }
        }
        self.osse.apply_analyzed_flats(&flats);
        let out = self.osse.cycle_finish(pending);
        let record = self.record_of(cycle, &out, forecast_only, &reused, &widened);
        let _ = self.bus.write_record(
            cycle,
            self.cfg.shard,
            &format!("{} {}", record.label, record.detail),
        );
        self.records.push(record.clone());
        self.outcomes.push(out);
        self.next_cycle = cycle + 1;
        record
    }

    /// Deterministic one-line cycle summary — same grammar as the
    /// single-process campaign log (`bda_core::resume`), so a no-fault
    /// federated table diffs byte-for-byte against the unsharded one, with
    /// the ladder rungs layered on top.
    fn record_of(
        &self,
        cycle: u64,
        out: &CycleOutcome,
        forecast_only: bool,
        reused: &[usize],
        widened: &[usize],
    ) -> OutcomeRecord {
        let label = if out.below_quorum {
            "below-quorum"
        } else if forecast_only || out.n_obs_used == 0 {
            "forecast-only"
        } else if !widened.is_empty() {
            "boundary-widened"
        } else if !reused.is_empty() {
            "halo-reuse"
        } else if out.ensemble_degraded() {
            "degraded"
        } else {
            "completed"
        };
        let mut detail = format!(
            "alive {}, obs {}/{}, {}, rmse {:.9e}->{:.9e}",
            out.n_alive,
            out.n_obs_used,
            out.n_obs_scanned,
            out.qc.summary(),
            out.prior_rmse_dbz,
            out.posterior_rmse_dbz
        );
        if !out.respawned.is_empty() {
            detail.push_str(&format!(", respawned {:?}", out.respawned));
        }
        for e in &out.member_errors {
            detail.push_str(&format!(", {e}"));
        }
        if !reused.is_empty() {
            detail.push_str(&format!(", reused halo of {reused:?}"));
        }
        if !widened.is_empty() {
            detail.push_str(&format!(", widened into {widened:?}"));
        }
        OutcomeRecord {
            cycle,
            label: label.into(),
            detail,
            retries: 0,
        }
    }

    /// Run one full cycle (publish + blocking collect).
    pub fn run_cycle(&mut self, cycle: u64) -> Result<OutcomeRecord, String> {
        let p = self.run_cycle_publish(cycle)?;
        Ok(self.run_cycle_collect(p, true))
    }

    /// Run from the resume point to the end of the campaign — the whole
    /// life of a worker process between SIGKILLs.
    pub fn run_to_completion(&mut self) -> Result<(), String> {
        while self.next_cycle < cast::u64_of(self.cfg.n_cycles) {
            self.run_cycle(self.next_cycle)?;
        }
        Ok(())
    }

    /// The campaign-log table (same layout as
    /// `bda_workflow::campaign::ResumableRun::table`).
    pub fn table(&self) -> String {
        outcome_table(&self.records)
    }
}

/// Format an outcome-record log the way the single-process campaign driver
/// does, so federation tables and campaign tables diff directly.
pub fn outcome_table(records: &[OutcomeRecord]) -> String {
    let mut out = String::from("cycle  outcome    retries  detail\n");
    for o in records {
        out.push_str(&format!(
            "{:5}  {:<9} {:7}  {}\n",
            o.cycle, o.label, o.retries, o.detail
        ));
    }
    let completed = records.iter().filter(|o| o.label == "completed").count();
    out.push_str(&format!(
        "{} cycles: {} completed, {} other\n",
        records.len(),
        completed,
        records.len() - completed,
    ));
    out
}
