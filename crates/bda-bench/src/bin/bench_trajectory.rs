//! Collect every `BENCH_*.json` into one markdown perf-trajectory report.
//!
//! Each PR's bench harness leaves a numbered `BENCH_<n>.json` at the repo
//! root; together they form the perf trajectory of the project. This tool:
//!
//! 1. validates every BENCH file against the shared shape check in
//!    `bda_bench::json` (CI fails on any malformed file), then
//! 2. renders one markdown table per bench kind — rows are metrics,
//!    columns are BENCH files in trajectory order, and the newest column
//!    is bold so a reviewer's eye lands on the current numbers.
//!
//! Usage: `bench_trajectory [--root DIR] [--out PATH]`
//! (defaults: repo root, `<root>/trajectory.md`).

use bda_bench::json::{self, Value};
use std::collections::BTreeMap;

struct BenchFile {
    /// File stem, e.g. `BENCH_9` (column header).
    stem: String,
    /// Trajectory order: first integer in the file name.
    index: u64,
    kind: String,
    metrics: BTreeMap<String, f64>,
}

fn trajectory_index(stem: &str) -> u64 {
    let digits: String = stem
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or(0)
}

fn format_value(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Flag-parse failure: print and exit 2 (distinct from a validation failure's 1).
fn usage(msg: &str) -> ! {
    eprintln!("bench_trajectory: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = args
                    .next()
                    .unwrap_or_else(|| usage("--root takes a directory"))
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage("--out takes a path"))),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let out_path = out_path.unwrap_or_else(|| format!("{root}/trajectory.md"));

    let mut files: Vec<BenchFile> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("bench_trajectory: cannot read {root}: {e}"))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    entries.sort();

    for path in &entries {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("BENCH_?")
            .to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                errors.push(format!("{stem}: read error: {e}"));
                continue;
            }
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                errors.push(format!("{stem}: parse error: {e}"));
                continue;
            }
        };
        if let Err(e) = json::validate_bench(&doc) {
            errors.push(format!("{stem}: shape error: {e}"));
            continue;
        }
        files.push(BenchFile {
            index: trajectory_index(&stem),
            kind: doc
                .get("bench")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            metrics: json::flatten_metrics(&doc),
            stem,
        });
    }

    if !errors.is_empty() {
        for e in &errors {
            eprintln!("bench_trajectory: INVALID — {e}");
        }
        std::process::exit(1);
    }
    if files.is_empty() {
        eprintln!("bench_trajectory: no BENCH_*.json files under {root}");
        std::process::exit(1);
    }
    files.sort_by(|a, b| a.index.cmp(&b.index).then_with(|| a.stem.cmp(&b.stem)));

    // Group by bench kind, preserving trajectory order within each group.
    let mut kinds: Vec<String> = Vec::new();
    for f in &files {
        if !kinds.contains(&f.kind) {
            kinds.push(f.kind.clone());
        }
    }

    let mut md = String::from("# Perf trajectory\n\nOne table per bench kind; columns are `BENCH_*.json` files in\ntrajectory order, the newest in **bold**. Regenerate with\n`cargo run -p bda-bench --bin bench_trajectory`.\n");
    for kind in &kinds {
        let group: Vec<&BenchFile> = files.iter().filter(|f| &f.kind == kind).collect();
        let newest = group.iter().map(|f| f.index).max().unwrap_or(0);
        let mut metric_names: Vec<&String> = Vec::new();
        for f in &group {
            for name in f.metrics.keys() {
                if !metric_names.contains(&name) {
                    metric_names.push(name);
                }
            }
        }
        md.push_str(&format!("\n## {kind}\n\n"));
        md.push_str("| metric |");
        for f in &group {
            if f.index == newest {
                md.push_str(&format!(" **{}** |", f.stem));
            } else {
                md.push_str(&format!(" {} |", f.stem));
            }
        }
        md.push_str("\n|---|");
        for _ in &group {
            md.push_str("---|");
        }
        md.push('\n');
        for name in metric_names {
            md.push_str(&format!("| `{name}` |"));
            for f in &group {
                match f.metrics.get(name) {
                    Some(&x) if f.index == newest => {
                        md.push_str(&format!(" **{}** |", format_value(x)))
                    }
                    Some(&x) => md.push_str(&format!(" {} |", format_value(x))),
                    None => md.push_str(" — |"),
                }
            }
            md.push('\n');
        }
    }

    std::fs::write(&out_path, &md)
        .unwrap_or_else(|e| panic!("bench_trajectory: cannot write {out_path}: {e}"));
    eprintln!(
        "bench_trajectory: validated {} file(s), wrote {out_path}",
        files.len()
    );
}
