//! CI perf gate: fail the build when a freshly measured BENCH file
//! regresses against the committed baseline.
//!
//! Compares two BENCH JSON documents of the same bench kind:
//!
//! * `cycle_scaling` — gates the single-thread `mean_cycle_s` and every
//!   per-kernel `mean_s_per_cycle` bucket;
//! * `kernels` — gates every row's `mean_us` by name.
//!
//! The tolerance is `--max-regression` percent (default 10) when the two
//! files were measured on hosts with the same core count. When the core
//! counts differ (e.g. a 1-core dev container vs CI's 4-vCPU runner),
//! absolute timings are not comparable: the gate widens to
//! `--cross-host-grace` (a multiplicative factor, default 3.0) and says so
//! loudly — it then only catches catastrophic regressions, and the
//! committed baseline should be refreshed from a same-shape runner.
//!
//! `--require-speedup X --at-threads N` additionally requires the fresh
//! `cycle_scaling` sweep to reach `X`x speedup at `N` threads; skipped
//! (with a notice) when the fresh host has fewer than `N` cores, because a
//! narrow host cannot measure scaling at all.
//!
//! Exit status: 0 = pass, 1 = regression or malformed input.

use bda_bench::json::{self, Value};

struct Args {
    baseline: String,
    fresh: String,
    max_regression_pct: f64,
    cross_host_grace: f64,
    require_speedup: Option<f64>,
    at_threads: usize,
}

/// Flag-parse failure: print and exit 2 (distinct from a perf failure's 1).
fn usage(msg: &str) -> ! {
    eprintln!("perf_gate: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        baseline: String::new(),
        fresh: String::new(),
        max_regression_pct: 10.0,
        cross_host_grace: 3.0,
        require_speedup: None,
        at_threads: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{what} takes a value")))
        };
        match a.as_str() {
            "--baseline" => out.baseline = take("--baseline"),
            "--fresh" => out.fresh = take("--fresh"),
            "--max-regression" => {
                out.max_regression_pct = take("--max-regression")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-regression takes a percentage"))
            }
            "--cross-host-grace" => {
                out.cross_host_grace = take("--cross-host-grace")
                    .parse()
                    .unwrap_or_else(|_| usage("--cross-host-grace takes a factor"))
            }
            "--require-speedup" => {
                out.require_speedup = Some(
                    take("--require-speedup")
                        .parse()
                        .unwrap_or_else(|_| usage("--require-speedup takes a number")),
                )
            }
            "--at-threads" => {
                out.at_threads = take("--at-threads")
                    .parse()
                    .unwrap_or_else(|_| usage("--at-threads takes an integer"))
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if out.baseline.is_empty() || out.fresh.is_empty() {
        usage("--baseline and --fresh are both required");
    }
    out
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("perf_gate: {path}: {e}"));
    json::validate_bench(&doc).unwrap_or_else(|e| panic!("perf_gate: {path}: bad shape: {e}"));
    doc
}

/// The gated metrics of one document: `(label, seconds-like value)`.
fn gated_metrics(doc: &Value) -> Vec<(String, f64)> {
    let bench = doc.get("bench").and_then(Value::as_str).unwrap_or("");
    let mut out = Vec::new();
    match bench {
        "cycle_scaling" => {
            if let Some(results) = doc.get("results").and_then(Value::as_array) {
                for row in results {
                    let threads = row.get("threads").and_then(Value::as_f64);
                    let mean = row.get("mean_cycle_s").and_then(Value::as_f64);
                    if let (Some(t), Some(m)) = (threads, mean) {
                        if t == 1.0 {
                            out.push(("mean_cycle_s@1t".to_string(), m));
                        }
                    }
                }
            }
            if let Some(kernels) = doc.get("kernels").and_then(Value::as_array) {
                for row in kernels {
                    let name = row.get("name").and_then(Value::as_str);
                    let mean = row.get("mean_s_per_cycle").and_then(Value::as_f64);
                    if let (Some(n), Some(m)) = (name, mean) {
                        out.push((format!("kernel:{n}"), m));
                    }
                }
            }
        }
        "kernels" => {
            if let Some(results) = doc.get("results").and_then(Value::as_array) {
                for row in results {
                    let name = row.get("name").and_then(Value::as_str);
                    let mean = row.get("mean_us").and_then(Value::as_f64);
                    if let (Some(n), Some(m)) = (name, mean) {
                        out.push((format!("us:{n}"), m));
                    }
                }
            }
        }
        other => {
            eprintln!("perf_gate: note — bench kind {other:?} has no gated metrics");
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let fresh = load(&args.fresh);

    let b_kind = baseline.get("bench").and_then(Value::as_str).unwrap_or("");
    let f_kind = fresh.get("bench").and_then(Value::as_str).unwrap_or("");
    if b_kind != f_kind {
        eprintln!("perf_gate: FAIL — bench kinds differ: baseline {b_kind:?}, fresh {f_kind:?}");
        std::process::exit(1);
    }

    let b_cores = baseline
        .get("host_cores")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let f_cores = fresh
        .get("host_cores")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let same_host_shape = b_cores == f_cores;
    let factor = if same_host_shape {
        1.0 + args.max_regression_pct / 100.0
    } else {
        eprintln!(
            "perf_gate: NOTE — baseline measured on {b_cores:.0} core(s), fresh on \
             {f_cores:.0}; absolute timings are not comparable across host shapes. \
             Widening the gate to {:.1}x (only catastrophic regressions fail). \
             Refresh the committed baseline from a {f_cores:.0}-core runner to \
             restore the tight {:.0}% gate.",
            args.cross_host_grace, args.max_regression_pct
        );
        args.cross_host_grace
    };

    let base_metrics = gated_metrics(&baseline);
    let fresh_metrics = gated_metrics(&fresh);
    let mut failures = 0usize;

    for (label, base_val) in &base_metrics {
        let Some((_, fresh_val)) = fresh_metrics.iter().find(|(l, _)| l == label) else {
            eprintln!(
                "perf_gate: FAIL — metric {label} present in baseline but missing in fresh run"
            );
            failures += 1;
            continue;
        };
        // Sub-microsecond buckets are dominated by timer quantization.
        let ratio = if *base_val > 0.0 {
            fresh_val / base_val
        } else {
            1.0
        };
        let verdict = if ratio <= factor { "ok" } else { "REGRESSION" };
        eprintln!(
            "perf_gate: {label:<28} baseline {base_val:.6}  fresh {fresh_val:.6}  ratio {ratio:.3} (limit {factor:.3})  {verdict}"
        );
        if ratio > factor {
            failures += 1;
        }
    }
    for (label, _) in &fresh_metrics {
        if !base_metrics.iter().any(|(l, _)| l == label) {
            eprintln!("perf_gate: note — new metric {label} (no baseline yet)");
        }
    }

    if let Some(min) = args.require_speedup {
        if f_kind != "cycle_scaling" {
            eprintln!("perf_gate: note — --require-speedup only applies to cycle_scaling");
        } else if f_cores < args.at_threads as f64 {
            eprintln!(
                "perf_gate: speedup gate skipped — fresh host has {f_cores:.0} core(s), \
                 cannot measure {} threads",
                args.at_threads
            );
        } else {
            let speedup = fresh
                .get("results")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
                .find(|row| {
                    row.get("threads").and_then(Value::as_f64) == Some(args.at_threads as f64)
                })
                .and_then(|row| row.get("speedup").and_then(Value::as_f64));
            match speedup {
                Some(s) if s >= min => {
                    eprintln!(
                        "perf_gate: speedup gate OK ({s:.2}x >= {min}x at {} threads)",
                        args.at_threads
                    );
                }
                Some(s) => {
                    eprintln!(
                        "perf_gate: FAIL — speedup {s:.2}x < required {min}x at {} threads",
                        args.at_threads
                    );
                    failures += 1;
                }
                None => {
                    eprintln!(
                        "perf_gate: FAIL — fresh sweep has no {}-thread point to gate",
                        args.at_threads
                    );
                    failures += 1;
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("perf_gate: FAIL — {failures} gated metric(s) regressed");
        std::process::exit(1);
    }
    eprintln!("perf_gate: PASS");
}
