//! Shared helpers live in each bench file.
