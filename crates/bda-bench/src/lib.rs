//! Shared fixtures for the bench suite.
//!
//! Every `benches/*.rs` harness needs the same few ingredients — a seeded
//! RNG, a reduced-scale OSSE, random ensembles and SPD eigenproblem
//! batches shaped like LETKF ensemble-space problems. They live here once
//! instead of being re-declared per bench file, so problem shapes stay
//! consistent across the whole trajectory (`BENCH_*.json` points are only
//! comparable if the fixtures never drift apart silently).

pub mod json;

use bda_core::osse::{Osse, OsseConfig};
use bda_letkf::{ObsEnsemble, ObsKind, Observation, StateLayout};
use bda_num::{MatrixS, SplitMix64};

/// The bench suite's seeded RNG. One constructor so every harness draws
/// from the same deterministic family.
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// A reduced-scale OSSE (the `OsseConfig::reduced` family): `nx`-cell
/// horizontal grid, `nz` levels, `members`-member ensemble, `n_triggers`
/// convection triggers, deterministic `seed`.
pub fn reduced_osse(
    nx: usize,
    nz: usize,
    members: usize,
    n_triggers: usize,
    seed: u64,
) -> Osse<f32> {
    Osse::new(OsseConfig::reduced(nx, nz, members, n_triggers, seed))
}

/// A batch of comfortably-SPD matrices shaped like LETKF ensemble-space
/// problems (`(k-1)I + C`), for eigensolver benches.
pub fn spd_batch(n: usize, count: usize, seed: u64) -> Vec<MatrixS<f32>> {
    let mut rng = rng(seed);
    (0..count)
        .map(|_| {
            let mut a = MatrixS::zeros(n);
            for i in 0..n {
                for j in i..n {
                    let v = rng.gaussian(0.0f32, 1.0);
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
            }
            a.add_scaled_identity(n as f32);
            a
        })
        .collect()
}

/// `k` member state vectors of `n` standard-normal values — the I/O-path
/// and transport payload fixture.
pub fn gaussian_ensemble(k: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rng(seed);
    (0..k)
        .map(|_| (0..n).map(|_| rng.gaussian(0.0f32, 1.0)).collect())
        .collect()
}

/// A square `nx` x `nx` x `nz` four-variable analysis layout at 500-m
/// spacing — the LETKF cost-scaling fixture.
pub fn letkf_layout(nx: usize, nz: usize) -> StateLayout {
    StateLayout {
        nx,
        ny: nx,
        nz,
        nvar: 4,
        dx: 500.0,
        z_center: (0..nz).map(|k| 500.0 + 500.0 * k as f64).collect(),
    }
}

/// Random member state vectors matching `layout` (mean 5, sd 1 — positive
/// reflectivity-like values).
pub fn layout_members(layout: &StateLayout, k: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rng(seed);
    (0..k)
        .map(|_| {
            (0..layout.n_elements())
                .map(|_| rng.gaussian(5.0f32, 1.0))
                .collect()
        })
        .collect()
}

/// Reflectivity observations on every `every`-th column at mid-height,
/// with forward-operator rows sampled from `members` — the dense-obs
/// LETKF benchmark input.
pub fn grid_obs(layout: &StateLayout, members: &[Vec<f32>], every: usize) -> ObsEnsemble<f32> {
    let mut obs = Vec::new();
    let mut hx: Vec<Vec<f32>> = vec![Vec::new(); members.len()];
    for i in (0..layout.nx).step_by(every) {
        for j in (0..layout.ny).step_by(every) {
            let (x, y) = layout.xy(i, j);
            let kz = layout.nz / 2;
            obs.push(Observation {
                kind: ObsKind::Reflectivity,
                x,
                y,
                z: layout.z_center[kz],
                value: 20.0,
                error_sd: 5.0,
            });
            let src = layout.member_index(0, i, j, kz);
            for (m, member) in members.iter().enumerate() {
                hx[m].push(member[src]);
            }
        }
    }
    ObsEnsemble::new(obs, hx)
}
