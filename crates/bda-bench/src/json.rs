//! Minimal JSON parsing and BENCH-file shape validation.
//!
//! `vendor/serde_json` is an empty facade in this workspace, so the perf
//! tooling (`perf_gate`, `bench_trajectory`) carries its own
//! recursive-descent parser. It covers the full JSON grammar; it does not
//! try to be fast — BENCH files are a few hundred bytes.
//!
//! Every `BENCH_*.json` at the repo root must satisfy [`validate_bench`]:
//! a top-level object with a `"bench"` string, a `"host_cores"` number and
//! a non-empty `"results"` array of flat objects whose values are numbers
//! or strings. The optional `"kernels"` array (cycle_scaling's per-kernel
//! breakdown) follows the same row rules. CI's bench-trajectory step runs
//! this check over every committed BENCH file.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep insertion order via the side
/// vector in [`Value::Obj`]; lookup is by linear scan (objects are tiny).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            ch as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // BENCH files are ASCII; lone surrogates map to the
                        // replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("empty continuation")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Check one row of a `results`/`kernels` array: a non-empty flat object
/// whose values are finite numbers or strings.
fn validate_row(row: &Value, what: &str, i: usize) -> Result<(), String> {
    let fields = row
        .as_object()
        .ok_or_else(|| format!("{what}[{i}] is not an object"))?;
    if fields.is_empty() {
        return Err(format!("{what}[{i}] is empty"));
    }
    for (k, v) in fields {
        match v {
            Value::Num(x) if x.is_finite() => {}
            Value::Num(_) => return Err(format!("{what}[{i}].{k} is not finite")),
            Value::Str(_) => {}
            _ => return Err(format!("{what}[{i}].{k} must be a number or string")),
        }
    }
    Ok(())
}

/// Validate the committed BENCH-file shape (see module docs).
pub fn validate_bench(doc: &Value) -> Result<(), String> {
    doc.as_object().ok_or("top level is not an object")?;
    doc.get("bench")
        .and_then(Value::as_str)
        .ok_or("missing string field \"bench\"")?;
    doc.get("host_cores")
        .and_then(Value::as_f64)
        .ok_or("missing numeric field \"host_cores\"")?;
    let results = doc
        .get("results")
        .and_then(Value::as_array)
        .ok_or("missing array field \"results\"")?;
    if results.is_empty() {
        return Err("\"results\" is empty".to_string());
    }
    for (i, row) in results.iter().enumerate() {
        validate_row(row, "results", i)?;
    }
    if let Some(kernels) = doc.get("kernels") {
        let kernels = kernels.as_array().ok_or("\"kernels\" is not an array")?;
        for (i, row) in kernels.iter().enumerate() {
            validate_row(row, "kernels", i)?;
            row.get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("kernels[{i}] missing string \"name\""))?;
        }
    }
    Ok(())
}

/// Flatten a validated BENCH document into `metric name -> value` pairs for
/// the trajectory table. Each results row is identified by its string
/// fields plus its first numeric field (e.g. `threads=1`, or
/// `transport=file,strip_len=256`); the remaining numeric fields become
/// metrics `key[id]`. Kernel rows use their `name` as the identifier.
pub fn flatten_metrics(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(results) = doc.get("results").and_then(Value::as_array) {
        for row in results {
            let Some(fields) = row.as_object() else {
                continue;
            };
            let mut id_parts: Vec<String> = Vec::new();
            let mut metrics: Vec<(&str, f64)> = Vec::new();
            let mut first_num_taken = false;
            for (k, v) in fields {
                match v {
                    Value::Str(s) => id_parts.push(format!("{k}={s}")),
                    Value::Num(x) if !first_num_taken => {
                        first_num_taken = true;
                        // Integral identifiers read as `threads=4`, not 4.0.
                        if x.fract() == 0.0 {
                            id_parts.push(format!("{k}={}", *x as i64));
                        } else {
                            id_parts.push(format!("{k}={x}"));
                        }
                    }
                    Value::Num(x) => metrics.push((k, *x)),
                    _ => {}
                }
            }
            let id = id_parts.join(",");
            for (k, x) in metrics {
                out.insert(format!("{k}[{id}]"), x);
            }
        }
    }
    if let Some(kernels) = doc.get("kernels").and_then(Value::as_array) {
        for row in kernels {
            let Some(name) = row.get("name").and_then(Value::as_str) else {
                continue;
            };
            for (k, v) in row.as_object().into_iter().flatten() {
                if let Value::Num(x) = v {
                    out.insert(format!("{k}[{name}]"), *x);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_bench_shape() {
        let text = r#"{
  "bench": "cycle_scaling",
  "config": "OsseConfig::reduced(24, 12, 16, 3, 4)",
  "host_cores": 1,
  "cycles_per_point": 4,
  "results": [
    { "threads": 1, "mean_cycle_s": 2.017157, "speedup": 1.0 },
    { "threads": 4, "mean_cycle_s": 2.906491, "speedup": 0.694 }
  ],
  "kernels": [
    { "name": "eigensolve", "mean_s_per_cycle": 0.12, "calls_per_cycle": 3456.0 }
  ]
}"#;
        let doc = parse(text).expect("parse");
        validate_bench(&doc).expect("valid");
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("cycle_scaling"));
        assert_eq!(
            doc.get("results").unwrap().as_array().unwrap()[1]
                .get("mean_cycle_s")
                .unwrap()
                .as_f64(),
            Some(2.906491)
        );
        let flat = flatten_metrics(&doc);
        assert_eq!(flat.get("mean_cycle_s[threads=1]"), Some(&2.017157));
        assert_eq!(flat.get("speedup[threads=4]"), Some(&0.694));
        assert_eq!(flat.get("mean_s_per_cycle[eigensolve]"), Some(&0.12));
    }

    #[test]
    fn flattens_string_identified_rows() {
        let text = r#"{
  "bench": "halo_rtt",
  "host_cores": 1,
  "results": [
    { "transport": "socket", "strip_len": 256, "mean_ms": 0.132 }
  ]
}"#;
        let doc = parse(text).expect("parse");
        validate_bench(&doc).expect("valid");
        let flat = flatten_metrics(&doc);
        assert_eq!(
            flat.get("mean_ms[transport=socket,strip_len=256]"),
            Some(&0.132)
        );
    }

    #[test]
    fn rejects_malformed_shapes() {
        let missing_results = r#"{ "bench": "x", "host_cores": 1 }"#;
        assert!(validate_bench(&parse(missing_results).unwrap()).is_err());

        let empty_results = r#"{ "bench": "x", "host_cores": 1, "results": [] }"#;
        assert!(validate_bench(&parse(empty_results).unwrap()).is_err());

        let bad_row = r#"{ "bench": "x", "host_cores": 1, "results": [ { "a": [] } ] }"#;
        assert!(validate_bench(&parse(bad_row).unwrap()).is_err());

        let unnamed_kernel = r#"{ "bench": "x", "host_cores": 1, "results": [ { "a": 1 } ], "kernels": [ { "mean_s_per_cycle": 0.1 } ] }"#;
        assert!(validate_bench(&parse(unnamed_kernel).unwrap()).is_err());
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let doc = parse(r#"{ "a\n\"b\"": [1, -2.5e3, true, false, null, "A"] }"#).unwrap();
        let arr = doc.get("a\n\"b\"").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[5].as_str(), Some("A"));

        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }
}
