//! A-IO — §5: SCALE↔LETKF exchange — file I/O vs RAM copy.
//!
//! "The data transfer between SCALE and the LETKF was accelerated by
//! replacing the original file I/O with parallel I/O using the MPI data
//! transfer with RAM copy ... without using files." This bench moves an
//! ensemble of member states through both transports and reports the
//! contrast. At full scale (O(10^9) variables) the file path is minutes —
//! tolerable at 1-hour refresh (§4), fatal at 30 seconds.

use bda_bench::gaussian_ensemble;
use bda_io::{EnsembleTransport, FileTransport, MemoryTransport};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    eprintln!("\n================ A-IO: exchange-path ablation ================");
    eprintln!("paper: replacing file I/O with RAM copy was one of the §5 innovations;");
    eprintln!("compare file-io vs memory rows (same payload, same checksummed format)\n");

    // 16 members x 64k values x 4 bytes = 4 MiB per handoff.
    let k = 16;
    let n = 64 * 1024;
    let members = gaussian_ensemble(k, n, 3);
    let bytes = (k * n * std::mem::size_of::<f32>()) as u64;

    let dir = std::env::temp_dir().join(format!("bda_bench_io_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut group = c.benchmark_group("io_path/roundtrip_4MiB");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(20);

    group.bench_function("file-io (durable)", |b| {
        let mut t = FileTransport::new(&dir).unwrap();
        b.iter(|| {
            t.send(black_box(&members)).unwrap();
            black_box(EnsembleTransport::<f32>::recv(&mut t).unwrap())
        })
    });

    group.bench_function("file-io (no fsync)", |b| {
        let mut t = FileTransport::new(&dir).unwrap();
        t.durable = false;
        b.iter(|| {
            t.send(black_box(&members)).unwrap();
            black_box(EnsembleTransport::<f32>::recv(&mut t).unwrap())
        })
    });

    group.bench_function("memory (RAM copy)", |b| {
        let mut t = MemoryTransport::<f32>::new();
        b.iter(|| {
            t.send(black_box(&members)).unwrap();
            black_box(t.recv().unwrap())
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
