//! A-PREC — §5: single vs double precision.
//!
//! "We converted variables of both SCALE and LETKF Fortran codes from double
//! precision to single precision for 2x acceleration." Every kernel in this
//! workspace is generic over the `Real` trait, so the same code runs at both
//! precisions; this bench measures the contrast on the two hot paths: the
//! model time step and the LETKF ensemble-space transform.

use bda_bench::rng;
use bda_letkf::weights::{apply_transform, compute_transform, LocalObs, TransformScratch};
use bda_num::{BatchedEigen, MatrixS, Real};
use bda_scale::base::Sounding;
use bda_scale::{Model, ModelConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn model_step_bench<T: Real>(c: &mut Criterion, label: &str) {
    // Large enough that the 12-field state exceeds the last-level cache, so
    // the step is memory-bandwidth bound — the regime where the paper's f32
    // conversion pays (the other half of its win was SVE vector width).
    let mut cfg = ModelConfig::reduced(96, 96, 40);
    cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
    cfg.davies_width = 0;
    let mut model = Model::<T>::new(cfg, &Sounding::convective());
    let g = model.cfg.grid.clone();
    model
        .state
        .add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 6000.0, 1200.0, 2.5);
    let mut group = c.benchmark_group("precision/model_step_96x96x40");
    group.sample_size(10);
    group.bench_function(label, |b| {
        b.iter(|| {
            model.step();
            black_box(model.state.time)
        })
    });
    group.finish();
}

fn field_sweep_bench<T: Real>(c: &mut Criterion, label: &str) {
    // The pure-bandwidth kernel: axpy over a field far larger than cache.
    use bda_grid::Field3;
    let mut a = Field3::<T>::constant(256, 256, 60, 2, T::one());
    let b_field = Field3::<T>::constant(256, 256, 60, 2, T::of(0.5));
    let mut group = c.benchmark_group("precision/field_axpy_256x256x60");
    group.sample_size(20);
    group.bench_function(label, |bch| {
        bch.iter(|| {
            a.axpy(T::of(1e-6), black_box(&b_field));
            black_box(a.at(0, 0, 0))
        })
    });
    group.finish();
}

fn letkf_transform_bench<T: Real>(c: &mut Criterion, label: &str) {
    let k = 100;
    let nobs = 40;
    let mut rng = rng(5);
    let mut local = LocalObs::<T>::new(k);
    let mut row = vec![T::zero(); k];
    for _ in 0..nobs {
        rng.fill_gaussian(&mut row, T::one());
        local.push(rng.gaussian(T::zero(), T::of(2.0)), T::of(0.04), &row);
    }
    let mut solver = BatchedEigen::<T>::with_capacity(k);
    let mut scratch = TransformScratch::new();
    let mut trans = MatrixS::zeros(k);
    let mut vals = vec![T::zero(); k];
    rng.fill_gaussian(&mut vals, T::of(3.0));
    let mut pert = vec![T::zero(); k];

    c.bench_function(
        format!("precision/letkf_transform_k100/{label}").as_str(),
        |b| {
            b.iter(|| {
                compute_transform(
                    black_box(&local),
                    T::of(0.95),
                    T::one(),
                    &mut solver,
                    &mut scratch,
                    &mut trans,
                );
                apply_transform(&mut vals, &trans, &mut pert);
                black_box(vals[0])
            })
        },
    );
}

fn bench(c: &mut Criterion) {
    eprintln!("\n================ A-PREC: single vs double precision ================");
    eprintln!("paper: converting SCALE + LETKF to single precision gave ~2x; compare the");
    eprintln!("f32 and f64 rows below (model step is memory-bound, transform compute-bound)\n");

    field_sweep_bench::<f32>(c, "f32");
    field_sweep_bench::<f64>(c, "f64");
    model_step_bench::<f32>(c, "f32");
    model_step_bench::<f64>(c, "f64");
    letkf_transform_bench::<f32>(c, "f32");
    letkf_transform_bench::<f64>(c, "f64");
}

criterion_group!(benches, bench);
criterion_main!(benches);
