//! S-N1 — halo delivery latency: file spool vs loopback socket.
//!
//! Measures, per halo payload size, the publish-to-`Ready` latency of
//! one analyzed-strip halo frame between two shards over the two
//! [`HaloTransport`] flavours:
//!
//! * **file** — [`HaloBus`]: publisher seals the frame to the shared
//!   spool directory, collector polls for the file (the PR-7 baseline).
//! * **socket** — [`NetBus`]: publisher pushes the sealed `BDAN` frame
//!   over loopback TCP, collector's inbox is filled by a reader thread
//!   (with `REQ`-pull backstop).
//!
//! The point of the table is the *seam cost*: the socket path removes
//! the collector's filesystem poll from the hot loop, so its latency
//! should track the poll-free wire time while the file path pays the
//! poll quantum. Writes the machine-readable point `BENCH_8.json` at
//! the repo root.
//!
//! Not a criterion harness: each point needs its own spool directory
//! and socket pair, so this is a plain `harness = false` main.
//!
//! Flags (unknown flags such as cargo's `--bench` are ignored):
//!
//! * `--reps N`      timed deliveries per point (default 200)
//! * `--points a,b`  strip lengths (f32 values per member) to sweep,
//!   default 256,4096,65536
//! * `--members N`   ensemble members per frame (default 4)
//! * `--out PATH`    output path (default `<repo>/BENCH_8.json`)

use bda_shard::netbus::{NetBus, NetBusConfig};
use bda_shard::{CollectStatus, HaloBus, HaloFrame, HaloMsg, HaloTransport};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(10);
const POLL: Duration = Duration::from_micros(200);

struct Point {
    transport: &'static str,
    strip_len: usize,
    members: usize,
    payload_bytes: usize,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn frame(cycle: u64, strip_len: usize, members: usize) -> HaloFrame<f32> {
    // Deterministic non-trivial payload; values don't matter, bytes do.
    let strips = (0..members)
        .map(|m| {
            (0..strip_len)
                .map(|i| (i as f32 * 0.125 + m as f32).sin())
                .collect()
        })
        .collect();
    HaloFrame::Strip(HaloMsg {
        shard: 0,
        cycle,
        i0: 0,
        i1: 2,
        points_analyzed: strip_len,
        strips,
    })
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64) * q).ceil() as usize;
    sorted_ms[idx.saturating_sub(1).min(sorted_ms.len() - 1)]
}

/// Time `reps` single-frame deliveries from publisher `a` to collector
/// `b` (fresh cycle number each rep so nothing is cached).
fn measure<B: HaloTransport>(
    transport: &'static str,
    a: &B,
    b: &B,
    strip_len: usize,
    members: usize,
    reps: usize,
) -> Point {
    // Warm-up: connection establishment (socket) / directory pages (file).
    a.publish(&frame(0, strip_len, members))
        .expect("warm publish");
    assert!(matches!(
        b.collect_blocking::<f32>(0, 0, DEADLINE, POLL),
        CollectStatus::Ready(_)
    ));

    let mut ms = Vec::with_capacity(reps);
    for rep in 0..reps {
        let cycle = 1 + rep as u64;
        let f = frame(cycle, strip_len, members);
        let t0 = Instant::now();
        a.publish(&f).expect("publish");
        let got = b.collect_blocking::<f32>(cycle, 0, DEADLINE, POLL);
        ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let CollectStatus::Ready(m) = got else {
            panic!("delivery failed at rep {rep}: {got:?}");
        };
        assert_eq!(m.strips.len(), members, "short frame delivered");
    }
    ms.sort_by(f64::total_cmp);
    Point {
        transport,
        strip_len,
        members,
        payload_bytes: strip_len * members * 4,
        mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
        p50_ms: percentile(&ms, 0.50),
        p99_ms: percentile(&ms, 0.99),
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bda-halo-rtt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn file_point(strip_len: usize, members: usize, reps: usize) -> Point {
    let dir = bench_dir(&format!("file-{strip_len}"));
    let a = HaloBus::new(&dir).expect("file bus");
    let b = HaloBus::new(&dir).expect("file bus");
    let p = measure("file", &a, &b, strip_len, members, reps);
    let _ = std::fs::remove_dir_all(&dir);
    p
}

fn socket_point(strip_len: usize, members: usize, reps: usize) -> Point {
    let dir = bench_dir(&format!("socket-{strip_len}"));
    let a = NetBus::start(NetBusConfig::new(0, 2), &dir).expect("netbus");
    let b = NetBus::start(NetBusConfig::new(1, 2), &dir).expect("netbus");
    let p = measure("socket", &a, &b, strip_len, members, reps);
    drop(b);
    drop(a);
    let _ = std::fs::remove_dir_all(&dir);
    p
}

fn main() {
    let mut reps = 200usize;
    let mut points: Vec<usize> = vec![256, 4096, 65536];
    let mut members = 4usize;
    let mut out = format!("{}/../../BENCH_8.json", env!("CARGO_MANIFEST_DIR"));

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--points" => {
                let spec = args.next().expect("--points takes a,b,c");
                points = spec
                    .split(',')
                    .map(|t| t.trim().parse().expect("--points entries are integers"))
                    .collect();
            }
            "--members" => {
                members = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--members takes a positive integer");
            }
            "--out" => out = args.next().expect("--out takes a path"),
            _ => {}
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "halo_rtt: host_cores={host_cores} reps/point={reps} members={members} sweep={points:?}"
    );

    let mut results = Vec::new();
    for &n in &points {
        for p in [file_point(n, members, reps), socket_point(n, members, reps)] {
            eprintln!(
                "  {:<6} strip={:<6} payload={:>8}B mean={:.3}ms p50={:.3}ms p99={:.3}ms",
                p.transport, p.strip_len, p.payload_bytes, p.mean_ms, p.p50_ms, p.p99_ms
            );
            results.push(p);
        }
    }

    // vendor/serde_json is an empty facade, so the JSON is assembled by
    // hand; the shape is stable for downstream trajectory tooling.
    let rows: Vec<String> = results
        .iter()
        .map(|p| {
            format!(
                "    {{ \"transport\": \"{}\", \"strip_len\": {}, \"members\": {}, \
                 \"payload_bytes\": {}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}",
                p.transport, p.strip_len, p.members, p.payload_bytes, p.mean_ms, p.p50_ms, p.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"halo_rtt\",\n  \"collector_poll_us\": {},\n  \"host_cores\": {},\n  \"reps_per_point\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        POLL.as_micros(),
        host_cores,
        reps,
        rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing BENCH_8.json");
    eprintln!("halo_rtt: wrote {out}");
}
