//! E-S1 — strong-scaling of one full OSSE assimilation cycle.
//!
//! Times a complete cycle (ensemble forecast + PAWR scan + LETKF analysis)
//! at 1/2/4/8 worker threads over identically seeded campaigns and writes
//! the machine-readable scaling point `BENCH_9.json` at the repo root:
//! per thread count the mean cycle wall-clock and the speedup over the
//! single-thread baseline, plus a per-kernel breakdown (eigensolve /
//! tridiag / microphysics / obs-operator) attributed in a separate
//! single-thread pass so the timing guards never perturb the scaling
//! numbers themselves. This feeds CI's `perf-gate` regression lane and the
//! `bench-trajectory` artifact.
//!
//! Not a criterion harness: thread-count sweeps need explicit pool
//! installs per measurement, so this is a plain `harness = false` main.
//!
//! Flags (all optional; unknown flags such as cargo's `--bench` are
//! ignored so `cargo bench --bench cycle_scaling` works unmodified):
//!
//! * `--cycles N`          timed cycles per thread count (default 6)
//! * `--threads a,b,c`     thread counts to sweep (default 1,2,4,8)
//! * `--out PATH`          output path (default `<repo>/BENCH_9.json`)
//! * `--assert-speedup X`  exit non-zero unless speedup at the highest
//!   thread count ≤ host cores reaches X. Skipped (with a notice) when
//!   the host has fewer cores than every multi-thread point — a 1-core
//!   box cannot measure scaling, only CI's 4-vCPU runner can.
//!
//! If the output file already exists and the host has fewer cores than the
//! widest sweep point, the whole run is skipped (with a notice) instead of
//! replacing a wide runner's results with numbers a narrow host cannot
//! measure.

use bda_bench::reduced_osse;
use bda_num::timing;
use rayon::ThreadPoolBuilder;
use std::time::Instant;

/// One kernel bucket's per-cycle attribution.
struct KernelRow {
    name: &'static str,
    mean_s_per_cycle: f64,
    calls_per_cycle: f64,
}

/// One measured point of the sweep.
struct Point {
    threads: usize,
    mean_cycle_s: f64,
    speedup: f64,
}

/// Mean wall-clock of one OSSE cycle with `threads` pool workers.
///
/// Every thread count gets a freshly seeded, identically configured
/// campaign (same spinup, same trigger schedule) so the work per cycle is
/// identical and only the pool width varies.
fn measure(threads: usize, cycles: usize) -> f64 {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible");
    pool.install(|| {
        let mut osse = reduced_osse(24, 12, 16, 3, 4);
        osse.spinup_system(360.0);
        // Warm-up cycle: page in buffers, settle the trigger state.
        osse.cycle();
        let start = Instant::now();
        for _ in 0..cycles {
            osse.cycle();
        }
        start.elapsed().as_secs_f64() / cycles as f64
    })
}

/// Single-thread pass with kernel timers enabled: per-kernel seconds and
/// call counts per cycle. Runs after the scaling sweep so the guards'
/// clock reads never contaminate `mean_cycle_s`.
fn attribute_kernels(cycles: usize) -> Vec<KernelRow> {
    let pool = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool build is infallible");
    pool.install(|| {
        let mut osse = reduced_osse(24, 12, 16, 3, 4);
        osse.spinup_system(360.0);
        osse.cycle();
        timing::reset();
        timing::set_enabled(true);
        for _ in 0..cycles {
            osse.cycle();
        }
        timing::set_enabled(false);
    });
    timing::report()
        .into_iter()
        .map(|t| KernelRow {
            name: t.kernel.name(),
            mean_s_per_cycle: t.seconds / cycles as f64,
            calls_per_cycle: t.calls as f64 / cycles as f64,
        })
        .collect()
}

fn main() {
    let mut cycles = 6usize;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut out = format!("{}/../../BENCH_9.json", env!("CARGO_MANIFEST_DIR"));
    let mut assert_speedup: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cycles" => {
                cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cycles takes a positive integer");
            }
            "--threads" => {
                let spec = args.next().expect("--threads takes a,b,c");
                threads = spec
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads entries are integers"))
                    .collect();
            }
            "--out" => out = args.next().expect("--out takes a path"),
            "--assert-speedup" => {
                assert_speedup = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-speedup takes a number"),
                );
            }
            // cargo bench forwards `--bench` and filter strings; ignore.
            _ => {}
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("cycle_scaling: host_cores={host_cores} cycles/point={cycles} sweep={threads:?}");

    // Honesty guard: a host narrower than the sweep (e.g. a 1-core
    // container) measures only contention, not scaling. Overwriting a
    // BENCH file produced by a wide runner with those degenerate numbers
    // would silently corrupt the perf trajectory, so refuse.
    let max_swept = threads.iter().copied().max().unwrap_or(1);
    if host_cores < max_swept && std::path::Path::new(&out).exists() {
        eprintln!(
            "cycle_scaling: SKIP — {out} exists and this host has {host_cores} core(s), \
             fewer than the widest sweep point ({max_swept} threads); refusing to \
             overwrite a wider runner's results. Narrow the sweep with \
             --threads or delete the file to force a rewrite."
        );
        return;
    }

    let mut points: Vec<Point> = Vec::new();
    let mut base = None;
    for &t in &threads {
        let mean = measure(t, cycles);
        let base_s = *base.get_or_insert(mean);
        let speedup = base_s / mean;
        eprintln!("  threads={t:<2} mean_cycle={mean:.4}s speedup={speedup:.2}x");
        points.push(Point {
            threads: t,
            mean_cycle_s: mean,
            speedup,
        });
    }

    eprintln!("cycle_scaling: attributing per-kernel time (1-thread pass)");
    let kernels = attribute_kernels(cycles);
    for k in &kernels {
        eprintln!(
            "  kernel={:<13} mean={:.4}s/cycle calls={:.0}/cycle",
            k.name, k.mean_s_per_cycle, k.calls_per_cycle
        );
    }

    // vendor/serde_json is an empty facade, so the JSON is assembled by
    // hand; the shape is stable for downstream trajectory tooling.
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"threads\": {}, \"mean_cycle_s\": {:.6}, \"speedup\": {:.4} }}",
                p.threads, p.mean_cycle_s, p.speedup
            )
        })
        .collect();
    let krows: Vec<String> = kernels
        .iter()
        .map(|k| {
            format!(
                "    {{ \"name\": \"{}\", \"mean_s_per_cycle\": {:.6}, \"calls_per_cycle\": {:.1} }}",
                k.name, k.mean_s_per_cycle, k.calls_per_cycle
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cycle_scaling\",\n  \"config\": \"OsseConfig::reduced(24, 12, 16, 3, 4)\",\n  \"host_cores\": {},\n  \"cycles_per_point\": {},\n  \"results\": [\n{}\n  ],\n  \"kernels\": [\n{}\n  ]\n}}\n",
        host_cores,
        cycles,
        rows.join(",\n"),
        krows.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing BENCH JSON");
    eprintln!("cycle_scaling: wrote {out}");

    if let Some(min) = assert_speedup {
        // Gate on the widest sweep point the host can actually run in
        // parallel; a 1-core container has no such point and must not
        // report a fake pass *or* a fake failure.
        let gated = points
            .iter()
            .filter(|p| p.threads > 1 && p.threads <= host_cores)
            .max_by_key(|p| p.threads);
        match gated {
            Some(p) if p.speedup >= min => {
                eprintln!(
                    "cycle_scaling: speedup gate OK ({:.2}x >= {min}x at {} threads)",
                    p.speedup, p.threads
                );
            }
            Some(p) => {
                eprintln!(
                    "cycle_scaling: FAIL — speedup {:.2}x < required {min}x at {} threads",
                    p.speedup, p.threads
                );
                std::process::exit(1);
            }
            None => {
                eprintln!(
                    "cycle_scaling: speedup gate skipped — host has {host_cores} core(s), \
                     no multi-thread point can scale here"
                );
            }
        }
    }
}
