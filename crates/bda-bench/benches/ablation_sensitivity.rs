//! A-SENS — §5: configuration sensitivity (cost side).
//!
//! The accuracy side of the sweep lives in `examples/sensitivity_sweep`;
//! this bench measures the *cost* scaling the paper traded against it:
//! LETKF analysis time vs ensemble size and localization radius (more
//! members = bigger eigenproblems; wider localization = more observations
//! per grid point).

use bda_letkf::{
    analyze, EnsembleMatrix, LetkfConfig, ObsEnsemble, ObsKind, Observation, StateLayout,
};
use bda_num::SplitMix64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn layout(nx: usize, nz: usize) -> StateLayout {
    StateLayout {
        nx,
        ny: nx,
        nz,
        nvar: 4,
        dx: 500.0,
        z_center: (0..nz).map(|k| 500.0 + 500.0 * k as f64).collect(),
    }
}

fn members(l: &StateLayout, k: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SplitMix64::new(seed);
    (0..k)
        .map(|_| {
            (0..l.n_elements())
                .map(|_| rng.gaussian(5.0f32, 1.0))
                .collect()
        })
        .collect()
}

fn obs_grid(l: &StateLayout, members: &[Vec<f32>], every: usize) -> ObsEnsemble<f32> {
    let mut obs = Vec::new();
    let mut hx: Vec<Vec<f32>> = vec![Vec::new(); members.len()];
    for i in (0..l.nx).step_by(every) {
        for j in (0..l.ny).step_by(every) {
            let (x, y) = l.xy(i, j);
            let kz = l.nz / 2;
            obs.push(Observation {
                kind: ObsKind::Reflectivity,
                x,
                y,
                z: l.z_center[kz],
                value: 20.0,
                error_sd: 5.0,
            });
            let src = l.member_index(0, i, j, kz);
            for (m, member) in members.iter().enumerate() {
                hx[m].push(member[src]);
            }
        }
    }
    ObsEnsemble::new(obs, hx)
}

fn bench(c: &mut Criterion) {
    eprintln!("\n================ A-SENS: analysis cost scaling ================");
    eprintln!("cost side of the paper's configuration sweep: LETKF time vs ensemble");
    eprintln!("size and localization radius (skill side: examples/sensitivity_sweep)\n");

    let l = layout(12, 8);

    // --- ensemble-size scaling ---
    let mut group = c.benchmark_group("sensitivity/ensemble_size");
    group.sample_size(10);
    for &k in &[8usize, 16, 32, 64] {
        let ms = members(&l, k, k as u64);
        let obs = obs_grid(&l, &ms, 3);
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            let cfg = LetkfConfig::reduced(k);
            b.iter(|| {
                let mut mat = EnsembleMatrix::from_members(black_box(&ms), l.clone());
                black_box(analyze(&mut mat, &obs, &cfg).unwrap())
            })
        });
    }
    group.finish();

    // --- localization-radius scaling ---
    let mut group = c.benchmark_group("sensitivity/localization_radius_m");
    group.sample_size(10);
    let k = 16;
    let ms = members(&l, k, 7);
    let obs = obs_grid(&l, &ms, 1); // dense obs so the radius matters
    for &loc in &[1000.0f64, 2000.0, 4000.0] {
        group.bench_function(BenchmarkId::from_parameter(loc as u64), |b| {
            let mut cfg = LetkfConfig::reduced(k);
            cfg.loc_horizontal = loc;
            cfg.loc_vertical = loc;
            b.iter(|| {
                let mut mat = EnsembleMatrix::from_members(black_box(&ms), l.clone());
                black_box(analyze(&mut mat, &obs, &cfg).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
