//! A-SENS — §5: configuration sensitivity (cost side).
//!
//! The accuracy side of the sweep lives in `examples/sensitivity_sweep`;
//! this bench measures the *cost* scaling the paper traded against it:
//! LETKF analysis time vs ensemble size and localization radius (more
//! members = bigger eigenproblems; wider localization = more observations
//! per grid point).

use bda_bench::{grid_obs, layout_members, letkf_layout};
use bda_letkf::{analyze, EnsembleMatrix, LetkfConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    eprintln!("\n================ A-SENS: analysis cost scaling ================");
    eprintln!("cost side of the paper's configuration sweep: LETKF time vs ensemble");
    eprintln!("size and localization radius (skill side: examples/sensitivity_sweep)\n");

    let l = letkf_layout(12, 8);

    // --- ensemble-size scaling ---
    let mut group = c.benchmark_group("sensitivity/ensemble_size");
    group.sample_size(10);
    for &k in &[8usize, 16, 32, 64] {
        let ms = layout_members(&l, k, k as u64);
        let obs = grid_obs(&l, &ms, 3);
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            let cfg = LetkfConfig::reduced(k);
            b.iter(|| {
                let mut mat = EnsembleMatrix::from_members(black_box(&ms), l.clone());
                black_box(analyze(&mut mat, &obs, &cfg).unwrap())
            })
        });
    }
    group.finish();

    // --- localization-radius scaling ---
    let mut group = c.benchmark_group("sensitivity/localization_radius_m");
    group.sample_size(10);
    let k = 16;
    let ms = layout_members(&l, k, 7);
    let obs = grid_obs(&l, &ms, 1); // dense obs so the radius matters
    for &loc in &[1000.0f64, 2000.0, 4000.0] {
        group.bench_function(BenchmarkId::from_parameter(loc as u64), |b| {
            let mut cfg = LetkfConfig::reduced(k);
            cfg.loc_horizontal = loc;
            cfg.loc_vertical = loc;
            b.iter(|| {
                let mut mat = EnsembleMatrix::from_members(black_box(&ms), l.clone());
                black_box(analyze(&mut mat, &obs, &cfg).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
