//! E-F7 — Fig. 7: threat-score verification, BDA vs persistence.
//!
//! Regenerates the Fig. 7 comparison on a reduced OSSE (printed once) and
//! benchmarks the verification kernels at the paper's full map size
//! (256 x 256, the 2-km reflectivity field).

use bda_bench::{reduced_osse, rng};
use bda_verify::{ContingencyTable, LeadTimeSeries, PersistenceForecast};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn regenerate_fig7() {
    let mut osse = reduced_osse(14, 10, 8, 3, 2024);
    osse.spinup_system(720.0);
    for _ in 0..3 {
        osse.cycle();
    }
    let leads: Vec<f64> = (0..=4).map(|i| i as f64 * 90.0).collect();
    let mut bda = LeadTimeSeries::new(leads.len(), 90.0);
    let mut per = LeadTimeSeries::new(leads.len(), 90.0);
    for _ in 0..4 {
        let case = osse.run_forecast_case(&leads, 3);
        let p = PersistenceForecast::new(&case.observed_dbz_init);
        for (li, &lead) in case.leads.iter().enumerate() {
            bda.add(
                li,
                &ContingencyTable::from_fields(
                    &case.forecast_dbz[li],
                    &case.truth_dbz[li],
                    30.0,
                    Some(&case.mask),
                ),
            );
            per.add(
                li,
                &ContingencyTable::from_fields(
                    p.at_lead(lead),
                    &case.truth_dbz[li],
                    30.0,
                    Some(&case.mask),
                ),
            );
        }
        osse.cycle();
    }
    eprintln!("\n================ Fig. 7 (regenerated, reduced scale) ================");
    eprint!("{}", bda.comparison_report("BDA", &per, "persistence"));
    eprintln!(
        "paper shape: BDA above persistence at all positive leads; persistence near-perfect at lead 0\n"
    );
}

fn bench(c: &mut Criterion) {
    regenerate_fig7();

    // Verification kernels at full map size.
    let n = 256 * 256;
    let mut rng = rng(1);
    let truth: Vec<f32> = (0..n).map(|_| rng.uniform_in(0.0, 55.0) as f32).collect();
    let forecast: Vec<f32> = truth
        .iter()
        .map(|&v| v + rng.gaussian(0.0f64, 6.0) as f32)
        .collect();
    let mask: Vec<bool> = (0..n).map(|i| i % 7 != 0).collect();

    c.bench_function("fig7/contingency_256x256", |b| {
        b.iter(|| {
            black_box(ContingencyTable::from_fields(
                black_box(&forecast),
                black_box(&truth),
                30.0,
                Some(&mask),
            ))
        })
    });

    c.bench_function("fig7/threat_score_from_table", |b| {
        let t = ContingencyTable::from_fields(&forecast, &truth, 30.0, Some(&mask));
        b.iter(|| black_box(t.threat_score()))
    });

    c.bench_function("fig7/leadtime_aggregation_120_cases", |b| {
        let t = ContingencyTable::from_fields(&forecast, &truth, 30.0, Some(&mask));
        b.iter(|| {
            let mut s = LeadTimeSeries::new(61, 30.0);
            for case in 0..120 {
                s.add(case % 61, &t);
            }
            black_box(s.threat_scores())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
