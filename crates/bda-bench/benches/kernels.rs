//! Per-kernel microbenchmarks at realistic LETKF sizes.
//!
//! The cycle-level numbers in `BENCH_9.json` attribute wall-clock to
//! kernel buckets; this harness pins the kernels themselves — batched
//! eigensolve, blocked HEVI tridiagonal sweep, K-blocked GEMM and the
//! unrolled accumulator primitives — so a regression in any one of them is
//! visible even when cycle-level noise would hide it. CI's `perf-gate`
//! compares each row against the committed `BENCH_9_kernels.json`.
//!
//! Sizes mirror the reduced OSSE and the paper's LETKF: ensemble sizes
//! k = 16 (bench fixture) and k = 64, vertical sweep nz = 12 over a
//! 24-column x-row, and k = 100 vectors for the dot/axpy primitives.
//!
//! Flags (unknown flags ignored so `cargo bench --bench kernels` works):
//!
//! * `--out PATH`   output path (default `<repo>/BENCH_9_kernels.json`)
//! * `--reps N`     measured repetitions per kernel (default 200)

use bda_bench::{rng, spd_batch};
use bda_num::matrix::{axpy8, dot8, MatrixS};
use bda_num::tridiag::ThomasFactor;
use bda_num::BatchedEigen;
use std::time::Instant;

struct Row {
    name: &'static str,
    mean_us: f64,
}

/// Mean microseconds per call of `op` over `reps` calls (after one
/// warm-up call that also pages in the scratch buffers).
fn time_op(reps: usize, mut op: impl FnMut()) -> f64 {
    op();
    let start = Instant::now();
    for _ in 0..reps {
        op();
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn eigensolve_bench(k: usize, batch: usize, reps: usize) -> f64 {
    let mats = spd_batch(k, batch, 7);
    let mut solver = BatchedEigen::<f32>::with_capacity(k);
    let us_per_batch = time_op(reps, || {
        for a in &mats {
            solver.decompose_in_place(a);
            std::hint::black_box(solver.values().first().copied());
        }
    });
    us_per_batch / batch as f64
}

fn tridiag_bench(nz: usize, cols: usize, reps: usize) -> f64 {
    let mut r = rng(11);
    // Diagonally dominant system shaped like the HEVI vertical operator.
    let sub: Vec<f32> = (0..nz).map(|_| r.gaussian(0.0f32, 0.1)).collect();
    let sup: Vec<f32> = (0..nz).map(|_| r.gaussian(0.0f32, 0.1)).collect();
    let diag: Vec<f32> = (0..nz).map(|_| 1.0 + r.gaussian(0.0f32, 0.05)).collect();
    let rhs: Vec<f32> = (0..nz * cols).map(|_| r.gaussian(0.0f32, 1.0)).collect();
    let mut tri = ThomasFactor::new();
    let mut block = rhs.clone();
    time_op(reps, || {
        tri.factor(&sub, &diag, &sup);
        block.copy_from_slice(&rhs);
        tri.solve_columns(&mut block, cols);
        std::hint::black_box(block[0]);
    })
}

fn gemm_bench(n: usize, reps: usize) -> f64 {
    let mut r = rng(13);
    let a = MatrixS::<f32>::from_fn(n, |_, _| r.gaussian(0.0f32, 1.0));
    let b = MatrixS::<f32>::from_fn(n, |_, _| r.gaussian(0.0f32, 1.0));
    let mut c = MatrixS::zeros(n);
    time_op(reps, || {
        a.matmul_into(&b, &mut c);
        std::hint::black_box(c[(0, 0)]);
    })
}

fn dot8_bench(n: usize, reps: usize) -> f64 {
    let mut r = rng(17);
    let x: Vec<f32> = (0..n).map(|_| r.gaussian(0.0f32, 1.0)).collect();
    let y: Vec<f32> = (0..n).map(|_| r.gaussian(0.0f32, 1.0)).collect();
    // One call is nanoseconds; time an inner loop of 512 and divide.
    time_op(reps, || {
        let mut acc = 0.0f32;
        for _ in 0..512 {
            acc += dot8(&x, &y);
        }
        std::hint::black_box(acc);
    }) / 512.0
}

fn axpy8_bench(n: usize, reps: usize) -> f64 {
    let mut r = rng(19);
    let x: Vec<f32> = (0..n).map(|_| r.gaussian(0.0f32, 1.0)).collect();
    let mut y: Vec<f32> = (0..n).map(|_| r.gaussian(0.0f32, 1.0)).collect();
    time_op(reps, || {
        for _ in 0..512 {
            axpy8(1e-7f32, &x, &mut y);
        }
        std::hint::black_box(y[0]);
    }) / 512.0
}

fn main() {
    let mut out = format!("{}/../../BENCH_9_kernels.json", env!("CARGO_MANIFEST_DIR"));
    let mut reps = 200usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out takes a path"),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            _ => {}
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("kernels: host_cores={host_cores} reps={reps}");

    let rows = [
        Row {
            name: "eigensolve_k16",
            mean_us: eigensolve_bench(16, 64, reps),
        },
        Row {
            name: "eigensolve_k64",
            mean_us: eigensolve_bench(64, 8, reps),
        },
        Row {
            name: "tridiag_nz12_cols24",
            mean_us: tridiag_bench(12, 24, reps),
        },
        Row {
            name: "gemm_k64",
            mean_us: gemm_bench(64, reps),
        },
        Row {
            name: "dot8_k100",
            mean_us: dot8_bench(100, reps),
        },
        Row {
            name: "axpy8_k100",
            mean_us: axpy8_bench(100, reps),
        },
    ];
    for r in &rows {
        eprintln!("  {:<22} {:10.4} us", r.name, r.mean_us);
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"name\": \"{}\", \"mean_us\": {:.6} }}",
                r.name, r.mean_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"host_cores\": {},\n  \"reps\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        host_cores,
        reps,
        body.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing kernels BENCH JSON");
    eprintln!("kernels: wrote {out}");
}
