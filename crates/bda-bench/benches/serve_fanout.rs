//! E-S2 — egress fan-out scaling of the nowcast broadcast server.
//!
//! Measures, per subscriber count, the cost of delivering one 30-second
//! tile product to the whole fleet over real loopback TCP: mean publish
//! wall-clock (encode + admit + enqueue + one nonblocking pump), the p99
//! of the end-to-end delivery latency (publish start until every client
//! has *acknowledged* the full cycle — kernel-buffered bytes don't
//! count), and aggregate delivery throughput. Writes the machine-readable
//! point `BENCH_6.json` at the repo root.
//!
//! Not a criterion harness: each point needs its own server, socket
//! fleet, and swarm thread, so this is a plain `harness = false` main.
//!
//! Flags (unknown flags such as cargo's `--bench` are ignored):
//!
//! * `--cycles N`       timed cycles per client count (default 30)
//! * `--clients a,b,c`  subscriber counts to sweep (default 4,16,64,256)
//! * `--out PATH`       output path (default `<repo>/BENCH_6.json`)

use bda_serve::server::{NowcastServer, ServeConfig};
use bda_serve::storm::{StormSwarm, SwarmConfig};
use bda_serve::tile::synthetic_reflectivity;
use bda_workflow::fault::FaultPlan;
use std::time::{Duration, Instant};

const W: usize = 96;
const H: usize = 96;

struct Point {
    clients: usize,
    frames_per_cycle: usize,
    mean_publish_ms: f64,
    p99_cycle_ms: f64,
    throughput_mb_s: f64,
    evicted: usize,
}

/// One sweep point: a fresh server and a fully healthy swarm of `clients`
/// subscribers, timed over `cycles` publishes.
fn measure(clients: usize, cycles: usize) -> Point {
    let server = NowcastServer::bind(ServeConfig::default()).expect("bind loopback");
    let swarm = StormSwarm::launch(
        server.local_addr(),
        SwarmConfig {
            clients,
            seed: 42,
            never_ack: 0.0,
            mid_stream_disconnect: 0.0,
        },
        FaultPlan::none(),
    );
    std::thread::sleep(Duration::from_millis(30 + clients as u64 / 2));
    let mut server = server;

    // Warm-up cycle admits the fleet and pages in the tile pipeline.
    let field = synthetic_reflectivity(0, W, H);
    let warm = server
        .publish(0, &field, W, H, false)
        .expect("warm publish");
    swarm.on_cycle(0);
    let frames_per_cycle = warm.frames;

    let mut publish_ms = Vec::with_capacity(cycles);
    let mut cycle_ms = Vec::with_capacity(cycles);
    let mut delivered_bytes = 0usize;
    let mut evicted = 0usize;
    let t_all = Instant::now();
    for cycle in 1..=cycles as u64 {
        let field = synthetic_reflectivity(cycle, W, H);
        let t0 = Instant::now();
        let rep = server.publish(cycle, &field, W, H, false).expect("publish");
        publish_ms.push(rep.elapsed_ms);
        // Delivery completes when every surviving client has *acknowledged*
        // the whole cycle — bytes parked in kernel buffers don't count.
        // This also paces the sweep honestly: a free-running loop would
        // starve the client thread and measure the eviction path instead.
        let settle = Instant::now();
        loop {
            let queued = server.pump_all();
            if (queued == 0 && server.fully_acked()) || settle.elapsed() > Duration::from_secs(5) {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        cycle_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        swarm.on_cycle(cycle);
        delivered_bytes += rep.delta_bytes * rep.clients;
        evicted += rep.evicted;
    }
    let elapsed_s = t_all.elapsed().as_secs_f64();
    let report = server.shutdown(Duration::from_secs(2));
    let swarm_report = swarm.finish();
    assert_eq!(
        swarm_report.decode_errors(),
        0,
        "corrupt frames during bench: {}",
        swarm_report.summary()
    );
    eprintln!("    server: {}", report.summary());
    eprintln!("    swarm:  {}", swarm_report.summary());
    evicted = evicted.max(report.evicted());

    cycle_ms.sort_by(f64::total_cmp);
    let p99_idx = ((cycle_ms.len() as f64) * 0.99).ceil() as usize;
    Point {
        clients,
        frames_per_cycle,
        mean_publish_ms: publish_ms.iter().sum::<f64>() / publish_ms.len() as f64,
        p99_cycle_ms: cycle_ms[p99_idx.saturating_sub(1).min(cycle_ms.len() - 1)],
        throughput_mb_s: delivered_bytes as f64 / 1e6 / elapsed_s,
        evicted,
    }
}

fn main() {
    let mut cycles = 30usize;
    let mut clients: Vec<usize> = vec![4, 16, 64, 256];
    let mut out = format!("{}/../../BENCH_6.json", env!("CARGO_MANIFEST_DIR"));

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cycles" => {
                cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cycles takes a positive integer");
            }
            "--clients" => {
                let spec = args.next().expect("--clients takes a,b,c");
                clients = spec
                    .split(',')
                    .map(|t| t.trim().parse().expect("--clients entries are integers"))
                    .collect();
            }
            "--out" => out = args.next().expect("--out takes a path"),
            _ => {}
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("serve_fanout: host_cores={host_cores} cycles/point={cycles} sweep={clients:?}");

    let mut points = Vec::new();
    for &n in &clients {
        let p = measure(n, cycles);
        eprintln!(
            "  clients={:<4} publish={:.2}ms p99_cycle={:.2}ms throughput={:.1}MB/s evicted={}",
            p.clients, p.mean_publish_ms, p.p99_cycle_ms, p.throughput_mb_s, p.evicted
        );
        points.push(p);
    }

    // vendor/serde_json is an empty facade, so the JSON is assembled by
    // hand; the shape is stable for downstream trajectory tooling.
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"clients\": {}, \"frames_per_cycle\": {}, \"mean_publish_ms\": {:.4}, \
                 \"p99_cycle_ms\": {:.4}, \"throughput_mb_s\": {:.4}, \"evicted\": {} }}",
                p.clients,
                p.frames_per_cycle,
                p.mean_publish_ms,
                p.p99_cycle_ms,
                p.throughput_mb_s,
                p.evicted
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_fanout\",\n  \"grid\": \"{W}x{H} dBZ, 32px tiles, 3 zoom levels\",\n  \"host_cores\": {},\n  \"cycles_per_point\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        host_cores,
        cycles,
        rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("writing BENCH_6.json");
    eprintln!("serve_fanout: wrote {out}");
}
