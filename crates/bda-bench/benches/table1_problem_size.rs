//! E-T1 — Table 1: problem-size comparison vs operational NWP systems.
//!
//! Prints the regenerated Table 1 with the derived problem-size column and
//! benchmarks the (trivial) computation so the table appears in every bench
//! run's output. The scientific content is the printed ratio: BDA2021 is
//! ~two orders of magnitude beyond the largest operational DA problem.

use bda_core::systems::{bda2021, render_table1, TABLE1};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // --- the regenerated table, once ---
    eprintln!("\n================ Table 1 (regenerated) ================");
    eprint!("{}", render_table1());
    let bda = bda2021();
    let best = TABLE1
        .iter()
        .map(|s| s.problem_size_rate())
        .fold(0.0, f64::max);
    eprintln!(
        "BDA problem-size ratio vs best operational: {:.0}x (paper: 'two orders of magnitude')",
        bda.problem_size_rate() / best
    );
    eprintln!(
        "refresh speedup vs hourly systems: {:.0}x (paper: '120x faster')\n",
        bda.refresh_speedup_vs(&TABLE1[0])
    );

    c.bench_function("table1/problem_size_rates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in &TABLE1 {
                acc += black_box(s).problem_size_rate();
            }
            acc += bda2021().problem_size_rate();
            black_box(acc)
        })
    });

    c.bench_function("table1/render", |b| b.iter(|| black_box(render_table1())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
