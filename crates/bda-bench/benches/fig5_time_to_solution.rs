//! E-F5 — Fig. 5: time-to-solution over the month-long campaign.
//!
//! Prints the regenerated Fig. 5 statistics (total forecast count,
//! histogram, fraction under 3 minutes — paper: 75,248 forecasts, ~97%)
//! and benchmarks the campaign simulator and the per-cycle performance
//! model.

use bda_workflow::campaign::{run_campaign, CampaignConfig};
use bda_workflow::PerfModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // --- the regenerated figure, once ---
    let full = run_campaign(&CampaignConfig::bda2021());
    eprintln!("\n================ Fig. 5 (regenerated) ================");
    eprint!("{}", full.report());
    eprintln!(
        "paper reference: 75,248 forecasts, ~97% under 3 minutes; measured: {} forecasts, {:.1}%\n",
        full.total_forecasts(),
        full.fraction_below(3.0) * 100.0
    );

    let perf = PerfModel::bda2021();
    c.bench_function("fig5/perf_model_sample", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(perf.sample(black_box(0.2), seed))
        })
    });

    let day = CampaignConfig::short(24.0, 7);
    c.bench_function("fig5/campaign_one_day", |b| {
        b.iter(|| black_box(run_campaign(black_box(&day))))
    });

    let mut g = c.benchmark_group("fig5/campaign_full_month");
    g.sample_size(10);
    g.bench_function("two_periods_30_days", |b| {
        let cfg = CampaignConfig::bda2021();
        b.iter(|| black_box(run_campaign(black_box(&cfg))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
