//! A-EIG — §5: the eigensolver swap (KeDV vs the standard solver).
//!
//! "The LETKF contains eigenvalue decomposition of the size of the ensemble
//! at each grid point, involving total 256x256x60 calls of an eigenvalue
//! solver of the matrix size of 1000. We applied KeDV ... in place of the
//! standard LAPACK solver to accelerate the computation."
//!
//! Here the contrast is reproduced from scratch: cyclic Jacobi (the slow
//! robust reference), Householder+QL (the LAPACK-algorithm class) and the
//! batched, workspace-reusing QL (the KeDV engineering idea), on batches of
//! SPD matrices shaped like LETKF ensemble-space problems.

use bda_bench::spd_batch;
use bda_num::{BatchedEigen, JacobiEigen, QlEigen, SymEigSolver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    eprintln!("\n================ A-EIG: eigensolver ablation ================");
    eprintln!("paper: KeDV replaced the standard solver for k=1000 problems at every");
    eprintln!("grid point; compare jacobi (reference) vs householder-ql vs batched-ql\n");

    for &n in &[32usize, 64, 96] {
        let batch = spd_batch(n, 8, n as u64);
        let mut group = c.benchmark_group(format!("eigensolver/k{n}_batch8"));
        if n >= 64 {
            group.sample_size(10);
        }

        group.bench_function(BenchmarkId::new("jacobi", n), |b| {
            let mut solver = JacobiEigen::default();
            b.iter(|| {
                for a in &batch {
                    black_box(SymEigSolver::<f32>::decompose(&mut solver, black_box(a)));
                }
            })
        });

        group.bench_function(BenchmarkId::new("householder-ql", n), |b| {
            let mut solver = QlEigen;
            b.iter(|| {
                for a in &batch {
                    black_box(SymEigSolver::<f32>::decompose(&mut solver, black_box(a)));
                }
            })
        });

        group.bench_function(BenchmarkId::new("batched-ql (KeDV analogue)", n), |b| {
            let mut solver = BatchedEigen::<f32>::with_capacity(n);
            b.iter(|| black_box(solver.decompose_batch(black_box(&batch))))
        });

        group.finish();
    }

    // Single large problem closer to the paper's k=1000 (kept modest so the
    // bench suite stays fast; scale with --bench if desired).
    let big = spd_batch(192, 1, 99);
    let mut group = c.benchmark_group("eigensolver/k192_single");
    group.sample_size(10);
    group.bench_function("householder-ql", |b| {
        let mut solver = QlEigen;
        b.iter(|| black_box(SymEigSolver::<f32>::decompose(&mut solver, &big[0])))
    });
    group.bench_function("jacobi", |b| {
        let mut solver = JacobiEigen::default();
        b.iter(|| black_box(SymEigSolver::<f32>::decompose(&mut solver, &big[0])))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
