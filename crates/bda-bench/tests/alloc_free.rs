//! Steady-state allocation freedom of the microphysics hot path, proven at
//! run time with a counting global allocator.
//!
//! `bda-check`'s `hot_alloc` rule proves *lexically* that the kernels under
//! `HOT_ANCHORS` contain no allocation sites; this test closes the other
//! half of the argument by *executing* a column microphysics + sedimentation
//! cycle under an instrumented allocator and asserting the steady-state
//! allocation count is exactly zero. Together they pin the paper's 30-second
//! wall-clock budget against both new allocation sites (lint, compile time)
//! and allocating callees smuggled in behind a clean-looking call (this
//! test, run time).
//!
//! The counter only runs while "armed" so test-harness bookkeeping outside
//! the measured region is not charged to the kernel. One warmup cycle runs
//! before arming — first-touch lazy init (lazy statics, TLS destructors)
//! is setup cost, not steady-state cost.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static REALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use bda_grid::VerticalCoord;
use bda_num::SplitMix64;
use bda_scale::base::{BaseState, Sounding};
use bda_scale::microphys::{column_microphysics, ColumnView, MicrophysParams};

#[test]
fn microphysics_cycle_is_allocation_free_after_warmup() {
    const NZ: usize = 30;
    const CYCLES: usize = 16;

    // --- setup: every buffer the kernel needs, allocated up front ---
    let vc = VerticalCoord::stretched(NZ, 12_000.0, 1.06);
    let base = BaseState::<f64>::from_sounding(&Sounding::convective(), &vc, 340.0);
    let dz: Vec<f64> = (0..NZ).map(|k| vc.dz(k)).collect();
    let params = MicrophysParams::default();
    let mut rng = SplitMix64::new(0x5eed_a110c);
    let mut th = vec![0.0; NZ];
    let pi = vec![0.0; NZ];
    let mut qv: Vec<f64> = (0..NZ)
        .map(|k| base.qv0[k] + rng.uniform_in(0.0, 4e-3))
        .collect();
    let mut qc: Vec<f64> = (0..NZ).map(|_| rng.uniform_in(0.0, 1e-3)).collect();
    let mut qr: Vec<f64> = (0..NZ).map(|_| rng.uniform_in(0.0, 2e-3)).collect();
    let mut qi: Vec<f64> = (0..NZ).map(|_| rng.uniform_in(0.0, 5e-4)).collect();
    let mut qs: Vec<f64> = (0..NZ).map(|_| rng.uniform_in(0.0, 5e-4)).collect();
    let mut qg: Vec<f64> = (0..NZ).map(|_| rng.uniform_in(0.0, 5e-4)).collect();
    // The sedimentation flux scratch is caller-owned by design — exactly so
    // the per-cycle path needs no allocation.
    let mut flux = vec![0.0; NZ];

    let mut col = ColumnView {
        theta: &mut th,
        pi: &pi,
        qv: &mut qv,
        qc: &mut qc,
        qr: &mut qr,
        qi: &mut qi,
        qs: &mut qs,
        qg: &mut qg,
    };

    // --- warmup: one full cycle, unmeasured ---
    let r = column_microphysics(&mut col, &base, &params, &dz, 2.0, &mut flux);
    assert!(r.rain_rate_mmh.is_finite());

    // --- measured region ---
    let a0 = ALLOCS.load(Ordering::SeqCst);
    let r0 = REALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let mut rain = 0.0;
    for _ in 0..CYCLES {
        let r = column_microphysics(&mut col, &base, &params, &dz, 2.0, &mut flux);
        rain += r.rain_rate_mmh;
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst) - a0;
    let reallocs = REALLOCS.load(Ordering::SeqCst) - r0;

    // Keep the result observable so the loop cannot be optimized away.
    assert!(rain.is_finite() && rain >= 0.0);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "microphysics + sedimentation must be allocation-free per cycle \
         after warmup: counted {allocs} alloc(s) and {reallocs} realloc(s) \
         over {CYCLES} cycles"
    );
}
