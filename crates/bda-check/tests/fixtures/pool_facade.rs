// Fixture for the `pool_facade` rule (linted under a nominal
// vendor/rayon/src/ path that is not facade.rs).

use std::sync::atomic::AtomicUsize; // line 4: positive hit

pub fn hit_mutex() {
    let _ = std::sync::Mutex::new(0u32); // line 7: positive hit
}

pub fn hit_scope() {
    std::thread::scope(|_| {}); // line 11: positive hit
}

pub fn allowed() {
    // bda-check: allow(pool_facade) — fixture: suppressed
    let _ = std::sync::Mutex::new(0u32);
}

pub fn clean(n: &AtomicUsize) -> usize {
    n.load(core::sync::atomic::Ordering::Relaxed) // line 20: positive hit (core::sync::atomic)
}
