// Fixture for the `partial_cmp_unwrap` rule.

pub fn hit_same_line(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 4: positive hit
}

pub fn hit_next_line(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b) // line 8: positive hit (unwrap on next line)
        .unwrap());
}

pub fn allowed(v: &mut [f64]) {
    // bda-check: allow(partial_cmp_unwrap) — fixture: suppressed
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn clean(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}
