// Fixture: a typo'd rule name inside an allow marker must itself be a
// finding, and must NOT suppress the real finding under it.

pub fn typo(v: Option<u32>) -> u32 {
    // bda-check: allow(unwraps) — line 5: unknown rule name
    v.unwrap()
}
