// Fixture for the `wallclock` rule.

pub fn hit_instant() -> std::time::Instant {
    std::time::Instant::now() // line 4: positive hit
}

pub fn hit_system_time() -> std::time::SystemTime {
    std::time::SystemTime::now() // line 8: positive hit
}

pub fn allowed_telemetry() -> std::time::Instant {
    std::time::Instant::now() // bda-check: allow(wallclock) — fixture: telemetry column
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = std::time::Instant::now(); // exempt: inside #[cfg(test)]
    }
}
