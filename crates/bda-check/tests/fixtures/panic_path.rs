//! Intentional `panic_path` violations and non-violations. Hot regions
//! come from `bda-check: hot` markers; the same text in a cold function
//! stays silent, and `debug_assert!` is always exempt.

// bda-check: hot
pub fn hot_lookup(xs: &[f64], i: usize) -> f64 {
    let a = xs[i + 1];
    let b = xs.first().unwrap();
    assert!(i < xs.len());
    debug_assert!(i < xs.len());
    a + *b
}

pub fn cold_lookup(xs: &[f64], i: usize) -> f64 {
    xs[i + 1]
}

#[inline]
// bda-check: hot
pub fn hot_plain_index(xs: &[f64]) -> f64 {
    xs[0]
}

// bda-check: hot bda-check: allow(panic_path) -- caller pre-checks bounds
pub fn hot_justified(xs: &[f64], i: usize) -> f64 {
    xs[i + 1]
}
