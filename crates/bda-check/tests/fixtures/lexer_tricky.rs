// Fixture for lexer masking: every pattern below lives inside a string,
// comment, raw string, or char literal and must produce ZERO findings
// when linted under a nominal library path.

pub fn strings() -> (&'static str, String) {
    let s = "calling .unwrap() here would be bad";
    let t = format!("Instant::now {} partial_cmp", "x as f64");
    (s, t)
}

pub fn raw_strings() -> &'static str {
    r#"std::sync::Mutex and .expect("...") inside a raw string"#
}

pub fn raw_hash_strings() -> &'static str {
    r##"nested "r#" raw string with .unwrap() and SystemTime::now"##
}

// A line comment mentioning .unwrap() and Instant::now is not code.
/* A block comment with .expect( and x as usize is not code either.
   /* nested block comments stay comments: thread_rng */
   still a comment: partial_cmp(b).unwrap() */

pub fn chars_and_lifetimes<'a>(x: &'a u8) -> (char, &'a u8) {
    let c = '"'; // a quote char literal must not open a string
    let d = '\''; // escaped quote char
    let _ = d;
    (c, x)
}

pub fn byte_strings() -> &'static [u8] {
    b".unwrap() in a byte string"
}

pub fn escaped() -> String {
    "a string with an escaped quote \" then .expect( text".to_string()
}

pub fn multiline() -> &'static str {
    "a string that continues \
     across a line break with .unwrap() inside"
}
