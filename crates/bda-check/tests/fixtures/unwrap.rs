// Fixture for the `unwrap` rule. Never compiled; linted by tests/lint_rules.rs
// under a nominal library path.

pub fn hit(v: Option<u32>) -> u32 {
    v.unwrap() // line 5: positive hit
}

pub fn hit_expect(v: Option<u32>) -> u32 {
    v.expect("missing") // line 9: positive hit
}

pub fn allowed_same_line(v: Option<u32>) -> u32 {
    v.unwrap() // bda-check: allow(unwrap) — fixture: suppressed on own line
}

pub fn allowed_line_above(v: Option<u32>) -> u32 {
    // bda-check: allow(unwrap) — fixture: suppressed from the line above
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // exempt: inside #[cfg(test)]
    }
}
