// Fixture for the `lossy_cast` rule (kernel scope: linted under a
// nominal crates/bda-num/src/ path).

pub fn hit(x: f64) -> usize {
    x as usize // line 5: positive hit
}

pub fn hit_float(n: u64) -> f64 {
    n as f64 // line 9: positive hit
}

pub fn allowed(x: f64) -> usize {
    x as usize // bda-check: allow(lossy_cast) — fixture: suppressed
}

pub fn not_a_cast(alias: u32, has_bias: u32) -> u32 {
    // `alias`/`has_bias` must not trip the left word boundary check,
    // and `as` followed by a non-numeric word is not a lossy cast.
    let trait_cast = &alias as &dyn core::fmt::Debug;
    let _ = (trait_cast, has_bias);
    alias
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_region() {
        let _ = 3.7_f64 as usize; // exempt: inside #[cfg(test)]
    }
}
