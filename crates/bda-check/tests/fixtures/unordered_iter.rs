//! Intentional `unordered_iter` violations and non-violations: hash
//! containers iterated (directly, via `for`, or through one accessor
//! hop) versus keyed access and ordered containers.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;

pub fn frame_digest(slots: &HashMap<u64, u32>) -> u64 {
    let mut acc = 0u64;
    for (cycle, v) in slots.iter() {
        acc ^= cycle.wrapping_add(u64::from(*v));
    }
    acc
}

pub fn member_list(seen: HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for id in &seen {
        out.push(*id);
    }
    out.sort_unstable();
    out
}

pub fn hop_iter(shared: &Mutex<HashMap<u64, u32>>) -> usize {
    shared.lock().iter().count()
}

pub fn keyed_access(index: &HashMap<u64, u32>, k: u64) -> Option<u32> {
    index.get(&k).copied()
}

pub fn ordered_iteration(cycles: &BTreeMap<u64, u32>) -> u64 {
    cycles.keys().sum()
}

// bda-check: allow(unordered_iter) -- XOR fold is order-independent
pub fn justified(tags: &HashSet<u64>) -> u64 {
    tags.iter().fold(0, |a, b| a ^ *b)
}
