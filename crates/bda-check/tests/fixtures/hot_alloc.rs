//! Intentional `hot_alloc` violations and non-violations. The
//! `bda-check: hot` markers stand in for the anchor table; `helper` is
//! reached by one-level call-graph propagation from `hot_kernel`.

// bda-check: hot
pub fn hot_kernel(xs: &mut [f64]) -> f64 {
    let buf = vec![0.0; xs.len()];
    let tag = format!("n={}", xs.len());
    helper(xs) + buf.len() as f64 + tag.len() as f64
}

pub fn helper(xs: &mut [f64]) -> f64 {
    let scratch: Vec<f64> = Vec::with_capacity(xs.len());
    xs.len() as f64 + scratch.capacity() as f64
}

pub fn cold_path(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}

// bda-check: hot
pub fn hot_justified(xs: &[f64]) -> f64 {
    // bda-check: allow(hot_alloc) -- one-time scratch, persisted by the caller
    let boxed = Box::new(xs.len());
    *boxed as f64
}
