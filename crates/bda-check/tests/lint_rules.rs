//! Rule-level tests for `bda-check lint`, driven by the intentional
//! violations under `tests/fixtures/` (a directory the workspace walker
//! skips). Each fixture is linted under a *nominal* path so one text file
//! can be exercised in several scopes: library, test, kernel, vendor.

use bda_check::lint::rules::check_file;
use bda_check::lint::{find_workspace_root, run};
use std::path::Path;

const LIB_PATH: &str = "crates/bda-core/src/fixture.rs";

fn lines_for(rel: &str, src: &str, rule: &str) -> Vec<usize> {
    check_file(rel, src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn unwrap_rule_hits_allows_and_test_regions() {
    let src = include_str!("fixtures/unwrap.rs");
    // Positive hits on the two bare panicking calls; both allow spellings
    // suppress; the #[cfg(test)] region is exempt.
    assert_eq!(lines_for(LIB_PATH, src, "unwrap"), vec![5, 9]);
    // The same text under a test path is entirely out of scope.
    assert_eq!(
        lines_for("crates/bda-core/tests/fixture.rs", src, "unwrap"),
        Vec::<usize>::new()
    );
}

#[test]
fn partial_cmp_rule_applies_even_in_tests() {
    let src = include_str!("fixtures/partial_cmp.rs");
    // Linted under a tests/ path so the `unwrap` rule stays out of the way:
    // `partial_cmp_unwrap` is workspace-wide, tests included.
    let rel = "crates/bda-core/tests/fixture.rs";
    assert_eq!(lines_for(rel, src, "partial_cmp_unwrap"), vec![4, 8]);
}

#[test]
fn lossy_cast_rule_is_kernel_scoped() {
    let src = include_str!("fixtures/lossy_cast.rs");
    let kernel = "crates/bda-num/src/fixture.rs";
    assert_eq!(lines_for(kernel, src, "lossy_cast"), vec![5, 9]);
    // The egress codec is kernel-scoped too: a truncated tile coordinate
    // corrupts the wire format as silently as a truncated weight index.
    assert_eq!(
        lines_for("crates/bda-serve/src/fixture.rs", src, "lossy_cast"),
        vec![5, 9]
    );
    // So is the shard halo exchange: a truncated strip index or count on
    // the federation bus breaks bit-parity without tripping any test.
    // This covers the socket transport too (`wire`, `netbus`, `chaos`
    // live under the same src root).
    assert_eq!(
        lines_for("crates/bda-shard/src/fixture.rs", src, "lossy_cast"),
        vec![5, 9]
    );
    // And the backoff helper: its jitter math crosses float/integer
    // nanoseconds, exactly the silent-truncation shape the rule exists
    // for. The rest of bda-workflow stays out of scope.
    assert_eq!(
        lines_for("crates/bda-workflow/src/backoff.rs", src, "lossy_cast"),
        vec![5, 9]
    );
    assert_eq!(
        lines_for("crates/bda-workflow/src/fault.rs", src, "lossy_cast"),
        Vec::<usize>::new()
    );
    // `&x as &dyn Trait` is not a numeric cast, and identifiers ending in
    // `as` never match. Outside the kernel crates the rule is off.
    assert_eq!(lines_for(LIB_PATH, src, "lossy_cast"), Vec::<usize>::new());
}

#[test]
fn wallclock_rule_hits_and_telemetry_allow() {
    let src = include_str!("fixtures/wallclock.rs");
    assert_eq!(lines_for(LIB_PATH, src, "wallclock"), vec![4, 8]);
}

#[test]
fn pool_facade_rule_exempts_only_the_facade() {
    let src = include_str!("fixtures/pool_facade.rs");
    let rayon = "vendor/rayon/src/pool.rs";
    assert_eq!(lines_for(rayon, src, "pool_facade"), vec![4, 7, 11, 20]);
    // facade.rs is the one sanctioned home of std::sync.
    assert_eq!(
        lines_for("vendor/rayon/src/facade.rs", src, "pool_facade"),
        Vec::<usize>::new()
    );
    // Outside vendor/rayon the rule does not apply (other rules might).
    assert_eq!(lines_for(LIB_PATH, src, "pool_facade"), Vec::<usize>::new());
}

#[test]
fn lexer_masks_strings_comments_and_char_literals() {
    let src = include_str!("fixtures/lexer_tricky.rs");
    // Every banned token in this fixture sits inside a string literal,
    // raw string, comment, or char literal: zero findings in any scope.
    assert_eq!(check_file(LIB_PATH, src), Vec::new());
    assert_eq!(check_file("crates/bda-num/src/fixture.rs", src), Vec::new());
    assert_eq!(check_file("vendor/rayon/src/pool.rs", src), Vec::new());
}

#[test]
fn unknown_rule_in_allow_marker_is_a_finding_and_does_not_suppress() {
    let src = include_str!("fixtures/unknown_allow.rs");
    let findings = check_file(LIB_PATH, src);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert_eq!(findings[0].line, 5);
    assert!(findings[0].message.contains("unknown rule `unwraps`"));
    assert_eq!(findings[1].line, 6, "typo'd marker must not suppress");
}

#[test]
fn allow_marker_inside_string_literal_is_not_a_marker() {
    // The marker text appears only inside a string literal, so the
    // `.unwrap()` on the same line is NOT suppressed.
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    let _m = \"bda-check: allow(unwrap)\"; v.unwrap()\n}\n";
    assert_eq!(lines_for(LIB_PATH, src, "unwrap"), vec![2]);
}

#[test]
fn hot_alloc_rule_markers_propagation_and_allow() {
    let src = include_str!("fixtures/hot_alloc.rs");
    // `vec!` and `format!` inside the marked fn; `Vec::with_capacity` in
    // `helper`, which is hot only by one-level call-graph propagation.
    // `cold_path`'s `.to_vec()` and the allow-justified `Box::new` stay
    // silent.
    assert_eq!(lines_for(LIB_PATH, src, "hot_alloc"), vec![7, 8, 13]);
    // Under a test path the propagation target is not hot-eligible
    // (workspace library code only), so `helper` drops out while the
    // marker-seeded fn itself still reports.
    assert_eq!(
        lines_for("crates/bda-core/tests/fixture.rs", src, "hot_alloc"),
        vec![7, 8]
    );
}

#[test]
fn panic_path_rule_hot_scope_and_debug_assert_exemption() {
    let src = include_str!("fixtures/panic_path.rs");
    // Index arithmetic, `.unwrap()`, `assert!` — all inside the marked
    // fn. `debug_assert!` (line 10), the cold fn with identical text
    // (lines 14-16), plain indexing (line 21), and the fn-level allow
    // (line 26) are all silent.
    assert_eq!(lines_for(LIB_PATH, src, "panic_path"), vec![7, 8, 9]);
}

#[test]
fn unordered_iter_rule_bindings_hops_and_scope() {
    let src = include_str!("fixtures/unordered_iter.rs");
    // Direct `.iter()`, `for .. in`, and a one-hop `lock().iter()` on
    // hash bindings; keyed access, BTreeMap iteration, and the fn-level
    // allow are silent.
    assert_eq!(lines_for(LIB_PATH, src, "unordered_iter"), vec![10, 18, 26]);
    // The rule is scoped to crates whose output feeds tables, frames,
    // checkpoints or digests — physics crates iterate hash maps freely.
    assert_eq!(
        lines_for("crates/bda-scale/src/fixture.rs", src, "unordered_iter"),
        Vec::<usize>::new()
    );
}

/// The whole-workspace snapshot: the tree this repo ships must lint clean.
/// This is the same scan `cargo run -p bda-check -- lint` and CI perform.
#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above bda-check");
    let report = run(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render()
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}): did the walker lose a tree?",
        report.files_scanned
    );
    let rendered = report.render();
    assert!(
        rendered.contains("bda-check lint: 0 finding(s)"),
        "{rendered}"
    );
}
