//! Loom interleaving suite for the vendored rayon pool protocol.
//!
//! Requires `--features loom-model`, which rebuilds `vendor/rayon` with its
//! sync facade backed by the vendored loom model checker — so the code
//! under test here is the **exact** deque claim/steal/combine protocol that
//! runs in production, not a transliteration.
//!
//! Five protocol properties, each at 2 and 3 model threads:
//!
//! 1. every chunk is claimed and executed exactly once, whether popped
//!    from the front of its own deque or stolen from the back of a victim;
//! 2. results combine in ascending chunk order whatever the interleaving;
//! 3. the steal path is *really exercised*: the explored schedule set
//!    contains both steal-won and owner-won outcomes of the owner/thief
//!    CAS race on a deque's last chunk;
//! 4. nested regions serialize on the calling worker and never deadlock;
//! 5. a panic in any worker poisons the region and propagates to the
//!    region's caller.
//!
//! Two-thread configurations are small enough to *exhaust* within the
//! seeded budget, and the tests assert that; three-thread configurations
//! are budget-bounded samples. Two final self-tests break the protocol on
//! purpose — a load;yield;store claim and a load;yield;store steal — and
//! assert the checker catches the resulting double-claim: evidence the
//! suite has teeth on both ends of the deque.
//!
//! Instrumentation inside `work` uses `std::sync` deliberately: model
//! threads are real serialized OS threads, so std atomics behave normally
//! without adding decision points to the explored schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::protocol::run_chunks_with;

/// Builder with an explicit per-test iteration budget (still overridable
/// through `BDA_LOOM_MAX_ITER`/`BDA_LOOM_SEED` for CI tuning).
fn builder(max_iterations: usize) -> loom::Builder {
    let mut b = loom::Builder::default();
    b.max_iterations = b.max_iterations.min(max_iterations);
    b
}

/// Properties 1 + 2 in one model: every chunk runs exactly once and the
/// combined output is in ascending chunk order.
fn check_exactly_once_and_order(threads: usize, items: usize, max_iter: usize) -> loom::Stats {
    builder(max_iter).check(move || {
        let runs: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
        let input: Vec<usize> = (0..items).collect();
        let out = run_chunks_with(threads, input, |start, chunk| {
            // items <= MAX_CHUNKS, so chunks are single items and
            // `start` is the chunk index.
            assert_eq!(chunk.len(), 1, "one item per chunk in this config");
            assert_eq!(chunk[0], start, "chunk carries its own input");
            runs[start].fetch_add(1, Ordering::Relaxed);
            start * 10
        });
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::Relaxed),
                1,
                "chunk {i} must run exactly once"
            );
        }
        let expect: Vec<usize> = (0..items).map(|i| i * 10).collect();
        assert_eq!(out, expect, "combine order must be ascending chunk order");
    })
}

#[test]
fn chunks_claimed_exactly_once_two_threads_exhaustive() {
    let stats = check_exactly_once_and_order(2, 2, 100_000);
    assert!(
        stats.exhausted,
        "2 threads / 2 chunks must be fully enumerable ({} schedules explored)",
        stats.iterations
    );
}

#[test]
fn chunks_claimed_exactly_once_two_threads_three_chunks() {
    let stats = check_exactly_once_and_order(2, 3, 20_000);
    assert!(
        stats.iterations > 10,
        "expected a non-trivial schedule space"
    );
}

#[test]
fn chunks_claimed_exactly_once_three_threads() {
    let stats = check_exactly_once_and_order(3, 3, 8_192);
    assert!(
        stats.iterations > 10,
        "expected a non-trivial schedule space"
    );
}

/// Property 3, front half: with 2 workers over 3 chunks the deques are
/// `[0, 1)` (caller) and `[1, 3)` (worker 1). The caller exhausts its own
/// deque after one chunk, so any further chunk it executes crossed deques
/// through `steal_back`. The schedule space must contain such schedules —
/// otherwise the suite is not actually exploring the steal path.
#[test]
fn steal_path_crosses_deques_two_threads() {
    let stolen_schedules = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&stolen_schedules);
    let stats = builder(20_000).check(move || {
        let caller = std::thread::current().id();
        let by_caller: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let out = run_chunks_with(2, vec![0usize, 1, 2], |start, chunk| {
            if std::thread::current().id() == caller {
                by_caller[start].fetch_add(1, Ordering::Relaxed);
            }
            chunk[0] * 10
        });
        assert_eq!(out, vec![0, 10, 20]);
        // Chunks 1 and 2 are owned by worker 1's deque; the caller
        // executing either one means a back-steal succeeded.
        if by_caller[1].load(Ordering::Relaxed) + by_caller[2].load(Ordering::Relaxed) > 0 {
            seen.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert!(stats.iterations > 10);
    assert!(
        stolen_schedules.load(Ordering::Relaxed) > 0,
        "no explored schedule exercised the steal path ({} schedules)",
        stats.iterations
    );
}

/// Property 3, race half: with 2 workers over 2 chunks, worker 1's deque
/// holds exactly one chunk — the owner's front-pop and the caller's
/// back-steal race on the *same* packed word for the same chunk. The
/// exhaustive schedule set must contain both outcomes (steal won / owner
/// won), and exactly-once holds in every one of them.
#[test]
fn steal_race_on_last_chunk_explores_both_outcomes() {
    let steal_won = Arc::new(AtomicUsize::new(0));
    let owner_won = Arc::new(AtomicUsize::new(0));
    let (sw, ow) = (Arc::clone(&steal_won), Arc::clone(&owner_won));
    let stats = builder(100_000).check(move || {
        let caller = std::thread::current().id();
        let runs: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let chunk1_by_caller = AtomicUsize::new(0);
        let out = run_chunks_with(2, vec![0usize, 1], |start, chunk| {
            runs[start].fetch_add(1, Ordering::Relaxed);
            if start == 1 && std::thread::current().id() == caller {
                chunk1_by_caller.fetch_add(1, Ordering::Relaxed);
            }
            chunk[0] * 10
        });
        assert_eq!(out, vec![0, 10]);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::Relaxed),
                1,
                "chunk {i} must run exactly once even under the owner/thief race"
            );
        }
        if chunk1_by_caller.load(Ordering::Relaxed) > 0 {
            sw.fetch_add(1, Ordering::Relaxed);
        } else {
            ow.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert!(
        stats.exhausted,
        "2 threads / 2 chunks must be fully enumerable ({} schedules explored)",
        stats.iterations
    );
    assert!(
        steal_won.load(Ordering::Relaxed) > 0,
        "exhaustive exploration never let the thief win the last-chunk race"
    );
    assert!(
        owner_won.load(Ordering::Relaxed) > 0,
        "exhaustive exploration never let the owner win the last-chunk race"
    );
}

/// Property 3 at three threads, bounded: two thieves and an owner racing
/// over a 5-chunk region (deques `[0,1)`, `[1,3)`, `[3,5)`), with model
/// yields inflating worker 1's first chunk so the others go hunting.
#[test]
fn steal_path_three_threads_bounded() {
    let stats = builder(8_192).check(|| {
        let runs: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let out = run_chunks_with(3, (0..5usize).collect(), |start, chunk| {
            if start == 1 {
                loom::thread::yield_now();
                loom::thread::yield_now();
            }
            runs[start].fetch_add(1, Ordering::Relaxed);
            chunk[0] + 100
        });
        assert_eq!(out, vec![100, 101, 102, 103, 104]);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 1, "chunk {i} ran exactly once");
        }
    });
    assert!(stats.iterations > 10);
}

/// Property 2 under uneven per-chunk cost: the *slow* chunk's result must
/// still land first. Work cost is simulated with extra model yields so the
/// scheduler can interleave a slow chunk 0 against fast chunks.
#[test]
fn combine_order_survives_slow_first_chunk() {
    let stats = builder(20_000).check(|| {
        let out = run_chunks_with(2, vec![0usize, 1, 2], |start, chunk| {
            if start == 0 {
                // Extra decision points: everything else finishes first in
                // many explored schedules.
                loom::thread::yield_now();
                loom::thread::yield_now();
            }
            chunk[0] * 7
        });
        assert_eq!(out, vec![0, 7, 14]);
    });
    assert!(stats.iterations > 10);
}

/// Property 4: a nested region inside a worker serializes (the depth guard
/// clamps it to one thread), so it cannot deadlock and its output matches
/// the sequential reference.
#[test]
fn nested_region_serializes_two_threads_exhaustive() {
    let stats = builder(100_000).check(|| {
        let out = run_chunks_with(2, vec![10usize, 20], |_, chunk| {
            let inner = run_chunks_with(2, vec![1usize, 2], |_, c| c[0] * chunk[0]);
            inner.into_iter().sum::<usize>()
        });
        assert_eq!(out, vec![30, 60]);
    });
    assert!(
        stats.exhausted,
        "nested 2-thread config must be fully enumerable ({} schedules)",
        stats.iterations
    );
}

#[test]
fn nested_region_serializes_three_threads() {
    let stats = builder(8_192).check(|| {
        let out = run_chunks_with(3, vec![1usize, 2, 3], |_, chunk| {
            run_chunks_with(3, vec![chunk[0]; 2], |_, c| c[0]).len()
        });
        assert_eq!(out, vec![2, 2, 2]);
    });
    assert!(stats.iterations > 10);
}

/// Property 5: whichever worker hits the panicking chunk — the caller
/// acting as worker zero or a spawned thread — the panic poisons the
/// region and reaches the region's caller in every interleaving.
fn check_panic_propagates(threads: usize, max_iter: usize) -> loom::Stats {
    builder(max_iter).check(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_chunks_with(threads, vec![0usize, 1], |start, _| {
                if start == 1 {
                    panic!("injected chunk failure");
                }
                start
            })
        }));
        let err = result.expect_err("worker panic must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| err.downcast_ref::<String>().map_or("", String::as_str));
        assert!(
            msg.contains("injected chunk failure"),
            "panic payload must be the worker's own, got: {msg:?}"
        );
    })
}

#[test]
fn worker_panic_propagates_two_threads_exhaustive() {
    let stats = check_panic_propagates(2, 100_000);
    assert!(
        stats.exhausted,
        "2-thread panic config must be fully enumerable ({} schedules)",
        stats.iterations
    );
}

#[test]
fn worker_panic_propagates_three_threads() {
    let stats = check_panic_propagates(3, 8_192);
    assert!(stats.iterations > 0);
}

/// Self-test: replace the protocol's CAS claim with the classic broken
/// load-then-store sequence and assert the model checker finds the
/// interleaving where two workers claim the same chunk. If this test ever
/// passes silently, the suite has lost its teeth.
#[test]
fn checker_catches_broken_claim_protocol() {
    use loom::sync::atomic::AtomicUsize as ModelAtomicUsize;
    use loom::sync::Mutex as ModelMutex;

    let result = catch_unwind(AssertUnwindSafe(|| {
        builder(100_000).check(|| {
            let next = ModelAtomicUsize::new(0);
            let cells: Vec<ModelMutex<Option<usize>>> =
                (0..2).map(|c| ModelMutex::new(Some(c))).collect();
            loom::thread::scope(|s| {
                let next = &next;
                let cells = &cells;
                let claim = move || {
                    loop {
                        // BROKEN: non-atomic read-modify-write.
                        let c = next.load(loom::sync::atomic::Ordering::SeqCst);
                        if c >= cells.len() {
                            break;
                        }
                        next.store(c + 1, loom::sync::atomic::Ordering::SeqCst);
                        cells[c]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("chunk claimed twice");
                    }
                };
                s.spawn(claim);
                claim();
            });
        });
    }));
    assert!(
        result.is_err(),
        "the model checker failed to find the double-claim in a racy claim loop"
    );
}

/// Self-test for the deque's *steal* end: an owner front-pop done with a
/// proper CAS racing a thief whose back-steal is the broken
/// load-then-store sequence on the same packed `(lo, hi)` word. The model
/// must find the interleaving where owner and thief both claim the single
/// remaining chunk — proof that the packed-word CAS on the steal side is
/// load-bearing, not ceremony.
#[test]
fn checker_catches_broken_steal_protocol() {
    use loom::sync::atomic::AtomicUsize as ModelAtomicUsize;
    use loom::sync::atomic::Ordering as ModelOrdering;
    use loom::sync::Mutex as ModelMutex;

    // Mirror the protocol's packing: (lo, hi) as lo * PACK + hi.
    const PACK: usize = 33;

    let result = catch_unwind(AssertUnwindSafe(|| {
        builder(100_000).check(|| {
            // One deque holding exactly one chunk: range [0, 1).
            let deque = ModelAtomicUsize::new(1); // pack(0, 1)
            let cell: ModelMutex<Option<usize>> = ModelMutex::new(Some(0));
            loom::thread::scope(|s| {
                let deque = &deque;
                let cell = &cell;
                // Owner: correct CAS front-pop.
                s.spawn(move || {
                    let mut cur = deque.load(ModelOrdering::SeqCst);
                    loop {
                        let (lo, hi) = (cur / PACK, cur % PACK);
                        if lo >= hi {
                            return;
                        }
                        match deque.compare_exchange(
                            cur,
                            (lo + 1) * PACK + hi,
                            ModelOrdering::SeqCst,
                            ModelOrdering::SeqCst,
                        ) {
                            Ok(_) => {
                                cell.lock().unwrap().take().expect("chunk claimed twice");
                                return;
                            }
                            Err(now) => cur = now,
                        }
                    }
                });
                // Thief: BROKEN load-then-store back-steal.
                let cur = deque.load(ModelOrdering::SeqCst);
                let (lo, hi) = (cur / PACK, cur % PACK);
                if lo < hi {
                    deque.store(lo * PACK + (hi - 1), ModelOrdering::SeqCst);
                    cell.lock().unwrap().take().expect("chunk claimed twice");
                }
            });
        });
    }));
    assert!(
        result.is_err(),
        "the model checker failed to find the owner/thief double-claim in a racy steal"
    );
}
