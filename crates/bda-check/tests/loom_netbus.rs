//! Loom interleaving suite for the halo transport's epoch-fence protocol.
//!
//! Requires `--features loom-model`, which rebuilds `bda-shard` with its
//! sync facade backed by the vendored loom model checker — so the code
//! under test is the **exact** `FenceTable` admission/retro-fence logic
//! the socket transport runs in production (`bda_shard::netbus` routes
//! every inbox slot through it), not a transliteration.
//!
//! The protocol properties, from the respawn story in `fence.rs`:
//!
//! 1. **zombie frames are never applied**: when a pre-respawn (zombie)
//!    writer races the respawned sender on the same `(cycle, sender)`
//!    slot, every interleaving leaves the new-epoch payload in the slot —
//!    newer-epoch-wins overwrite plus the CAS-max fence close both orders
//!    of the race;
//! 2. **hello retro-fences the in-flight zombie**: a zombie frame racing
//!    the new incarnation's *hello* (fence ratchet with no payload) is
//!    either rejected at admission or withheld at read — the reader never
//!    sees zombie payload, in any interleaving;
//! 3. **REQ recovery never resurrects a fenced halo**: a replayed zombie
//!    `REQ` reply racing hello + fresh frame can never hand the reader a
//!    payload older than the fence the reader already observed;
//! 4. two broken-protocol self-tests — blind slot overwrite (no
//!    newer-epoch-wins) and fetch without the retro-fence re-check — must
//!    each be *caught* by the checker, evidence the suite has teeth.
//!
//! Two-thread configurations are small enough to *exhaust* within the
//! seeded budget, and the tests assert that; the three-thread REQ-replay
//! configuration is a budget-bounded sample. Instrumentation uses
//! `std::sync` deliberately: model threads are real serialized OS
//! threads, so std atomics behave normally without adding decision points
//! to the explored schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bda_shard::{Admit, FenceTable, SlotGet};

/// Builder with an explicit per-test iteration budget (still overridable
/// through `BDA_LOOM_MAX_ITER`/`BDA_LOOM_SEED` for CI tuning).
fn builder(max_iterations: usize) -> loom::Builder {
    let mut b = loom::Builder::default();
    b.max_iterations = b.max_iterations.min(max_iterations);
    b
}

const CYCLE: u64 = 5;
const SENDER: usize = 1;
const ZOMBIE_EPOCH: u64 = 1;
const FRESH_EPOCH: u64 = 2;
const ZOMBIE_PAYLOAD: u32 = 11;
const FRESH_PAYLOAD: u32 = 22;

/// Property 1: zombie writer vs respawned writer racing on the same slot.
/// Whatever the interleaving, the slot must end holding the fresh payload:
/// if the zombie lands first it is overwritten (equal-or-newer wins); if
/// the fresh frame lands first the zombie is either fence-rejected or
/// refused the overwrite (newer-epoch-wins).
#[test]
fn zombie_frames_never_applied_two_threads_exhaustive() {
    let zombie_rejected = Arc::new(AtomicUsize::new(0));
    let zombie_admitted = Arc::new(AtomicUsize::new(0));
    let (rej, adm) = (Arc::clone(&zombie_rejected), Arc::clone(&zombie_admitted));
    let stats = builder(100_000).check(move || {
        let ft = Arc::new(FenceTable::<u32>::new(2));
        let z = Arc::clone(&ft);
        let zombie =
            loom::thread::spawn(move || z.admit(SENDER, CYCLE, ZOMBIE_EPOCH, ZOMBIE_PAYLOAD));
        ft.admit(SENDER, CYCLE, FRESH_EPOCH, FRESH_PAYLOAD);
        let verdict = zombie.join().unwrap();
        match verdict {
            Admit::Stale { got, fenced } => {
                assert_eq!((got, fenced), (ZOMBIE_EPOCH, FRESH_EPOCH));
                rej.fetch_add(1, Ordering::Relaxed);
            }
            Admit::Accepted => {
                adm.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The invariant: zombie payload is never what the reader gets.
        match ft.fetch(CYCLE, SENDER) {
            SlotGet::Ready { epoch, payload } => {
                assert_eq!(epoch, FRESH_EPOCH, "slot must hold the fresh epoch");
                assert_eq!(payload, FRESH_PAYLOAD, "zombie payload applied");
            }
            other => panic!("fresh frame must be readable, got {other:?}"),
        }
        assert_eq!(ft.fence_of(SENDER), FRESH_EPOCH, "fence must ratchet up");
    });
    assert!(
        stats.exhausted,
        "2-thread zombie race must be fully enumerable ({} schedules explored)",
        stats.iterations
    );
    // Both orderings of the race must appear in the explored set, or the
    // newer-epoch-wins overwrite arm was never actually exercised.
    assert!(
        zombie_rejected.load(Ordering::Relaxed) > 0,
        "no schedule let the fence reject the zombie outright"
    );
    assert!(
        zombie_admitted.load(Ordering::Relaxed) > 0,
        "no schedule let the zombie land first (overwrite arm unexercised)"
    );
}

/// Property 2: a zombie frame racing the respawned sender's *hello* — a
/// fence ratchet with no accompanying payload (the fresh frame has not
/// arrived yet). The reader may see the slot empty or retro-fenced, but
/// never the zombie payload.
#[test]
fn hello_retro_fences_in_flight_zombie_two_threads_exhaustive() {
    let retro_fenced = Arc::new(AtomicUsize::new(0));
    let fence_rejected = Arc::new(AtomicUsize::new(0));
    let (retro, rej) = (Arc::clone(&retro_fenced), Arc::clone(&fence_rejected));
    let stats = builder(100_000).check(move || {
        let ft = Arc::new(FenceTable::<u32>::new(2));
        let z = Arc::clone(&ft);
        let zombie =
            loom::thread::spawn(move || z.admit(SENDER, CYCLE, ZOMBIE_EPOCH, ZOMBIE_PAYLOAD));
        ft.observe(SENDER, FRESH_EPOCH); // hello from the new incarnation
        zombie.join().unwrap();
        assert_eq!(
            ft.fence_of(SENDER),
            FRESH_EPOCH,
            "hello must win the ratchet"
        );
        match ft.fetch(CYCLE, SENDER) {
            SlotGet::Missing => {
                rej.fetch_add(1, Ordering::Relaxed);
            }
            SlotGet::Fenced { got, fenced } => {
                assert_eq!((got, fenced), (ZOMBIE_EPOCH, FRESH_EPOCH));
                retro.fetch_add(1, Ordering::Relaxed);
            }
            SlotGet::Ready { payload, .. } => {
                panic!("zombie payload {payload} leaked past the hello fence");
            }
        }
    });
    assert!(
        stats.exhausted,
        "2-thread hello race must be fully enumerable ({} schedules explored)",
        stats.iterations
    );
    // Both defenses must fire somewhere in the schedule set: arrival-time
    // rejection (zombie after hello) and retro-fencing at read (zombie
    // admitted before hello ratcheted).
    assert!(
        fence_rejected.load(Ordering::Relaxed) > 0,
        "no schedule rejected the zombie at admission"
    );
    assert!(
        retro_fenced.load(Ordering::Relaxed) > 0,
        "no schedule exercised retro-fencing at read"
    );
}

/// Property 3 at three threads, bounded: a zombie REQ replay, the
/// respawned sender (hello then fresh frame), and a concurrent reader.
/// The reader's monotonicity contract: once it has observed fence `f`, any
/// `Ready` it gets is at epoch >= `f`. After the dust settles the slot
/// holds the fresh frame.
#[test]
fn req_replay_never_resurrects_fenced_halo_three_threads() {
    let stats = builder(8_192).check(|| {
        let ft = Arc::new(FenceTable::<u32>::new(2));
        let z = Arc::clone(&ft);
        let f = Arc::clone(&ft);
        // Zombie REQ reply: the dead incarnation's frame replayed late.
        let zombie =
            loom::thread::spawn(move || z.admit(SENDER, CYCLE, ZOMBIE_EPOCH, ZOMBIE_PAYLOAD));
        // Respawned sender: hello, then its own recovery frame.
        let fresh = loom::thread::spawn(move || {
            f.observe(SENDER, FRESH_EPOCH);
            f.admit(SENDER, CYCLE, FRESH_EPOCH, FRESH_PAYLOAD)
        });
        // Reader (this thread): whatever interleaving, a Ready result must
        // never be older than the fence observed *before* the read.
        let fence_seen = ft.fence_of(SENDER);
        if let SlotGet::Ready { epoch, payload } = ft.fetch(CYCLE, SENDER) {
            assert!(
                epoch >= fence_seen,
                "reader got epoch {epoch} after observing fence {fence_seen}"
            );
            if epoch == ZOMBIE_EPOCH {
                assert_eq!(payload, ZOMBIE_PAYLOAD);
            } else {
                assert_eq!(payload, FRESH_PAYLOAD);
            }
        }
        zombie.join().unwrap();
        fresh.join().unwrap();
        // Quiescent state: the replay lost, the recovery frame stands.
        match ft.fetch(CYCLE, SENDER) {
            SlotGet::Ready { epoch, payload } => {
                assert_eq!(epoch, FRESH_EPOCH);
                assert_eq!(
                    payload, FRESH_PAYLOAD,
                    "REQ replay resurrected a fenced halo"
                );
            }
            other => panic!("recovery frame must be readable, got {other:?}"),
        }
    });
    assert!(
        stats.iterations > 10,
        "expected a non-trivial schedule space"
    );
}

/// Self-test: a fence table whose `admit` blindly overwrites the slot
/// (no newer-epoch-wins check). The checker must find the interleaving
/// where the zombie passes the fence *before* the ratchet, then lands
/// *after* the fresh frame — clobbering it. If this test ever passes
/// silently, the suite has lost its teeth on the admission side.
#[test]
fn checker_catches_blind_overwrite_admission() {
    use loom::sync::atomic::AtomicU64 as ModelAtomicU64;
    use loom::sync::atomic::Ordering as ModelOrdering;
    use loom::sync::Mutex as ModelMutex;

    struct BrokenTable {
        fence: ModelAtomicU64,
        slot: ModelMutex<Option<(u64, u32)>>,
    }

    impl BrokenTable {
        fn admit(&self, epoch: u64, payload: u32) {
            // Fence check + ratchet (correct, same CAS-max as production)...
            let mut fenced = self.fence.load(ModelOrdering::SeqCst);
            loop {
                if epoch < fenced {
                    return;
                }
                match self.fence.compare_exchange(
                    fenced,
                    epoch,
                    ModelOrdering::SeqCst,
                    ModelOrdering::SeqCst,
                ) {
                    Ok(_) => break,
                    Err(now) => fenced = now,
                }
            }
            // ...but a BROKEN blind overwrite: no newer-epoch-wins check.
            *self.slot.lock().unwrap() = Some((epoch, payload));
        }
    }

    let result = catch_unwind(AssertUnwindSafe(|| {
        builder(100_000).check(|| {
            let bt = Arc::new(BrokenTable {
                fence: ModelAtomicU64::new(0),
                slot: ModelMutex::new(None),
            });
            let z = Arc::clone(&bt);
            let zombie = loom::thread::spawn(move || z.admit(ZOMBIE_EPOCH, ZOMBIE_PAYLOAD));
            bt.admit(FRESH_EPOCH, FRESH_PAYLOAD);
            zombie.join().unwrap();
            let (epoch, payload) = bt.slot.lock().unwrap().expect("a frame landed");
            // The production invariant — must FAIL for some schedule here.
            assert_eq!(epoch, FRESH_EPOCH, "zombie clobbered the fresh frame");
            assert_eq!(payload, FRESH_PAYLOAD);
        });
    }));
    assert!(
        result.is_err(),
        "the model checker failed to find the zombie-clobber schedule in a blind overwrite"
    );
}

/// Self-test for the read side: a fetch that skips the retro-fence
/// re-check hands the reader zombie payload in the schedule where the
/// zombie was admitted before the hello ratcheted the fence. The checker
/// must find it.
#[test]
fn checker_catches_missing_retro_fence_check() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        builder(100_000).check(|| {
            let ft = Arc::new(FenceTable::<u32>::new(2));
            let z = Arc::clone(&ft);
            let zombie =
                loom::thread::spawn(move || z.admit(SENDER, CYCLE, ZOMBIE_EPOCH, ZOMBIE_PAYLOAD));
            ft.observe(SENDER, FRESH_EPOCH); // hello
            zombie.join().unwrap();
            // BROKEN consumption: trust the slot's mere presence, ignoring
            // the Fenced verdict (what a reader skipping retro-fencing
            // would do). Production `netbus::try_collect` matches on the
            // verdict instead — that match is what this test proves is
            // load-bearing.
            match ft.fetch(CYCLE, SENDER) {
                SlotGet::Missing => {}
                SlotGet::Ready { payload, .. } => {
                    assert_ne!(payload, ZOMBIE_PAYLOAD);
                }
                SlotGet::Fenced { got, .. } => {
                    // The broken reader applies the fenced slot anyway, so
                    // failing on a zombie epoch here is exactly the bug the
                    // checker must surface.
                    assert_ne!(got, ZOMBIE_EPOCH, "reader consumed a fenced zombie slot");
                }
            }
        });
    }));
    assert!(
        result.is_err(),
        "the model checker failed to find the schedule where retro-fencing is load-bearing"
    );
}
