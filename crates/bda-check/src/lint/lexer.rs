//! A masking lexer for Rust source.
//!
//! The lint rules are token-pattern scans, so their one real enemy is text
//! that *looks* like code but is not: comments, string literals, raw
//! strings, char literals. [`project`] returns two same-shape copies of
//! the source (byte-for-byte equal length, newlines preserved):
//!
//! * `code` — comment and literal contents replaced by spaces; rules scan
//!   this so `".unwrap()"` inside a string never matches;
//! * `comments` — the *opposite* projection, only comment text kept; the
//!   allow-marker parser scans this so a string literal mentioning the
//!   marker syntax (the linter's own source does) is not itself a marker.
//!
//! Error messages quote the raw text at the same coordinates.

/// The two projections of one source file. Equal length, equal line
/// structure, both to each other and to the raw source.
pub struct Projection {
    pub code: String,
    pub comments: String,
}

/// Is `b` part of an identifier (so a preceding `r`/`b` is not a raw-string
/// prefix but the tail of a name like `attr`)?
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(c: u8) -> u8 {
    if c == b'\n' {
        b'\n'
    } else {
        b' '
    }
}

/// Split `src` into its code and comment projections.
pub fn project(src: &str) -> Projection {
    let b = src.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(b.len());
    let mut comments: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    // Push one byte as code (comments get a blank).
    macro_rules! as_code {
        ($byte:expr) => {{
            code.push($byte);
            comments.push(blank($byte));
        }};
    }
    // Push one raw byte as comment text (code gets a blank).
    macro_rules! as_comment {
        ($byte:expr) => {{
            code.push(blank($byte));
            comments.push($byte);
        }};
    }
    // Push one literal-content byte: blank in both projections.
    macro_rules! as_literal {
        ($byte:expr) => {{
            code.push(blank($byte));
            comments.push(blank($byte));
        }};
    }
    while i < b.len() {
        let c = b[i];
        let prev_ident = !code.is_empty() && is_ident(code[code.len() - 1]);
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            // Line comment (including doc comments).
            while i < b.len() && b[i] != b'\n' {
                as_comment!(b[i]);
                i += 1;
            }
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            // Block comment; Rust block comments nest.
            let mut depth = 1usize;
            as_comment!(b[i]);
            as_comment!(b[i + 1]);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    as_comment!(b[i]);
                    as_comment!(b[i + 1]);
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    as_comment!(b[i]);
                    as_comment!(b[i + 1]);
                    i += 2;
                } else {
                    as_comment!(b[i]);
                    i += 1;
                }
            }
        } else if !prev_ident && (c == b'r' || c == b'b') && is_raw_start(b, i) {
            // Raw (and raw-byte) string: r"..", r#".."#, br##".."##.
            while b[i] != b'"' {
                as_literal!(b[i]);
                i += 1;
            }
            let hashes = count_hashes_before(b, i);
            as_code!(b'"');
            i += 1;
            while i < b.len() {
                if b[i] == b'"' && closes_raw(b, i, hashes) {
                    as_code!(b'"');
                    i += 1;
                    for _ in 0..hashes {
                        as_literal!(b[i]);
                        i += 1;
                    }
                    break;
                }
                as_literal!(b[i]);
                i += 1;
            }
        } else if c == b'"' || (!prev_ident && c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            // Ordinary (or byte) string literal with escapes.
            if c == b'b' {
                as_literal!(c);
                i += 1;
            }
            as_code!(b'"');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    // Keep a newline visible if this is a line continuation.
                    as_literal!(b[i]);
                    as_literal!(b[i + 1]);
                    i += 2;
                } else if b[i] == b'"' {
                    as_code!(b'"');
                    i += 1;
                    break;
                } else {
                    as_literal!(b[i]);
                    i += 1;
                }
            }
        } else if c == b'\'' || (!prev_ident && c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'') {
            // Char / byte-char literal — or a lifetime, which is left as-is.
            let q = if c == b'b' { i + 1 } else { i };
            if let Some(end) = char_literal_end(b, q) {
                while i <= end {
                    as_literal!(b[i]);
                    i += 1;
                }
            } else {
                as_code!(c);
                i += 1;
            }
        } else {
            as_code!(c);
            i += 1;
        }
    }
    // Multi-byte identifier bytes pass through `as_code!` unchanged, so the
    // buffers stay valid UTF-8; lossy conversion is a belt-and-braces net.
    Projection {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments: String::from_utf8_lossy(&comments).into_owned(),
    }
}

/// Code projection only (comment and literal contents blanked).
pub fn mask(src: &str) -> String {
    project(src).code
}

/// Does `r`/`br` at `i` begin a raw string (`r"`, `r#`, `br"`, `br#`)?
fn is_raw_start(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if b[i] == b'b' {
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Number of `#`s immediately before the opening quote at `i`.
fn count_hashes_before(b: &[u8], i: usize) -> usize {
    let mut n = 0;
    while n < i && b[i - 1 - n] == b'#' {
        n += 1;
    }
    n
}

/// Does the `"` at `i` terminate a raw string with `hashes` trailing `#`s?
fn closes_raw(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| i + k < b.len() && b[i + k] == b'#')
}

/// If the `'` at `q` opens a char literal, return the index of its closing
/// quote; `None` means it is a lifetime marker.
fn char_literal_end(b: &[u8], q: usize) -> Option<usize> {
    let n = b.len();
    if q + 1 >= n {
        return None;
    }
    if b[q + 1] == b'\\' {
        // Escaped char: scan (bounded) for the closing quote.
        let mut j = q + 2;
        while j < n && j < q + 12 {
            if b[j] == b'\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // 'x' — one ASCII or multi-byte char then a quote. A lifetime like
    // 'scope never has a quote within the next few bytes.
    let width = if b[q + 1] < 0x80 {
        1
    } else {
        utf8_width(b[q + 1])
    };
    let j = q + 1 + width;
    if j < n && b[j] == b'\'' {
        Some(j)
    } else {
        None
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Per-line "inside a `#[cfg(test)]` module" flags, computed from the
/// masked source (for reliable brace counting) and the raw source (for
/// attribute text, which masking blanks out).
pub fn test_regions(masked: &str, raw: &str) -> Vec<bool> {
    let m_lines: Vec<&str> = masked.lines().collect();
    let r_lines: Vec<&str> = raw.lines().collect();
    let mut flags = vec![false; m_lines.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_open_depths: Vec<i64> = Vec::new();
    for (idx, mline) in m_lines.iter().enumerate() {
        if r_lines.get(idx).is_some_and(|r| r.contains("#[cfg(test)]")) {
            armed = true;
        }
        flags[idx] = !region_open_depths.is_empty() || armed;
        for ch in mline.chars() {
            match ch {
                '{' => {
                    if armed {
                        region_open_depths.push(depth);
                        armed = false;
                        flags[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_open_depths.last() == Some(&depth) {
                        region_open_depths.pop();
                    }
                }
                // `#[cfg(test)] mod x;` declares an out-of-line module;
                // the file itself is exempted by path, not here.
                ';' => armed = false,
                _ => {}
            }
        }
    }
    flags
}
