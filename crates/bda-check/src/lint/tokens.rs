//! A line-tracking tokenizer over the [lexer](super::lexer)'s code
//! projection.
//!
//! The projection has already erased comment and literal *contents*
//! (string quotes survive, everything between them is spaces), so the
//! token stream here never contains text that merely looks like code.
//! That lets this stage stay small: identifiers, numbers, lifetimes,
//! string markers, delimiters, and single-byte punctuation. Multi-byte
//! operators (`::`, `->`, `=>`) appear as successive punctuation tokens;
//! the [parser](super::parse) recognizes the sequences it cares about.

/// One token of the code projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// `'name` lifetime marker (char literals were erased upstream).
    Lifetime(String),
    /// Numeric literal, suffix included (`1_000u64`, `1.5`). The exponent
    /// sign of `1e-3` tokenizes as a separate `Punct(b'-')`; no rule
    /// interprets numeric values, so that is fine.
    Num(String),
    /// A (content-erased) string literal.
    Str,
    /// Opening delimiter: `(`, `[` or `{`.
    Open(u8),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(u8),
    /// Any other single byte of punctuation.
    Punct(u8),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize a code projection (see the module docs). Byte offsets are not
/// preserved — every consumer works in (token index, line) coordinates.
pub fn tokenize(code: &str) -> Vec<Token> {
    let b = code.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(code[start..i].to_string()),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                // One decimal point, but never the `..` of a range.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1] != b'.' && b[i + 1].is_ascii_digit()
                {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
                toks.push(Token {
                    tok: Tok::Num(code[start..i].to_string()),
                    line,
                });
            }
            b'\'' => {
                // The lexer erased char literals, so a surviving quote is a
                // lifetime marker (or a stray quote we treat as one).
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Lifetime(code[start..i].to_string()),
                    line,
                });
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1; // past the closing quote (or end)
                toks.push(Token {
                    tok: Tok::Str,
                    line: tok_line,
                });
            }
            b'(' | b'[' | b'{' => {
                toks.push(Token {
                    tok: Tok::Open(c),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                toks.push(Token {
                    tok: Tok::Close(c),
                    line,
                });
                i += 1;
            }
            _ => {
                toks.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lexer;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&lexer::mask(src))
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn idents_numbers_and_punct() {
        let t = toks("let x2 = a + 10;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x2".into()),
                Tok::Punct(b'='),
                Tok::Ident("a".into()),
                Tok::Punct(b'+'),
                Tok::Num("10".into()),
                Tok::Punct(b';'),
            ]
        );
    }

    #[test]
    fn floats_vs_ranges() {
        assert_eq!(
            toks("1.5 0..n 2.0e3"),
            vec![
                Tok::Num("1.5".into()),
                Tok::Num("0".into()),
                Tok::Punct(b'.'),
                Tok::Punct(b'.'),
                Tok::Ident("n".into()),
                Tok::Num("2.0e3".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let t = toks("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(t.contains(&Tok::Lifetime("'a".into())));
        // 'x' was erased by the lexer; no stray lifetime or quote appears.
        assert!(!t.contains(&Tok::Lifetime("'x".into())));
    }

    #[test]
    fn strings_collapse_to_markers_and_track_lines() {
        let src = "let s = \"multi\nline\";\nlet t = 1;";
        let tk = tokenize(&lexer::mask(src));
        let str_tok = tk.iter().find(|t| t.tok == Tok::Str).unwrap();
        assert_eq!(str_tok.line, 1);
        let one = tk.iter().find(|t| t.tok == Tok::Num("1".into())).unwrap();
        assert_eq!(one.line, 3);
    }

    #[test]
    fn raw_strings_with_hashes_are_single_markers() {
        let t = toks(r###"let s = r#"has "quotes" and fn f() {}"#; g();"###);
        // Exactly one Str token, and none of the fn/braces inside leaked.
        assert_eq!(t.iter().filter(|t| **t == Tok::Str).count(), 1);
        assert_eq!(
            t.iter().filter(|t| **t == Tok::Ident("fn".into())).count(),
            0
        );
        assert!(t.contains(&Tok::Ident("g".into())));
    }

    #[test]
    fn comments_vanish_entirely() {
        let t = toks("a(); // call b()\n/* c() */ d();");
        assert!(t.contains(&Tok::Ident("a".into())));
        assert!(t.contains(&Tok::Ident("d".into())));
        assert!(!t.contains(&Tok::Ident("b".into())));
        assert!(!t.contains(&Tok::Ident("c".into())));
    }
}
