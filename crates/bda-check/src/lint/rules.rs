//! The deny-by-default rule set.
//!
//! Five rules are token-pattern scans over [masked](super::lexer::mask)
//! source, scoped by file path and by `#[cfg(test)]` regions. Three more —
//! `hot_alloc`, `panic_path`, `unordered_iter` — are parser-backed: the
//! [tokenizer](super::tokens) and [item parser](super::parse) give them
//! function bodies, an impl-qualified item map and a one-level call graph,
//! so they can scope to *designated hot regions* (the [`HOT_ANCHORS`]
//! table plus `// bda-check: hot` markers, propagated one call-graph level
//! into workspace callees) instead of whole files.
//!
//! Suppression is per-site and auditable: an allow marker (`bda-check:`
//! followed by e.g. `allow(unwrap)`, any rule id from [`ALL_RULES`]) in a
//! comment on the offending line, or alone on the line above it. For the
//! parser-backed rules the marker may also sit on (or above) a `fn` line,
//! where it covers that function's whole body — kernels proven in-bounds
//! carry one justified marker instead of dozens. There is no file-level
//! or crate-level off switch — broad exemptions are encoded here, in code
//! review's sight, as path scopes.

use super::{lexer, parse, tokens};
use std::collections::BTreeMap;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (stable; used in `allow(...)`).
    pub rule: &'static str,
    pub message: String,
    /// The raw source line, trimmed, for the report.
    pub snippet: String,
}

pub const RULE_UNWRAP: &str = "unwrap";
pub const RULE_PARTIAL_CMP: &str = "partial_cmp_unwrap";
pub const RULE_LOSSY_CAST: &str = "lossy_cast";
pub const RULE_WALLCLOCK: &str = "wallclock";
pub const RULE_POOL_FACADE: &str = "pool_facade";
pub const RULE_HOT_ALLOC: &str = "hot_alloc";
pub const RULE_PANIC_PATH: &str = "panic_path";
pub const RULE_UNORDERED_ITER: &str = "unordered_iter";

/// All rule ids, for `allow(...)` validation and docs.
pub const ALL_RULES: [&str; 8] = [
    RULE_UNWRAP,
    RULE_PARTIAL_CMP,
    RULE_LOSSY_CAST,
    RULE_WALLCLOCK,
    RULE_POOL_FACADE,
    RULE_HOT_ALLOC,
    RULE_PANIC_PATH,
    RULE_UNORDERED_ITER,
];

/// The designated hot regions: the per-cycle inner loops whose
/// allocation-freedom and panic-freedom the 30-second refresh contract
/// (and PR 9's measured −32% cycle time) depends on. Each entry names a
/// file and the functions in it; `Type::name` entries match an impl's
/// method, bare names match any function with that name in the file. An
/// entry that matches nothing is itself a finding — renames cannot
/// silently un-designate a kernel. Hotness propagates one call-graph
/// level into free-function and `Type::fn` workspace callees (method
/// receivers are not type-resolved; mark those with `// bda-check: hot`).
pub const HOT_ANCHORS: &[(&str, &[&str])] = &[
    (
        "crates/bda-scale/src/microphys.rs",
        &["column_microphysics", "sediment_species"],
    ),
    (
        "crates/bda-scale/src/advect.rs",
        &["scalar_advection_upwind", "momentum_advection"],
    ),
    ("crates/bda-scale/src/dynamics.rs", &["step_dynamics"]),
    (
        "crates/bda-scale/src/turbulence.rs",
        &[
            "horizontal_diffusion",
            "ColumnPbl::step_column",
            "ColumnPbl::diffuse_implicit",
        ],
    ),
    (
        "crates/bda-num/src/tridiag.rs",
        &[
            "solve_thomas",
            "ThomasFactor::factor",
            "ThomasFactor::solve",
            "ThomasFactor::solve_columns",
        ],
    ),
    (
        "crates/bda-num/src/eigen/ql.rs",
        &[
            "QlEigen::tridiagonalize",
            "QlEigen::tqli",
            "QlEigen::decompose_into",
        ],
    ),
    (
        "crates/bda-num/src/eigen/batched.rs",
        &["BatchedEigen::decompose_in_place"],
    ),
    (
        "crates/bda-num/src/matrix.rs",
        &["dot", "dot8", "axpy8", "matmul_into", "matvec_into"],
    ),
    ("crates/bda-letkf/src/driver.rs", &["analyze_region"]),
    (
        "vendor/rayon/src/protocol.rs",
        &[
            "pop_front",
            "steal_back",
            "next_chunk",
            "execute",
            "drain",
            "worker_loop",
        ],
    ),
];

/// Where a file sits in the workspace, as far as rule scoping cares.
struct FileScope {
    /// Library code in `crates/*/src` or the root `src/` — the strict zone.
    workspace_lib: bool,
    /// Any workspace Rust file (library, tests, benches, examples).
    workspace_any: bool,
    /// Test/bench/example/build-script *path* (not `#[cfg(test)]` regions).
    test_path: bool,
    /// Crates where lossy `as` casts are denied: the numeric kernels, plus
    /// the egress codec, the shard halo exchange (a truncated tile
    /// coordinate, strip index or length corrupts a wire format as
    /// silently as a truncated index corrupts a weight), and the backoff
    /// helper whose jitter math crosses float/integer nanoseconds.
    kernel: bool,
    /// `vendor/rayon/src`, where the pool-facade rule applies.
    rayon_src: bool,
    /// A sync facade module — the one allowed home of `std::sync` within
    /// its facade-disciplined tree.
    facade: bool,
    /// The extracted netbus fence state machine: model-checked, so it is
    /// held to the same facade discipline as the pool protocol.
    fence_protocol: bool,
    /// Crates whose library output feeds outcome tables, wire frames,
    /// checkpoints or digests — where hash-container iteration order is a
    /// determinism hazard (`unordered_iter`).
    ordered: bool,
}

fn classify(rel: &str) -> FileScope {
    let test_path = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.ends_with("build.rs");
    let workspace_any = rel.starts_with("crates/")
        || rel.starts_with("src/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/");
    FileScope {
        workspace_lib: workspace_any && !test_path,
        workspace_any,
        test_path,
        kernel: rel.starts_with("crates/bda-num/src/")
            || rel.starts_with("crates/bda-letkf/src/")
            || rel.starts_with("crates/bda-serve/src/")
            || rel.starts_with("crates/bda-shard/src/")
            || rel == "crates/bda-workflow/src/backoff.rs",
        rayon_src: rel.starts_with("vendor/rayon/src/"),
        facade: rel == "vendor/rayon/src/facade.rs" || rel == "crates/bda-shard/src/facade.rs",
        fence_protocol: rel == "crates/bda-shard/src/fence.rs",
        ordered: [
            "crates/bda-io/src/",
            "crates/bda-shard/src/",
            "crates/bda-serve/src/",
            "crates/bda-jitdt/src/",
            "crates/bda-workflow/src/",
            "crates/bda-core/src/",
        ]
        .iter()
        .any(|p| rel.starts_with(p)),
    }
}

/// Parse allow markers out of one line of *comment* text (the comment
/// projection — a string literal spelling out the marker syntax is not a
/// marker). Unknown rule names surface as findings themselves: a typo
/// must not silently disable a rule.
fn parse_allows(raw: &str) -> (Vec<&'static str>, Vec<String>) {
    let mut allowed = Vec::new();
    let mut unknown = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("bda-check: allow(") {
        rest = &rest[pos + "bda-check: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        for name in rest[..close].split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            match ALL_RULES.iter().find(|r| **r == name) {
                Some(r) => allowed.push(*r),
                None => unknown.push(name.to_string()),
            }
        }
        rest = &rest[close..];
    }
    (allowed, unknown)
}

/// Does this comment line carry a `bda-check: hot` marker (and not a
/// longer word like `hot_alloc`)?
fn has_hot_marker(comment: &str) -> bool {
    let mut rest = comment;
    while let Some(pos) = rest.find("bda-check: hot") {
        let after = &rest[pos + "bda-check: hot".len()..];
        match after.as_bytes().first() {
            None => return true,
            Some(b) if !b.is_ascii_alphanumeric() && *b != b'_' => return true,
            _ => {}
        }
        rest = after;
    }
    false
}

/// Scan one masked line for `as <numeric-type>` casts, returning the types.
fn lossy_casts(masked: &str) -> Vec<&'static str> {
    const NUMERIC: [&str; 13] = [
        "f32", "f64", "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
        "u128",
    ];
    let b = masked.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0;
    while i + 2 <= b.len() {
        let Some(pos) = masked[i..].find("as ") else {
            break;
        };
        let at = i + pos;
        i = at + 3;
        // Word boundary on the left: `as` must not be the tail of an
        // identifier (`alias`, `has `).
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let tail = masked[at + 3..].trim_start();
        let word_len = tail
            .bytes()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
            .count();
        let word = &tail[..word_len];
        if let Some(t) = NUMERIC.iter().find(|t| **t == word) {
            hits.push(*t);
        }
    }
    hits
}

/// Find `pat` in `line` at an identifier boundary: the character before a
/// match must not itself be an identifier character, so `vec!` never
/// matches inside `my_vec!` and `assert!` never matches `debug_assert!`.
fn find_word(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(pat) {
        let at = from + pos;
        let bounded = at == 0 || {
            let prev = line.as_bytes()[at - 1];
            !(prev.is_ascii_alphanumeric() || prev == b'_')
        };
        if bounded {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Allocation tokens denied inside hot regions. Leading-dot patterns need
/// no boundary check; the rest go through [`find_word`].
const ALLOC_PATTERNS: &[&str] = &[
    "vec!",
    "format!",
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "String::new",
    "String::from",
    "String::with_capacity",
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    ".collect",
    ".clone()",
];

/// Panic-family macros denied inside hot regions. `debug_assert*` is
/// deliberately absent: debug assertions vanish in release kernels.
const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Iteration adaptors that expose a hash container's nondeterministic
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// One interposed accessor hop the `unordered_iter` receiver tracker sees
/// through (`guard`-producing calls: `inbox.lock().iter()`).
const HOP_METHODS: &[&str] = &["lock", "borrow", "borrow_mut", "read", "write", "get_mut"];

/// Everything pass 1 derives from one file; pass 2 turns it into findings.
struct FileAnalysis {
    rel: String,
    scope: FileScope,
    raw_lines: Vec<String>,
    masked_lines: Vec<String>,
    in_test: Vec<bool>,
    toks: Vec<tokens::Token>,
    index: parse::FileIndex,
    /// Per-line allows (a marker covers its own line and the next).
    allows: Vec<Vec<&'static str>>,
    /// Per-function allows for the parser-backed rules: a marker on (or
    /// directly above) the `fn` line covers the whole body.
    fn_allows: Vec<Vec<&'static str>>,
    /// Functions carrying a `bda-check: hot` marker.
    hot_marked: Vec<bool>,
    /// Findings produced during analysis itself (unknown allow names).
    early_findings: Vec<Finding>,
}

fn analyze_one(rel: &str, src: &str) -> FileAnalysis {
    let scope = classify(rel);
    let proj = lexer::project(src);
    let in_test = lexer::test_regions(&proj.code, src);
    let raw_lines: Vec<String> = src.lines().map(str::to_string).collect();
    let masked_lines: Vec<String> = proj.code.lines().map(str::to_string).collect();
    let comment_lines: Vec<&str> = proj.comments.lines().collect();
    let toks = tokens::tokenize(&proj.code);
    let index = parse::index_file(&toks);

    let mut allows: Vec<Vec<&'static str>> = vec![Vec::new(); raw_lines.len()];
    let mut hot_lines: Vec<bool> = vec![false; raw_lines.len() + 2];
    let mut early_findings = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        let (allowed, unknown) = parse_allows(comment);
        for name in unknown {
            early_findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: RULE_UNWRAP, // reported under a real rule id so it denies
                message: format!(
                    "unknown rule `{name}` in bda-check allow marker (known: {})",
                    ALL_RULES.join(", ")
                ),
                snippet: raw_lines.get(idx).map_or("", |r| r.trim()).to_string(),
            });
        }
        if !allowed.is_empty() {
            allows[idx].extend_from_slice(&allowed);
            if idx + 1 < raw_lines.len() {
                let tail = allowed.clone();
                allows[idx + 1].extend(tail);
            }
        }
        if has_hot_marker(comment) {
            // Covers its own line and the next, like an allow.
            hot_lines[idx] = true;
            hot_lines[idx + 1] = true;
        }
    }

    // Function-level annotations: whatever sits on the `fn` line.
    let mut fn_allows = Vec::with_capacity(index.fns.len());
    let mut hot_marked = Vec::with_capacity(index.fns.len());
    for f in &index.fns {
        let line_idx = f.line - 1;
        fn_allows.push(allows.get(line_idx).cloned().unwrap_or_default());
        hot_marked.push(hot_lines.get(line_idx).copied().unwrap_or(false));
    }

    FileAnalysis {
        rel: rel.to_string(),
        scope,
        raw_lines,
        masked_lines,
        in_test,
        toks,
        index,
        allows,
        fn_allows,
        hot_marked,
        early_findings,
    }
}

/// Why a function is hot — threaded into every finding message so the
/// report explains the designation, not just the violation.
#[derive(Clone)]
enum HotReason {
    Anchor,
    Marker,
    CalledFrom(String),
}

impl HotReason {
    fn describe(&self) -> String {
        match self {
            HotReason::Anchor => "designated in the hot-anchor table".to_string(),
            HotReason::Marker => "marked `bda-check: hot`".to_string(),
            HotReason::CalledFrom(k) => format!("called from hot `{k}`"),
        }
    }
}

/// Compute the workspace hot set: anchor + marker seeds, propagated one
/// call-graph level into free-function and `Type::fn` callees in
/// hot-eligible files (workspace library code and `vendor/rayon/src`).
fn hot_set(
    files: &[FileAnalysis],
    findings: &mut Vec<Finding>,
) -> BTreeMap<(usize, usize), HotReason> {
    let mut hot: BTreeMap<(usize, usize), HotReason> = BTreeMap::new();
    for (path, fn_pats) in HOT_ANCHORS {
        let Some(fi) = files.iter().position(|f| f.rel == *path) else {
            continue;
        };
        for pat in *fn_pats {
            let mut matched = false;
            for (k, f) in files[fi].index.fns.iter().enumerate() {
                let hit = match pat.split_once("::") {
                    Some((q, n)) => f.qual.as_deref() == Some(q) && f.name == n,
                    None => f.name == *pat,
                };
                if hit {
                    hot.entry((fi, k)).or_insert(HotReason::Anchor);
                    matched = true;
                }
            }
            if !matched {
                findings.push(Finding {
                    file: files[fi].rel.clone(),
                    line: 1,
                    rule: RULE_HOT_ALLOC,
                    message: format!(
                        "hot anchor `{pat}` matched no function in this file: the anchor table \
                         (bda-check `rules.rs`) is out of date with a rename or removal"
                    ),
                    snippet: String::new(),
                });
            }
        }
    }
    for (fi, fa) in files.iter().enumerate() {
        for (k, marked) in fa.hot_marked.iter().enumerate() {
            if *marked {
                hot.entry((fi, k)).or_insert(HotReason::Marker);
            }
        }
    }
    // One propagation level, from seeds only.
    let seeds: Vec<(usize, usize)> = hot.keys().cloned().collect();
    for (fi, k) in seeds {
        let caller_key = files[fi].index.fns[k].key();
        for call in &files[fi].index.calls[k] {
            if call.method {
                continue;
            }
            for (tfi, tf) in files.iter().enumerate() {
                if !(tf.scope.workspace_lib || tf.scope.rayon_src) {
                    continue;
                }
                for (tk, tfn) in tf.index.fns.iter().enumerate() {
                    let hit = match &call.qual {
                        Some(q) => {
                            tfn.qual.as_deref() == Some(q.as_str()) && tfn.name == call.callee
                        }
                        None => tfn.qual.is_none() && tfn.name == call.callee,
                    };
                    if hit {
                        hot.entry((tfi, tk))
                            .or_insert_with(|| HotReason::CalledFrom(caller_key.clone()));
                    }
                }
            }
        }
    }
    hot
}

/// Analyze a set of files together: the single entry point behind both
/// [`check_file`] (one file) and the workspace walk in [`super::run`].
/// Hot propagation crosses file boundaries only within the given set.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Finding> {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(rel, src)| analyze_one(rel, src))
        .collect();
    let mut findings = Vec::new();
    for fa in &analyses {
        findings.extend(fa.early_findings.iter().cloned());
    }
    let hot = hot_set(&analyses, &mut findings);

    for (fi, fa) in analyses.iter().enumerate() {
        let hot_fns: Vec<(usize, HotReason)> = hot
            .range((fi, 0)..(fi + 1, 0))
            .map(|((_, k), r)| (*k, r.clone()))
            .collect();
        check_one(fa, &hot_fns, &mut findings);
    }
    findings
}

/// Lint one file's source. `rel` is the workspace-relative path with `/`
/// separators; it drives every scoping decision, so callers (and fixture
/// tests) can lint arbitrary text under any nominal location. Hot
/// propagation is file-local here; the workspace runner propagates across
/// files.
pub fn check_file(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = analyze_files(&[(rel.to_string(), src.to_string())]);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Is the finding at `line` (1-based) suppressed by a function-level
/// allow — a marker on the `fn` line of any function whose span covers it?
fn fn_allowed(fa: &FileAnalysis, line: usize, rule: &'static str) -> bool {
    fa.index
        .fns
        .iter()
        .enumerate()
        .any(|(k, f)| f.line <= line && line <= f.body_lines.1 && fa.fn_allows[k].contains(&rule))
}

fn check_one(fa: &FileAnalysis, hot_fns: &[(usize, HotReason)], findings: &mut Vec<Finding>) {
    let scope = &fa.scope;
    let rel = fa.rel.as_str();

    let push = |findings: &mut Vec<Finding>, idx: usize, rule: &'static str, msg: String| {
        if fa.allows.get(idx).is_some_and(|a| a.contains(&rule)) || fn_allowed(fa, idx + 1, rule) {
            return;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: idx + 1,
            rule,
            message: msg,
            snippet: fa.raw_lines.get(idx).map_or("", |r| r.trim()).to_string(),
        });
    };

    // ------------------------------------------------------------------
    // Line-scan rules (the original lexer-level set).
    // ------------------------------------------------------------------
    for (idx, m) in fa.masked_lines.iter().enumerate() {
        let m = m.as_str();
        let tested = fa.in_test.get(idx).copied().unwrap_or(false);

        // unwrap: no `.unwrap()` / `.expect(` in non-test library code.
        if scope.workspace_lib && !tested && (m.contains(".unwrap()") || m.contains(".expect(")) {
            push(
                findings,
                idx,
                RULE_UNWRAP,
                "`.unwrap()`/`.expect()` in library code: return a typed error or restructure so \
                 the failure is impossible"
                    .to_string(),
            );
        }

        // partial_cmp_unwrap: applies to every workspace file, tests
        // included — `total_cmp` is strictly better wherever floats sort.
        if scope.workspace_any && m.contains("partial_cmp") {
            let next = fa.masked_lines.get(idx + 1).map_or("", |s| s.as_str());
            let unwrapped = |s: &str| s.contains(".unwrap()") || s.contains(".expect(");
            if unwrapped(m) || unwrapped(next) {
                push(
                    findings,
                    idx,
                    RULE_PARTIAL_CMP,
                    "`partial_cmp(..).unwrap()` panics on NaN: use `f64::total_cmp`/`f32::total_cmp`"
                        .to_string(),
                );
            }
        }

        // lossy_cast: numeric kernels must use checked cast helpers. The
        // vendored pool is held to the same bar — its packed deque ranges
        // and chunk arithmetic are exactly the kind of index math a silent
        // truncation corrupts.
        if (scope.kernel || scope.rayon_src) && !scope.test_path && !tested {
            for t in lossy_casts(m) {
                push(
                    findings,
                    idx,
                    RULE_LOSSY_CAST,
                    format!(
                        "`as {t}` in kernel code can silently truncate/round: use \
                         `bda_num::cast` helpers or `From`/`TryFrom`"
                    ),
                );
            }
        }

        // wallclock: deterministic cycle paths must not read real time or
        // OS randomness. Supervisor wall-time telemetry opts in per site.
        if (scope.workspace_lib || scope.rayon_src) && !tested {
            for pat in ["Instant::now", "SystemTime::now", "thread_rng"] {
                if m.contains(pat) {
                    push(
                        findings,
                        idx,
                        RULE_WALLCLOCK,
                        format!(
                            "`{pat}` in library code breaks replay determinism: thread a clock/seed \
                             through, or annotate telemetry sites with an allow marker"
                        ),
                    );
                }
            }
        }

        // pool_facade: inside a facade-disciplined tree (vendor/rayon, and
        // the extracted netbus fence protocol) sync primitives live only
        // in the tree's facade module — that is what guarantees the loom
        // suites exercise the exact production code.
        if (scope.rayon_src || scope.fence_protocol) && !scope.facade && !tested {
            let denied: &[&str] = if scope.fence_protocol {
                &[
                    "std::sync",
                    "core::sync",
                    "parking_lot",
                    "loom::sync",
                    "loom::thread",
                ]
            } else {
                &[
                    "std::sync::atomic",
                    "core::sync::atomic",
                    "std::sync::Mutex",
                    "std::thread::scope",
                    "loom::sync",
                    "loom::thread",
                ]
            };
            for pat in denied {
                if m.contains(pat) {
                    push(
                        findings,
                        idx,
                        RULE_POOL_FACADE,
                        format!(
                            "`{pat}` bypasses the checked sync facade: import it from \
                             `crate::facade` so the loom model sees this operation"
                        ),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Parser-backed rules.
    // ------------------------------------------------------------------
    hot_region_rules(fa, hot_fns, &push, findings);
    if scope.ordered {
        unordered_iter_rule(fa, &push, findings);
    }
}

/// `hot_alloc` + `panic_path` over every hot function body in the file.
fn hot_region_rules(
    fa: &FileAnalysis,
    hot_fns: &[(usize, HotReason)],
    push: &impl Fn(&mut Vec<Finding>, usize, &'static str, String),
    findings: &mut Vec<Finding>,
) {
    for (k, reason) in hot_fns {
        let f = &fa.index.fns[*k];
        let key = f.key();
        let why = reason.describe();
        let (start, end) = f.body_lines;
        for line in start..=end {
            let idx = line - 1;
            if fa.in_test.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let Some(m) = fa.masked_lines.get(idx) else {
                continue;
            };
            for pat in ALLOC_PATTERNS {
                let hit = if pat.starts_with('.') {
                    m.contains(pat)
                } else {
                    find_word(m, pat)
                };
                if hit {
                    push(
                        findings,
                        idx,
                        RULE_HOT_ALLOC,
                        format!(
                            "`{pat}` allocates inside hot region `{key}` ({why}): hoist the \
                             allocation to setup or thread caller scratch through"
                        ),
                    );
                }
            }
            for pat in PANIC_MACROS {
                if find_word(m, pat) {
                    push(
                        findings,
                        idx,
                        RULE_PANIC_PATH,
                        format!(
                            "`{pat}` can panic inside hot region `{key}` ({why}): restructure, \
                             use debug_assert!, or justify with an allow marker"
                        ),
                    );
                }
            }
            for pat in [".unwrap()", ".expect("] {
                if m.contains(pat) {
                    push(
                        findings,
                        idx,
                        RULE_PANIC_PATH,
                        format!(
                            "`{pat}` can panic inside hot region `{key}` ({why}): restructure \
                             or justify with an allow marker"
                        ),
                    );
                }
            }
        }
        // Slice indexing whose bracket carries `+`/`-` arithmetic — the
        // indexing shape that can overflow or run out of bounds. Token
        // scan so `#[attr]` brackets and array literals never match.
        if let Some((lo, hi)) = f.body {
            let mut seen_lines: Vec<usize> = Vec::new();
            let mut j = lo;
            while j < hi {
                let indexing = matches!(fa.toks[j].tok, tokens::Tok::Open(b'['))
                    && j > 0
                    && matches!(
                        fa.toks[j - 1].tok,
                        tokens::Tok::Ident(_) | tokens::Tok::Close(_)
                    );
                if indexing {
                    let close = matching_bracket(&fa.toks, j);
                    let arith = fa.toks[j + 1..close].iter().any(|t| {
                        matches!(t.tok, tokens::Tok::Punct(b'+') | tokens::Tok::Punct(b'-'))
                    });
                    if arith {
                        let line = fa.toks[j].line;
                        let idx = line - 1;
                        let tested = fa.in_test.get(idx).copied().unwrap_or(false);
                        if !tested && !seen_lines.contains(&line) {
                            seen_lines.push(line);
                            push(
                                findings,
                                idx,
                                RULE_PANIC_PATH,
                                format!(
                                    "in-bracket index arithmetic inside hot region `{key}` \
                                     ({why}) can overflow or exceed bounds: hoist the offset \
                                     into a checked variable or justify with an allow marker"
                                ),
                            );
                        }
                    }
                    j = close;
                }
                j += 1;
            }
        }
    }
}

fn matching_bracket(toks: &[tokens::Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            tokens::Tok::Open(_) => depth += 1,
            tokens::Tok::Close(_) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// `unordered_iter`: iteration over a binding or field whose declaration
/// names a hash container, in crates whose output feeds outcome tables,
/// wire frames, checkpoints or digests.
fn unordered_iter_rule(
    fa: &FileAnalysis,
    push: &impl Fn(&mut Vec<Finding>, usize, &'static str, String),
    findings: &mut Vec<Finding>,
) {
    if fa.index.hash_bindings.is_empty() {
        return;
    }
    let toks = &fa.toks;
    let ident_at = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(tokens::Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct_at = |i: usize, c: u8| matches!(toks.get(i).map(|t| &t.tok), Some(tokens::Tok::Punct(p)) if *p == c);
    let open_at = |i: usize, c: u8| matches!(toks.get(i).map(|t| &t.tok), Some(tokens::Tok::Open(p)) if *p == c);
    let close_at = |i: usize, c: u8| matches!(toks.get(i).map(|t| &t.tok), Some(tokens::Tok::Close(p)) if *p == c);

    for (i, t) in toks.iter().enumerate() {
        let tokens::Tok::Ident(name) = &t.tok else {
            continue;
        };
        let Some(binding) = fa.index.hash_bindings.iter().find(|h| &h.name == name) else {
            continue;
        };
        let idx = t.line - 1;
        if fa.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        // `name.iter()` — directly or through one accessor hop
        // (`name.lock().iter()`).
        let mut method_at = None;
        if punct_at(i + 1, b'.') {
            if let Some(m) = ident_at(i + 2) {
                if ITER_METHODS.contains(&m) {
                    method_at = Some(m);
                } else if HOP_METHODS.contains(&m)
                    && open_at(i + 3, b'(')
                    && close_at(i + 4, b')')
                    && punct_at(i + 5, b'.')
                {
                    if let Some(m2) = ident_at(i + 6) {
                        if ITER_METHODS.contains(&m2) {
                            method_at = Some(m2);
                        }
                    }
                }
            }
        }
        // `for x in name` / `for x in &name` / `for x in self.name`.
        let mut j = i;
        let mut for_in = false;
        while j > 0 {
            j -= 1;
            match &toks[j].tok {
                tokens::Tok::Punct(b'&') | tokens::Tok::Punct(b'.') => continue,
                tokens::Tok::Ident(s) if s == "mut" || s == "self" => continue,
                tokens::Tok::Ident(s) if s == "in" => {
                    for_in = true;
                    break;
                }
                _ => break,
            }
        }
        if let Some(m) = method_at {
            push(
                findings,
                idx,
                RULE_UNORDERED_ITER,
                format!(
                    "`.{m}()` on hash container `{name}` (declared line {}) yields \
                     nondeterministic order in code feeding tables/frames/digests: use \
                     BTreeMap/BTreeSet, or collect and sort first",
                    binding.line
                ),
            );
        } else if for_in {
            push(
                findings,
                idx,
                RULE_UNORDERED_ITER,
                format!(
                    "`for .. in` over hash container `{name}` (declared line {}) yields \
                     nondeterministic order in code feeding tables/frames/digests: use \
                     BTreeMap/BTreeSet, or collect and sort first",
                    binding.line
                ),
            );
        }
    }
}
