//! The deny-by-default rule set.
//!
//! Every rule is a token-pattern scan over [masked](super::lexer::mask)
//! source, scoped by file path and by `#[cfg(test)]` regions. Suppression
//! is per-site and auditable: a `bda-check: allow(unwrap)`-style comment
//! on the offending line, or alone on the line above it. There is no
//! file-level or crate-level off switch — broad exemptions are encoded
//! here, in code review's sight, as path scopes.

use super::lexer;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (stable; used in `allow(...)`).
    pub rule: &'static str,
    pub message: String,
    /// The raw source line, trimmed, for the report.
    pub snippet: String,
}

pub const RULE_UNWRAP: &str = "unwrap";
pub const RULE_PARTIAL_CMP: &str = "partial_cmp_unwrap";
pub const RULE_LOSSY_CAST: &str = "lossy_cast";
pub const RULE_WALLCLOCK: &str = "wallclock";
pub const RULE_POOL_FACADE: &str = "pool_facade";

/// All rule ids, for `allow(...)` validation and docs.
pub const ALL_RULES: [&str; 5] = [
    RULE_UNWRAP,
    RULE_PARTIAL_CMP,
    RULE_LOSSY_CAST,
    RULE_WALLCLOCK,
    RULE_POOL_FACADE,
];

/// Where a file sits in the workspace, as far as rule scoping cares.
struct FileScope {
    /// Library code in `crates/*/src` or the root `src/` — the strict zone.
    workspace_lib: bool,
    /// Any workspace Rust file (library, tests, benches, examples).
    workspace_any: bool,
    /// Test/bench/example/build-script *path* (not `#[cfg(test)]` regions).
    test_path: bool,
    /// Crates where lossy `as` casts are denied: the numeric kernels, plus
    /// the egress codec, the shard halo exchange (a truncated tile
    /// coordinate, strip index or length corrupts a wire format as
    /// silently as a truncated index corrupts a weight), and the backoff
    /// helper whose jitter math crosses float/integer nanoseconds.
    kernel: bool,
    /// `vendor/rayon/src`, where the pool-facade rule applies.
    rayon_src: bool,
    /// The facade module itself — the one allowed home of `std::sync`.
    facade: bool,
}

fn classify(rel: &str) -> FileScope {
    let test_path = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.ends_with("build.rs");
    let workspace_any = rel.starts_with("crates/")
        || rel.starts_with("src/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/");
    FileScope {
        workspace_lib: workspace_any && !test_path,
        workspace_any,
        test_path,
        kernel: rel.starts_with("crates/bda-num/src/")
            || rel.starts_with("crates/bda-letkf/src/")
            || rel.starts_with("crates/bda-serve/src/")
            || rel.starts_with("crates/bda-shard/src/")
            || rel == "crates/bda-workflow/src/backoff.rs",
        rayon_src: rel.starts_with("vendor/rayon/src/"),
        facade: rel == "vendor/rayon/src/facade.rs",
    }
}

/// Parse allow markers out of one line of *comment* text (the comment
/// projection — a string literal spelling out the marker syntax is not a
/// marker). Unknown rule names surface as findings themselves: a typo
/// must not silently disable a rule.
fn parse_allows(raw: &str) -> (Vec<&str>, Vec<String>) {
    let mut allowed = Vec::new();
    let mut unknown = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("bda-check: allow(") {
        rest = &rest[pos + "bda-check: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        for name in rest[..close].split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            match ALL_RULES.iter().find(|r| **r == name) {
                Some(r) => allowed.push(*r),
                None => unknown.push(name.to_string()),
            }
        }
        rest = &rest[close..];
    }
    (allowed, unknown)
}

/// Scan one masked line for `as <numeric-type>` casts, returning the types.
fn lossy_casts(masked: &str) -> Vec<&'static str> {
    const NUMERIC: [&str; 13] = [
        "f32", "f64", "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
        "u128",
    ];
    let b = masked.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0;
    while i + 2 <= b.len() {
        let Some(pos) = masked[i..].find("as ") else {
            break;
        };
        let at = i + pos;
        i = at + 3;
        // Word boundary on the left: `as` must not be the tail of an
        // identifier (`alias`, `has `).
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let tail = masked[at + 3..].trim_start();
        let word_len = tail
            .bytes()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
            .count();
        let word = &tail[..word_len];
        if let Some(t) = NUMERIC.iter().find(|t| **t == word) {
            hits.push(*t);
        }
    }
    hits
}

/// Lint one file's source. `rel` is the workspace-relative path with `/`
/// separators; it drives every scoping decision, so callers (and fixture
/// tests) can lint arbitrary text under any nominal location.
pub fn check_file(rel: &str, src: &str) -> Vec<Finding> {
    let scope = classify(rel);
    let proj = lexer::project(src);
    let masked = proj.code.as_str();
    let in_test = lexer::test_regions(masked, src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let comment_lines: Vec<&str> = proj.comments.lines().collect();

    // Allows attach to their own line and the line below, so a bare
    // comment line can annotate the code under it.
    let mut allows: Vec<Vec<&str>> = vec![Vec::new(); raw_lines.len()];
    let mut findings = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        let (allowed, unknown) = parse_allows(comment);
        for name in unknown {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: RULE_UNWRAP, // reported under a real rule id so it denies
                message: format!(
                    "unknown rule `{name}` in bda-check allow marker (known: {})",
                    ALL_RULES.join(", ")
                ),
                snippet: raw_lines.get(idx).map_or("", |r| r.trim()).to_string(),
            });
        }
        if !allowed.is_empty() {
            allows[idx].extend_from_slice(&allowed);
            if idx + 1 < raw_lines.len() {
                let tail = allowed.clone();
                allows[idx + 1].extend(tail);
            }
        }
    }

    let push = |findings: &mut Vec<Finding>, idx: usize, rule: &'static str, msg: String| {
        if allows[idx].contains(&rule) {
            return;
        }
        findings.push(Finding {
            file: rel.to_string(),
            line: idx + 1,
            rule,
            message: msg,
            snippet: raw_lines[idx].trim().to_string(),
        });
    };

    for (idx, m) in masked_lines.iter().enumerate() {
        let tested = in_test.get(idx).copied().unwrap_or(false);

        // unwrap: no `.unwrap()` / `.expect(` in non-test library code.
        if scope.workspace_lib && !tested && (m.contains(".unwrap()") || m.contains(".expect(")) {
            push(
                &mut findings,
                idx,
                RULE_UNWRAP,
                "`.unwrap()`/`.expect()` in library code: return a typed error or restructure so \
                 the failure is impossible"
                    .to_string(),
            );
        }

        // partial_cmp_unwrap: applies to every workspace file, tests
        // included — `total_cmp` is strictly better wherever floats sort.
        if scope.workspace_any && m.contains("partial_cmp") {
            let next = masked_lines.get(idx + 1).copied().unwrap_or("");
            let unwrapped = |s: &str| s.contains(".unwrap()") || s.contains(".expect(");
            if unwrapped(m) || unwrapped(next) {
                push(
                    &mut findings,
                    idx,
                    RULE_PARTIAL_CMP,
                    "`partial_cmp(..).unwrap()` panics on NaN: use `f64::total_cmp`/`f32::total_cmp`"
                        .to_string(),
                );
            }
        }

        // lossy_cast: numeric kernels must use checked cast helpers. The
        // vendored pool is held to the same bar — its packed deque ranges
        // and chunk arithmetic are exactly the kind of index math a silent
        // truncation corrupts.
        if (scope.kernel || scope.rayon_src) && !scope.test_path && !tested {
            for t in lossy_casts(m) {
                push(
                    &mut findings,
                    idx,
                    RULE_LOSSY_CAST,
                    format!(
                        "`as {t}` in kernel code can silently truncate/round: use \
                         `bda_num::cast` helpers or `From`/`TryFrom`"
                    ),
                );
            }
        }

        // wallclock: deterministic cycle paths must not read real time or
        // OS randomness. Supervisor wall-time telemetry opts in per site.
        // Covers the vendored pool too: park/unpark timeouts and spin
        // calibration are the only sanctioned clock reads there, and each
        // carries its own allow marker.
        if (scope.workspace_lib || scope.rayon_src) && !tested {
            for pat in ["Instant::now", "SystemTime::now", "thread_rng"] {
                if m.contains(pat) {
                    push(
                        &mut findings,
                        idx,
                        RULE_WALLCLOCK,
                        format!(
                            "`{pat}` in library code breaks replay determinism: thread a clock/seed \
                             through, or annotate telemetry sites with an allow marker"
                        ),
                    );
                }
            }
        }

        // pool_facade: inside vendor/rayon, sync primitives live only in
        // facade.rs — that is what guarantees the loom suite exercises the
        // exact production protocol.
        if scope.rayon_src && !scope.facade && !tested {
            for pat in [
                "std::sync::atomic",
                "core::sync::atomic",
                "std::sync::Mutex",
                "std::thread::scope",
                "loom::sync",
                "loom::thread",
            ] {
                if m.contains(pat) {
                    push(
                        &mut findings,
                        idx,
                        RULE_POOL_FACADE,
                        format!(
                            "`{pat}` bypasses the checked sync facade: import it from \
                             `crate::facade` so the loom model sees this operation"
                        ),
                    );
                }
            }
        }
    }
    findings
}
