//! Item-level parsing over the token stream: a per-file function map with
//! impl-context qualified names and body spans, the call sites inside each
//! body, and the hash-container bindings the `unordered_iter` rule tracks.
//!
//! This is deliberately *not* a Rust grammar. It recognizes exactly the
//! shapes the rules need — `impl` headers, `fn` items, call expressions,
//! `name: HashMap<..>` / `let name = HashSet::new()` bindings — and it is
//! resilient to everything else: an unrecognized construct contributes no
//! items rather than derailing the scan. Known limits, by design:
//!
//! * method-call receivers are not type-resolved, so `x.foo()` never
//!   propagates hotness (only free-function and `Type::name(..)` calls do);
//! * const-generic brace expressions inside signatures (`Foo<{N + 1}>`)
//!   would confuse body-span detection; the workspace has none;
//! * a hash container reached through more than one interposed call
//!   (`a.b().c().iter()`) is not attributed; one `.lock()`-style hop is.

use super::tokens::{Tok, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type, when the item sits inside one — `Foo` for
    /// `impl<T> Foo<T> { fn name(..) }` and for `impl Trait for Foo`.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body *contents* (between the braces);
    /// `None` for bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// 1-based line range of the body, braces included.
    pub body_lines: (usize, usize),
}

impl FnItem {
    /// `Qual::name` when qualified, bare `name` otherwise — the key the
    /// hot-anchor table and the call-graph resolver match against.
    pub fn key(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub callee: String,
    /// Path segment immediately before the callee (`Vec` in `Vec::new(..)`,
    /// turbofish skipped), when present.
    pub qual: Option<String>,
    /// `x.callee(..)` — receiver type unknown, never used for propagation.
    pub method: bool,
}

/// A binding or field whose declared type / initializer names a hash
/// container (`HashMap`/`HashSet`), plus where it was declared.
#[derive(Debug, Clone)]
pub struct HashBinding {
    pub name: String,
    pub line: usize,
}

/// Everything the rules need from one parsed file.
#[derive(Debug, Default)]
pub struct FileIndex {
    pub fns: Vec<FnItem>,
    /// Call sites per function, parallel to `fns`. Nested `fn` items get
    /// their own entry *and* contribute to their enclosing function —
    /// conservative for hot propagation.
    pub calls: Vec<Vec<CallSite>>,
    pub hash_bindings: Vec<HashBinding>,
}

impl FileIndex {
    /// Index of the innermost function whose body covers `line`, if any.
    /// Innermost = the latest-starting covering span, so a nested item
    /// wins over its enclosure.
    pub fn fn_at_line(&self, line: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.line <= line && line <= f.body_lines.1 {
                let better = match best {
                    None => true,
                    Some(b) => self.fns[b].line <= f.line,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best
    }
}

const KEYWORDS: [&str; 18] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "let", "fn",
    "unsafe", "break", "continue", "where", "impl", "ref",
];

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(toks: &[Token], i: usize, c: u8) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn is_open(toks: &[Token], i: usize, c: u8) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Open(p)) if *p == c)
}

/// Find the matching close delimiter for the open delimiter at `open`,
/// counting all three delimiter kinds together (the projection is
/// balanced in practice; imbalance just ends the span at EOF).
fn matching_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Parse an `impl` header starting at the `impl` token: returns the
/// implemented type's name (the `Foo` of `impl Foo`, `impl Tr for Foo`,
/// `impl<T> Foo<T>`) and the index of the body's `{`, or `None` when the
/// header is not followed by a body before EOF.
fn parse_impl_header(toks: &[Token], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    // Skip `<...>` generic parameters (nested angles balanced; `->` cannot
    // appear in an impl generics list).
    if is_punct(toks, i, b'<') {
        let mut depth = 0i64;
        while i < toks.len() {
            if is_punct(toks, i, b'<') {
                depth += 1;
            } else if is_punct(toks, i, b'>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Collect path segments until `for`, `where` or the body `{`; the
    // last plain segment seen before the body (or before `where`) is the
    // type name, and a `for` resets the collection (trait impl).
    let mut name: Option<String> = None;
    let mut angle = 0i64;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(s) if angle == 0 => {
                if s == "for" {
                    name = None;
                } else if s == "where" {
                    break;
                } else {
                    name = Some(s.clone());
                }
            }
            Tok::Punct(b'<') => angle += 1,
            Tok::Punct(b'>') => angle -= 1,
            Tok::Open(b'{') if angle <= 0 => {
                return name.map(|n| (n, i));
            }
            Tok::Punct(b';') => return None, // e.g. nothing parseable
            _ => {}
        }
        i += 1;
    }
    // `where` clause: scan on to the body brace at delimiter depth 0.
    let mut depth = 0i64;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Open(b'{') if depth == 0 => return name.map(|n| (n, i)),
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Build the [`FileIndex`] for one tokenized file.
pub fn index_file(toks: &[Token]) -> FileIndex {
    let mut out = FileIndex::default();
    // (close_token_index, type_name) for every impl body we are inside of.
    let mut impl_stack: Vec<(usize, String)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(end, _)) = impl_stack.last() {
            if i > end {
                impl_stack.pop();
            } else {
                break;
            }
        }
        match ident(toks, i) {
            Some("impl") => {
                if let Some((name, body_open)) = parse_impl_header(toks, i) {
                    let close = matching_close(toks, body_open);
                    impl_stack.push((close, name));
                    i = body_open + 1;
                    continue;
                }
            }
            Some("fn") => {
                if let Some(item) = parse_fn(toks, i, impl_stack.last().map(|(_, n)| n.clone())) {
                    out.fns.push(item);
                }
            }
            Some("HashMap") | Some("HashSet") => {
                if let Some(b) = hash_binding_for(toks, i) {
                    if !out.hash_bindings.iter().any(|h| h.name == b.name) {
                        out.hash_bindings.push(b);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Call sites per fn body. Bodies of nested items overlap their
    // enclosure; each fn simply scans its own span.
    for f in &out.fns {
        let mut calls = Vec::new();
        if let Some((lo, hi)) = f.body {
            let mut j = lo;
            while j < hi {
                if let Some(site) = call_at(toks, j) {
                    calls.push(site);
                }
                j += 1;
            }
        }
        out.calls.push(calls);
    }
    out
}

/// Parse the `fn` item whose `fn` keyword sits at `at`.
fn parse_fn(toks: &[Token], at: usize, qual: Option<String>) -> Option<FnItem> {
    let name = ident(toks, at + 1)?.to_string();
    if KEYWORDS.contains(&name.as_str()) {
        return None;
    }
    let line = toks[at].line;
    // Scan for the body `{` at delimiter depth 0 (generics are angle
    // brackets, parameters/returns only nest (), [] and <>); a `;` first
    // means a bodiless declaration.
    let mut depth = 0i64;
    let mut j = at + 2;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct(b';') if depth == 0 => {
                return Some(FnItem {
                    name,
                    qual,
                    line,
                    body: None,
                    body_lines: (line, toks[j].line),
                });
            }
            Tok::Open(b'{') if depth == 0 => {
                let close = matching_close(toks, j);
                return Some(FnItem {
                    name,
                    qual,
                    line,
                    body: Some((j + 1, close)),
                    body_lines: (line, toks[close].line),
                });
            }
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    None
}

/// If the token at `at` is the name of a call expression (`name(..)`,
/// `Type::name(..)`, `x.name(..)`), describe it. Macro bangs (`name!(..)`)
/// are *not* calls — the alloc rule scans them textually.
fn call_at(toks: &[Token], at: usize) -> Option<CallSite> {
    let name = ident(toks, at)?;
    if KEYWORDS.contains(&name) {
        return None;
    }
    if !is_open(toks, at + 1, b'(') {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if at >= 1 && ident(toks, at - 1) == Some("fn") {
        return None;
    }
    let method = at >= 1 && is_punct(toks, at - 1, b'.');
    let qual = if method { None } else { qual_before(toks, at) };
    Some(CallSite {
        callee: name.to_string(),
        qual,
        method,
    })
}

/// The path segment before `::name` at `at`, skipping one turbofish:
/// `Vec::new` → `Vec`; `Workspace::<T>::new` → `Workspace`.
fn qual_before(toks: &[Token], at: usize) -> Option<String> {
    if at < 3 || !is_punct(toks, at - 1, b':') || !is_punct(toks, at - 2, b':') {
        return None;
    }
    let mut j = at - 3;
    if is_punct(toks, j, b'>') {
        // Walk back over the balanced `<...>` of a turbofish.
        let mut depth = 0i64;
        loop {
            if is_punct(toks, j, b'>') {
                depth += 1;
            } else if is_punct(toks, j, b'<') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        // Skip an optional `::` before the turbofish.
        if j >= 2 && is_punct(toks, j - 1, b':') && is_punct(toks, j - 2, b':') {
            j -= 2;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    ident(toks, j).map(|s| s.to_string())
}

/// Walk back from a `HashMap`/`HashSet` token to the binding or field it
/// types: `name: ..HashMap<..>..`, `let name = HashMap::new()`,
/// `name = HashSet::with_capacity(..)`. Bounded lookback; gives up at
/// statement boundaries it cannot attribute.
fn hash_binding_for(toks: &[Token], at: usize) -> Option<HashBinding> {
    let line = toks[at].line;
    let lo = at.saturating_sub(32);
    let mut j = at;
    while j > lo {
        j -= 1;
        match &toks[j].tok {
            Tok::Ident(s) if s == "let" => {
                // `let [mut] name ... HashMap`
                let mut k = j + 1;
                if ident(toks, k) == Some("mut") {
                    k += 1;
                }
                return ident(toks, k).map(|n| HashBinding {
                    name: n.to_string(),
                    line,
                });
            }
            Tok::Ident(_) if is_punct(toks, j + 1, b':') && !is_punct(toks, j + 2, b':') => {
                // `name: ...HashMap...` — field or parameter declaration.
                return ident(toks, j).map(|n| HashBinding {
                    name: n.to_string(),
                    line,
                });
            }
            Tok::Ident(_) if is_punct(toks, j + 1, b'=') && !is_punct(toks, j + 2, b'=') => {
                // `name = HashMap::...` re-assignment.
                return ident(toks, j).map(|n| HashBinding {
                    name: n.to_string(),
                    line,
                });
            }
            Tok::Punct(b';') | Tok::Open(b'{') | Tok::Close(b'}') => return None,
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{lexer, tokens};

    fn index(src: &str) -> FileIndex {
        index_file(&tokens::tokenize(&lexer::mask(src)))
    }

    #[test]
    fn free_fn_and_impl_fn_get_keys() {
        let idx = index(
            "pub fn alpha(x: usize) -> usize { x }\n\
             impl<T: Clone> Widget<T> {\n    pub fn beta(&self) {}\n}\n\
             impl Display for Widget<u8> {\n    fn fmt(&self) {}\n}\n",
        );
        let keys: Vec<String> = idx.fns.iter().map(|f| f.key()).collect();
        assert_eq!(keys, vec!["alpha", "Widget::beta", "Widget::fmt"]);
    }

    #[test]
    fn body_line_spans_cover_multiline_bodies() {
        let idx = index("fn f() {\n    let a = 1;\n    g(a);\n}\nfn h() {}\n");
        assert_eq!(idx.fns[0].body_lines, (1, 4));
        assert_eq!(idx.fn_at_line(3), Some(0));
        assert_eq!(idx.fn_at_line(5), Some(1));
        assert_eq!(idx.fn_at_line(40), None);
    }

    #[test]
    fn nested_fn_is_innermost_at_its_lines() {
        let idx = index("fn outer() {\n    fn inner() {\n        q();\n    }\n    inner();\n}\n");
        let inner = idx.fn_at_line(3).unwrap();
        assert_eq!(idx.fns[inner].name, "inner");
        let outer = idx.fn_at_line(5).unwrap();
        assert_eq!(idx.fns[outer].name, "outer");
    }

    #[test]
    fn call_sites_distinguish_free_path_and_method() {
        let idx = index(
            "fn f() {\n    helper(1);\n    Vec::with_capacity(4);\n    \
             Workspace::<T>::new(9);\n    x.method(2);\n    if cond(3) {}\n}\n",
        );
        let calls = &idx.calls[0];
        let find = |n: &str| calls.iter().find(|c| c.callee == n).unwrap();
        assert!(find("helper").qual.is_none() && !find("helper").method);
        assert_eq!(find("with_capacity").qual.as_deref(), Some("Vec"));
        assert_eq!(find("new").qual.as_deref(), Some("Workspace"));
        assert!(find("method").method);
        assert!(find("cond").qual.is_none());
        // `if` itself is not a call.
        assert!(!calls.iter().any(|c| c.callee == "if"));
    }

    #[test]
    fn bodiless_trait_methods_have_no_body() {
        let idx = index("trait T {\n    fn req(&self) -> usize;\n    fn prov(&self) {}\n}\n");
        assert!(idx.fns[0].body.is_none());
        assert!(idx.fns[1].body.is_some());
    }

    #[test]
    fn hash_bindings_from_let_field_and_assign() {
        let idx = index(
            "struct S {\n    inbox: Mutex<HashMap<(u64, usize), Slot>>,\n}\n\
             fn f() {\n    let mut seen = HashSet::new();\n    seen = HashSet::with_capacity(2);\n}\n",
        );
        let names: Vec<&str> = idx.hash_bindings.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["inbox", "seen"]);
    }

    #[test]
    fn pathological_generics_do_not_derail_fn_bodies() {
        let idx = index(
            "pub fn gen<T: Into<Vec<Box<dyn Fn(usize) -> Result<T, E>>>>, const N: usize>(\n\
             \tx: [T; N],\n) -> impl Iterator<Item = T>\nwhere\n    T: Clone,\n{\n    inner()\n}\n",
        );
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "gen");
        assert!(idx.fns[0].body.is_some());
        assert_eq!(idx.calls[0][0].callee, "inner");
    }

    #[test]
    fn raw_strings_and_macros_do_not_create_phantom_items() {
        let idx = index(
            "fn real() {\n    let s = r#\"fn fake() { HashMap::new() }\"#;\n    \
             println!(\"fn also_fake() {{}}\");\n    let _ = s;\n}\n",
        );
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "real");
        assert!(idx.hash_bindings.is_empty());
    }
}
