//! `bda-check lint`: the workspace invariant analyzer.
//!
//! A hand-rolled pipeline (no rustc, no syn — the container is offline):
//! the [`lexer`] erases comments and literal contents, the [`tokens`]
//! stage turns the projection into a line-tracking token stream, and
//! [`parse`] builds a per-file item map (functions with impl qualifiers
//! and body spans) plus a one-level call graph and hash-container binding
//! table. [`rules`] runs the deny-by-default rule set over all of it in
//! two passes: first every file is indexed and the workspace hot set is
//! computed (anchors + markers + one propagation level), then each file
//! is checked. See `DESIGN.md` §10 for the rationale behind each rule.

pub mod lexer;
pub mod parse;
pub mod rules;
pub mod tokens;

pub use rules::{check_file, Finding};

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a workspace lint run.
#[derive(Debug)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report. Deterministic: findings are sorted by
    /// (path, line, rule) regardless of scan order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            let _ = writeln!(out, "    {}", f.snippet);
        }
        let _ = writeln!(
            out,
            "bda-check lint: {} finding(s) in {} file(s) scanned",
            self.findings.len(),
            self.files_scanned
        );
        out
    }

    /// Machine-readable report for the CI artifact. Hand-rolled JSON (the
    /// linter deliberately has no serde dependency); same deterministic
    /// ordering as [`Report::render`].
    pub fn render_json(&self) -> String {
        fn esc(s: &str, out: &mut String) {
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
        }
        let mut out = String::from("{\n  \"files_scanned\": ");
        let _ = write!(out, "{}", self.files_scanned);
        let _ = write!(out, ",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"file\": \"");
            esc(&f.file, &mut out);
            let _ = write!(out, "\", \"line\": {}, \"rule\": \"", f.line);
            esc(f.rule, &mut out);
            out.push_str("\", \"message\": \"");
            esc(&f.message, &mut out);
            out.push_str("\", \"snippet\": \"");
            esc(&f.snippet, &mut out);
            out.push_str("\"}");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Directories never descended into. `fixtures` holds intentional
/// violations for the linter's own tests.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`). Scans the workspace source trees and
/// `vendor/rayon/`; other vendor stand-ins are outside the rule set by
/// design (see DESIGN.md §10).
pub fn run(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for tree in [
        "src",
        "crates",
        "examples",
        "tests",
        "benches",
        "vendor/rayon",
    ] {
        let dir = root.join(tree);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    // Two passes under the hood: every file is read and indexed first so
    // hot-region propagation can cross file (and crate) boundaries, then
    // the rules run per file.
    let mut inputs = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        inputs.push((rel, src));
    }
    let mut findings = rules::analyze_files(&inputs);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        files_scanned: files.len(),
        findings,
    })
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
