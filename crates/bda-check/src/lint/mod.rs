//! `bda-check lint`: the workspace invariant linter.
//!
//! A hand-rolled token scanner (no rustc, no syn — the container is
//! offline) that enforces the workspace's determinism and robustness
//! invariants as deny-by-default rules. See [`rules`] for the rule set
//! and the inline per-site suppression syntax, and `DESIGN.md` §10 for
//! the rationale behind each rule.

pub mod lexer;
pub mod rules;

pub use rules::{check_file, Finding};

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a workspace lint run.
#[derive(Debug)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report. Deterministic: findings are sorted by
    /// (path, line, rule) regardless of scan order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            let _ = writeln!(out, "    {}", f.snippet);
        }
        let _ = writeln!(
            out,
            "bda-check lint: {} finding(s) in {} file(s) scanned",
            self.findings.len(),
            self.files_scanned
        );
        out
    }
}

/// Directories never descended into. `fixtures` holds intentional
/// violations for the linter's own tests.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`). Scans the workspace source trees and
/// `vendor/rayon/`; other vendor stand-ins are outside the rule set by
/// design (see DESIGN.md §10).
pub fn run(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for tree in [
        "src",
        "crates",
        "examples",
        "tests",
        "benches",
        "vendor/rayon",
    ] {
        let dir = root.join(tree);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        findings.extend(rules::check_file(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        files_scanned: files.len(),
        findings,
    })
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
