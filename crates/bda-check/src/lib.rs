//! `bda-check` — the workspace's verification toolbox.
//!
//! Two halves, one contract:
//!
//! * [`lint`] — a deny-by-default invariant linter (`cargo run -p
//!   bda-check -- lint`) enforcing the rules in `DESIGN.md` §10: no
//!   panicking shortcuts in library code, no NaN-hostile float ordering,
//!   no lossy casts in numeric kernels, no wall-clock or OS randomness in
//!   deterministic cycle paths, and no sync primitives in `vendor/rayon`
//!   outside its checked facade.
//! * the loom interleaving suite (`tests/loom_pool.rs`, behind the
//!   `loom-model` feature) — runs the *actual* pool protocol from
//!   `vendor/rayon` under the vendored loom model checker, exploring
//!   bounded thread interleavings to prove the claims the linter can only
//!   protect syntactically: every chunk claimed exactly once, ascending
//!   combine order, nested-region serialization, panic propagation.

pub mod lint;
