//! CLI for the workspace invariant linter: `cargo run -p bda-check -- lint`.
//!
//! Exit codes: 0 clean, 1 findings (deny-by-default), 2 usage or I/O
//! error. CI runs this in the `static-analysis` job and fails on non-zero.

use std::path::PathBuf;
use std::process::ExitCode;

use bda_check::lint;

const USAGE: &str = "\
bda-check — workspace invariant linter

USAGE:
    cargo run -p bda-check -- lint [--root <dir>] [--json]

COMMANDS:
    lint    Scan src/, crates/ and vendor/rayon/ for rule violations.

OPTIONS:
    --root <dir>    Workspace root (default: nearest ancestor of the
                    current directory whose Cargo.toml has [workspace]).
    --json          Emit the machine-readable report (CI artifact format)
                    instead of the human-readable one.

RULES (suppress per-site with `// bda-check: allow(rule_id)`; the three
parser-backed rules also honor a marker on a `fn` line, covering its body):
    unwrap              no .unwrap()/.expect() in non-test library code
    partial_cmp_unwrap  no partial_cmp(..).unwrap(); use total_cmp
    lossy_cast          no lossy `as` casts in the bda-num/bda-letkf
                        kernels or the bda-serve/bda-shard wire codecs
    wallclock           no Instant::now/SystemTime::now/thread_rng in
                        deterministic cycle paths
    pool_facade         sync primitives only via the local facade module
                        (vendor/rayon, bda-shard fence protocol)
    hot_alloc           no vec!/Vec::new/collect/clone/Box::new/format!/...
                        inside designated hot regions (anchor table +
                        `// bda-check: hot` markers, propagated one
                        call-graph level into workspace callees)
    panic_path          no panic-family macros, unwrap/expect, or
                        in-bracket index arithmetic inside hot regions
    unordered_iter      no HashMap/HashSet iteration in crates feeding
                        outcome tables, wire frames, checkpoints, digests
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut command: Option<&str> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" if command.is_none() => command = Some("lint"),
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" | "help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("lint") {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match lint::run(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: lint walk failed under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
