//! Network link model for the Saitama → Kobe SINET path.

use serde::{Deserialize, Serialize};

/// A stochastic wide-area link model.
///
/// SINET provides a 400 Gbps backbone (paper §6.2), but a single TCP file
/// transfer sees far less; the paper reports ~100 MB in ~3 s, i.e. an
/// effective ~280 Mbps for this flow, which is what `sinet_bda2021`
/// calibrates to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Effective sustained throughput for one transfer, bits/s.
    pub effective_bandwidth_bps: f64,
    /// One-way latency, s (Saitama–Kobe over SINET).
    pub latency_s: f64,
    /// Multiplicative throughput jitter (std-dev fraction of chunk time).
    pub jitter_frac: f64,
    /// Probability that a given chunk stalls (congestion, server hiccup).
    pub stall_probability: f64,
    /// Mean stall duration, s (exponentially distributed).
    pub stall_mean_s: f64,
}

impl LinkModel {
    /// The SINET path as the BDA campaign experienced it.
    pub fn sinet_bda2021() -> Self {
        Self {
            effective_bandwidth_bps: 280e6,
            latency_s: 0.012,
            jitter_frac: 0.15,
            stall_probability: 2e-4,
            stall_mean_s: 8.0,
        }
    }

    /// A degraded link for fail-safe testing: frequent stalls.
    pub fn degraded() -> Self {
        Self {
            stall_probability: 0.05,
            stall_mean_s: 15.0,
            ..Self::sinet_bda2021()
        }
    }

    /// Ideal transfer time for `bytes` with no jitter or stalls.
    pub fn ideal_seconds(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.effective_bandwidth_bps
    }

    pub fn validate(&self) {
        assert!(self.effective_bandwidth_bps > 0.0);
        assert!(self.latency_s >= 0.0);
        assert!((0.0..1.0).contains(&self.stall_probability));
        assert!(self.jitter_frac >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinet_moves_100mb_in_about_3_seconds() {
        let link = LinkModel::sinet_bda2021();
        let t = link.ideal_seconds(100 * 1024 * 1024);
        assert!((2.5..3.5).contains(&t), "100 MB in {t:.2} s");
        link.validate();
    }

    #[test]
    fn ideal_time_scales_linearly() {
        let link = LinkModel::sinet_bda2021();
        let t1 = link.ideal_seconds(10 * 1024 * 1024) - link.latency_s;
        let t2 = link.ideal_seconds(20 * 1024 * 1024) - link.latency_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let link = LinkModel::sinet_bda2021();
        assert_eq!(link.ideal_seconds(0), link.latency_s);
    }

    #[test]
    fn degraded_link_stalls_more() {
        assert!(
            LinkModel::degraded().stall_probability > LinkModel::sinet_bda2021().stall_probability
        );
    }
}
