//! A real in-process byte pipe with integrity checking.
//!
//! The live end-to-end pipeline example moves encoded PAWR volumes between
//! the "radar" thread and the "assimilation" thread through this pipe —
//! chunked like the real JIT-DT stream, with a length/checksum trailer that
//! the receiver verifies before handing the volume to the LETKF.

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// FNV-1a payload checksum (the workspace-shared implementation in
/// [`bda_num::hash`] — the same polynomial as the PAWR codec trailer).
///
/// Re-exported here so pipeline supervisors can checksum a volume at scan
/// time and verify it end to end — the pipe's own trailer only covers the
/// transfer hop, not corruption introduced before the send.
pub use bda_num::fnv1a;

/// Frames flowing through the pipe.
enum Frame {
    Header { total_len: u64, checksum: u64 },
    Chunk(Bytes),
    End,
}

/// Sending half.
pub struct PipeSender {
    tx: Sender<Frame>,
    chunk_bytes: usize,
}

/// Receiving half.
pub struct PipeReceiver {
    rx: Receiver<Frame>,
}

/// Errors on the receiving side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeError {
    Disconnected,
    ProtocolViolation,
    LengthMismatch {
        expected: u64,
        got: u64,
    },
    ChecksumMismatch,
    /// The stall watchdog fired: no frame arrived within the timeout.
    Stalled,
}

impl std::fmt::Display for PipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipeError::Disconnected => write!(f, "pipe disconnected"),
            PipeError::ProtocolViolation => write!(f, "frame out of order"),
            PipeError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            PipeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            PipeError::Stalled => write!(f, "transfer stalled past the watchdog timeout"),
        }
    }
}

impl std::error::Error for PipeError {}

/// Create a pipe with the given in-flight chunk capacity.
pub fn pipe(chunk_bytes: usize, capacity: usize) -> (PipeSender, PipeReceiver) {
    let (tx, rx) = bounded(capacity);
    (
        PipeSender {
            tx,
            chunk_bytes: chunk_bytes.max(1),
        },
        PipeReceiver { rx },
    )
}

impl PipeSender {
    /// Send one complete volume. Blocks when the pipe is full (natural
    /// back-pressure, like the real TCP stream).
    pub fn send(&self, data: Bytes) -> Result<(), PipeError> {
        let header = Frame::Header {
            total_len: data.len() as u64,
            checksum: fnv1a(&data),
        };
        self.tx.send(header).map_err(|_| PipeError::Disconnected)?;
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + self.chunk_bytes).min(data.len());
            self.tx
                .send(Frame::Chunk(data.slice(offset..end)))
                .map_err(|_| PipeError::Disconnected)?;
            offset = end;
        }
        self.tx
            .send(Frame::End)
            .map_err(|_| PipeError::Disconnected)
    }
}

impl PipeReceiver {
    /// Receive one complete volume, verifying length and checksum.
    pub fn recv(&self) -> Result<Bytes, PipeError> {
        let (total_len, checksum) = match self.rx.recv() {
            Ok(Frame::Header {
                total_len,
                checksum,
            }) => (total_len, checksum),
            Ok(_) => return Err(PipeError::ProtocolViolation),
            Err(_) => return Err(PipeError::Disconnected),
        };
        let mut buf = BytesMut::with_capacity(total_len as usize);
        loop {
            match self.rx.recv() {
                Ok(Frame::Chunk(c)) => buf.extend_from_slice(&c),
                Ok(Frame::End) => break,
                Ok(Frame::Header { .. }) => return Err(PipeError::ProtocolViolation),
                Err(_) => return Err(PipeError::Disconnected),
            }
        }
        if buf.len() as u64 != total_len {
            return Err(PipeError::LengthMismatch {
                expected: total_len,
                got: buf.len() as u64,
            });
        }
        let data = buf.freeze();
        if fnv1a(&data) != checksum {
            return Err(PipeError::ChecksumMismatch);
        }
        Ok(data)
    }

    /// Receive one complete volume under a live stall watchdog: if the
    /// stream goes quiet for longer than `timeout` — before the header or
    /// mid-volume between chunks — the call gives up with
    /// [`PipeError::Stalled`] instead of blocking forever. This is the
    /// JIT-DT behaviour on Fugaku: a transfer daemon that stops making
    /// progress is declared dead and restarted rather than waited on.
    ///
    /// The timeout is per-frame (a watchdog on *progress*), not a bound on
    /// total volume duration, so a slow-but-moving large volume completes.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Bytes, PipeError> {
        let wait = || -> Result<Frame, PipeError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                RecvTimeoutError::Timeout => PipeError::Stalled,
                RecvTimeoutError::Disconnected => PipeError::Disconnected,
            })
        };
        let (total_len, checksum) = match wait()? {
            Frame::Header {
                total_len,
                checksum,
            } => (total_len, checksum),
            _ => return Err(PipeError::ProtocolViolation),
        };
        let mut buf = BytesMut::with_capacity(total_len as usize);
        loop {
            match wait()? {
                Frame::Chunk(c) => buf.extend_from_slice(&c),
                Frame::End => break,
                Frame::Header { .. } => return Err(PipeError::ProtocolViolation),
            }
        }
        if buf.len() as u64 != total_len {
            return Err(PipeError::LengthMismatch {
                expected: total_len,
                got: buf.len() as u64,
            });
        }
        let data = buf.freeze();
        if fnv1a(&data) != checksum {
            return Err(PipeError::ChecksumMismatch);
        }
        Ok(data)
    }

    /// Non-blocking variant: `Ok(None)` when no volume has started arriving.
    pub fn try_recv(&self) -> Result<Option<Bytes>, PipeError> {
        match self.rx.try_recv() {
            Ok(Frame::Header {
                total_len,
                checksum,
            }) => {
                // Header seen: block for the rest (it is in flight).
                let mut buf = BytesMut::with_capacity(total_len as usize);
                loop {
                    match self.rx.recv() {
                        Ok(Frame::Chunk(c)) => buf.extend_from_slice(&c),
                        Ok(Frame::End) => break,
                        Ok(Frame::Header { .. }) => return Err(PipeError::ProtocolViolation),
                        Err(_) => return Err(PipeError::Disconnected),
                    }
                }
                if buf.len() as u64 != total_len {
                    return Err(PipeError::LengthMismatch {
                        expected: total_len,
                        got: buf.len() as u64,
                    });
                }
                let data = buf.freeze();
                if fnv1a(&data) != checksum {
                    return Err(PipeError::ChecksumMismatch);
                }
                Ok(Some(data))
            }
            Ok(_) => Err(PipeError::ProtocolViolation),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(PipeError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_message() {
        let (tx, rx) = pipe(16, 64);
        tx.send(Bytes::from_static(b"hello volume")).unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(&got[..], b"hello volume");
    }

    #[test]
    fn roundtrip_large_message_across_threads() {
        let (tx, rx) = pipe(4096, 8);
        let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let payload = Bytes::from(data.clone());
        let handle = std::thread::spawn(move || tx.send(payload).unwrap());
        let got = rx.recv().unwrap();
        handle.join().unwrap();
        assert_eq!(got.len(), data.len());
        assert_eq!(&got[..100], &data[..100]);
        assert_eq!(&got[got.len() - 100..], &data[data.len() - 100..]);
    }

    #[test]
    fn multiple_volumes_in_order() {
        let (tx, rx) = pipe(8, 64);
        tx.send(Bytes::from_static(b"scan-1")).unwrap();
        tx.send(Bytes::from_static(b"scan-2")).unwrap();
        assert_eq!(&rx.recv().unwrap()[..], b"scan-1");
        assert_eq!(&rx.recv().unwrap()[..], b"scan-2");
    }

    #[test]
    fn disconnected_sender_yields_error() {
        let (tx, rx) = pipe(8, 8);
        drop(tx);
        assert_eq!(rx.recv().unwrap_err(), PipeError::Disconnected);
    }

    #[test]
    fn try_recv_empty_then_full() {
        let (tx, rx) = pipe(8, 64);
        assert_eq!(rx.try_recv().unwrap(), None);
        tx.send(Bytes::from_static(b"late scan")).unwrap();
        let got = rx.try_recv().unwrap().expect("volume available");
        assert_eq!(&got[..], b"late scan");
    }

    #[test]
    fn recv_timeout_returns_stalled_when_nothing_arrives() {
        let (tx, rx) = pipe(8, 8);
        let t0 = std::time::Instant::now();
        let err = rx.recv_timeout(Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, PipeError::Stalled);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        drop(tx);
    }

    #[test]
    fn recv_timeout_delivers_volume_that_arrives_in_time() {
        let (tx, rx) = pipe(8, 64);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(Bytes::from_static(b"late but alive")).unwrap();
        });
        let got = rx.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(&got[..], b"late but alive");
        handle.join().unwrap();
    }

    #[test]
    fn recv_timeout_watches_progress_not_total_duration() {
        // Each chunk arrives within the watchdog window, but the whole
        // volume takes longer than one window: the watchdog must not fire.
        let (tx, rx) = pipe(4, 1);
        let handle = std::thread::spawn(move || {
            // capacity 1 forces the sender to trickle frames as the
            // receiver drains them; add pacing so the stream is slow.
            tx.send(Bytes::from(vec![7u8; 64])).unwrap();
        });
        let got = rx.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(got.len(), 64);
        handle.join().unwrap();
    }

    #[test]
    fn recv_timeout_disconnected_sender() {
        let (tx, rx) = pipe(8, 8);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)).unwrap_err(),
            PipeError::Disconnected
        );
    }

    #[test]
    fn public_checksum_matches_pipe_trailer_discipline() {
        // fnv1a is exposed so supervisors can checksum at scan time; it must
        // agree with itself across call sites and differ on corruption.
        let payload = b"volume payload".to_vec();
        let good = fnv1a(&payload);
        let mut bad = payload.clone();
        bad[3] ^= 0x40;
        assert_ne!(good, fnv1a(&bad));
        assert_eq!(good, fnv1a(&payload));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (tx, rx) = pipe(8, 8);
        tx.send(Bytes::new()).unwrap();
        assert_eq!(rx.recv().unwrap().len(), 0);
    }
}
