//! A real in-process byte pipe with integrity checking.
//!
//! The live end-to-end pipeline example moves encoded PAWR volumes between
//! the "radar" thread and the "assimilation" thread through this pipe —
//! chunked like the real JIT-DT stream, with a length/checksum trailer that
//! the receiver verifies before handing the volume to the LETKF.

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};

/// FNV-1a (same polynomial as the PAWR codec trailer).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Frames flowing through the pipe.
enum Frame {
    Header { total_len: u64, checksum: u64 },
    Chunk(Bytes),
    End,
}

/// Sending half.
pub struct PipeSender {
    tx: Sender<Frame>,
    chunk_bytes: usize,
}

/// Receiving half.
pub struct PipeReceiver {
    rx: Receiver<Frame>,
}

/// Errors on the receiving side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeError {
    Disconnected,
    ProtocolViolation,
    LengthMismatch { expected: u64, got: u64 },
    ChecksumMismatch,
}

impl std::fmt::Display for PipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipeError::Disconnected => write!(f, "pipe disconnected"),
            PipeError::ProtocolViolation => write!(f, "frame out of order"),
            PipeError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            PipeError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for PipeError {}

/// Create a pipe with the given in-flight chunk capacity.
pub fn pipe(chunk_bytes: usize, capacity: usize) -> (PipeSender, PipeReceiver) {
    let (tx, rx) = bounded(capacity);
    (
        PipeSender {
            tx,
            chunk_bytes: chunk_bytes.max(1),
        },
        PipeReceiver { rx },
    )
}

impl PipeSender {
    /// Send one complete volume. Blocks when the pipe is full (natural
    /// back-pressure, like the real TCP stream).
    pub fn send(&self, data: Bytes) -> Result<(), PipeError> {
        let header = Frame::Header {
            total_len: data.len() as u64,
            checksum: fnv1a(&data),
        };
        self.tx.send(header).map_err(|_| PipeError::Disconnected)?;
        let mut offset = 0;
        while offset < data.len() {
            let end = (offset + self.chunk_bytes).min(data.len());
            self.tx
                .send(Frame::Chunk(data.slice(offset..end)))
                .map_err(|_| PipeError::Disconnected)?;
            offset = end;
        }
        self.tx.send(Frame::End).map_err(|_| PipeError::Disconnected)
    }
}

impl PipeReceiver {
    /// Receive one complete volume, verifying length and checksum.
    pub fn recv(&self) -> Result<Bytes, PipeError> {
        let (total_len, checksum) = match self.rx.recv() {
            Ok(Frame::Header {
                total_len,
                checksum,
            }) => (total_len, checksum),
            Ok(_) => return Err(PipeError::ProtocolViolation),
            Err(_) => return Err(PipeError::Disconnected),
        };
        let mut buf = BytesMut::with_capacity(total_len as usize);
        loop {
            match self.rx.recv() {
                Ok(Frame::Chunk(c)) => buf.extend_from_slice(&c),
                Ok(Frame::End) => break,
                Ok(Frame::Header { .. }) => return Err(PipeError::ProtocolViolation),
                Err(_) => return Err(PipeError::Disconnected),
            }
        }
        if buf.len() as u64 != total_len {
            return Err(PipeError::LengthMismatch {
                expected: total_len,
                got: buf.len() as u64,
            });
        }
        let data = buf.freeze();
        if fnv1a(&data) != checksum {
            return Err(PipeError::ChecksumMismatch);
        }
        Ok(data)
    }

    /// Non-blocking variant: `Ok(None)` when no volume has started arriving.
    pub fn try_recv(&self) -> Result<Option<Bytes>, PipeError> {
        match self.rx.try_recv() {
            Ok(Frame::Header {
                total_len,
                checksum,
            }) => {
                // Header seen: block for the rest (it is in flight).
                let mut buf = BytesMut::with_capacity(total_len as usize);
                loop {
                    match self.rx.recv() {
                        Ok(Frame::Chunk(c)) => buf.extend_from_slice(&c),
                        Ok(Frame::End) => break,
                        Ok(Frame::Header { .. }) => return Err(PipeError::ProtocolViolation),
                        Err(_) => return Err(PipeError::Disconnected),
                    }
                }
                if buf.len() as u64 != total_len {
                    return Err(PipeError::LengthMismatch {
                        expected: total_len,
                        got: buf.len() as u64,
                    });
                }
                let data = buf.freeze();
                if fnv1a(&data) != checksum {
                    return Err(PipeError::ChecksumMismatch);
                }
                Ok(Some(data))
            }
            Ok(_) => Err(PipeError::ProtocolViolation),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(PipeError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_message() {
        let (tx, rx) = pipe(16, 64);
        tx.send(Bytes::from_static(b"hello volume")).unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(&got[..], b"hello volume");
    }

    #[test]
    fn roundtrip_large_message_across_threads() {
        let (tx, rx) = pipe(4096, 8);
        let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let payload = Bytes::from(data.clone());
        let handle = std::thread::spawn(move || tx.send(payload).unwrap());
        let got = rx.recv().unwrap();
        handle.join().unwrap();
        assert_eq!(got.len(), data.len());
        assert_eq!(&got[..100], &data[..100]);
        assert_eq!(&got[got.len() - 100..], &data[data.len() - 100..]);
    }

    #[test]
    fn multiple_volumes_in_order() {
        let (tx, rx) = pipe(8, 64);
        tx.send(Bytes::from_static(b"scan-1")).unwrap();
        tx.send(Bytes::from_static(b"scan-2")).unwrap();
        assert_eq!(&rx.recv().unwrap()[..], b"scan-1");
        assert_eq!(&rx.recv().unwrap()[..], b"scan-2");
    }

    #[test]
    fn disconnected_sender_yields_error() {
        let (tx, rx) = pipe(8, 8);
        drop(tx);
        assert_eq!(rx.recv().unwrap_err(), PipeError::Disconnected);
    }

    #[test]
    fn try_recv_empty_then_full() {
        let (tx, rx) = pipe(8, 64);
        assert_eq!(rx.try_recv().unwrap(), None);
        tx.send(Bytes::from_static(b"late scan")).unwrap();
        let got = rx.try_recv().unwrap().expect("volume available");
        assert_eq!(&got[..], b"late scan");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (tx, rx) = pipe(8, 8);
        tx.send(Bytes::new()).unwrap();
        assert_eq!(rx.recv().unwrap().len(), 0);
    }
}
