//! Chunked transfer with stall watchdog and automatic restart.

use crate::link::LinkModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// JIT-DT transfer engine (simulated time).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JitDt {
    pub link: LinkModel,
    /// Transfer chunk size, bytes.
    pub chunk_bytes: usize,
    /// Watchdog: if no chunk completes for this long, restart the transfer
    /// (the paper's "JIT-DT is restarted automatically when necessary").
    pub stall_timeout_s: f64,
    /// Give up after this many restarts (the workflow marks the cycle as an
    /// outage, a gray band in Fig. 5).
    pub max_restarts: usize,
}

impl JitDt {
    pub fn bda2021() -> Self {
        Self {
            link: LinkModel::sinet_bda2021(),
            chunk_bytes: 4 * 1024 * 1024,
            stall_timeout_s: 5.0,
            max_restarts: 3,
        }
    }

    /// Simulate one file transfer. Deterministic in `seed`.
    pub fn transfer(&self, bytes: usize, seed: u64) -> TransferOutcome {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_chunks = bytes.div_ceil(self.chunk_bytes).max(1);
        let chunk_time =
            (self.chunk_bytes.min(bytes).max(1) as f64 * 8.0) / self.link.effective_bandwidth_bps;

        let mut elapsed = 0.0;
        let mut restarts = 0;
        let mut stalls = 0;

        'attempt: loop {
            let mut attempt_time = self.link.latency_s;
            for _ in 0..n_chunks {
                // Jittered per-chunk service time.
                let jitter: f64 = 1.0 + self.link.jitter_frac * standard_normal(&mut rng);
                let mut t = chunk_time * jitter.max(0.1);
                if rng.gen::<f64>() < self.link.stall_probability {
                    stalls += 1;
                    let stall = -self.link.stall_mean_s * (1.0 - rng.gen::<f64>()).ln();
                    if stall > self.stall_timeout_s {
                        // Watchdog fires: abandon this attempt and restart.
                        elapsed += attempt_time + self.stall_timeout_s;
                        restarts += 1;
                        if restarts > self.max_restarts {
                            return TransferOutcome {
                                bytes,
                                duration_s: elapsed,
                                restarts,
                                stalls,
                                completed: false,
                            };
                        }
                        continue 'attempt;
                    }
                    t += stall;
                }
                attempt_time += t;
            }
            elapsed += attempt_time;
            return TransferOutcome {
                bytes,
                duration_s: elapsed,
                restarts,
                stalls,
                completed: true,
            };
        }
    }
}

/// Box–Muller standard normal from a uniform RNG.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Result of one transfer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferOutcome {
    pub bytes: usize,
    /// Total wall-clock including restarts, s.
    pub duration_s: f64,
    pub restarts: usize,
    pub stalls: usize,
    /// False if the watchdog gave up (outage).
    pub completed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_megabytes_takes_about_three_seconds() {
        let jit = JitDt::bda2021();
        let mut total = 0.0;
        let n = 50;
        for seed in 0..n {
            let out = jit.transfer(100 * 1024 * 1024, seed);
            assert!(out.completed);
            total += out.duration_s;
        }
        let mean = total / n as f64;
        assert!(
            (2.0..4.5).contains(&mean),
            "mean transfer time {mean:.2} s, paper says ~3 s"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let jit = JitDt::bda2021();
        let a = jit.transfer(50 * 1024 * 1024, 9);
        let b = jit.transfer(50 * 1024 * 1024, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn small_files_are_fast() {
        let jit = JitDt::bda2021();
        let out = jit.transfer(1024, 1);
        assert!(out.completed);
        assert!(out.duration_s < 0.5);
    }

    #[test]
    fn degraded_link_triggers_restarts() {
        let mut jit = JitDt::bda2021();
        jit.link = crate::link::LinkModel::degraded();
        jit.stall_timeout_s = 2.0;
        let mut any_restart = false;
        let mut any_failure = false;
        for seed in 0..200 {
            let out = jit.transfer(100 * 1024 * 1024, seed);
            if out.restarts > 0 {
                any_restart = true;
            }
            if !out.completed {
                any_failure = true;
                assert!(out.restarts > jit.max_restarts);
            }
        }
        assert!(any_restart, "watchdog never fired on a degraded link");
        // Failures are possible but stalls must at least occur.
        let _ = any_failure;
    }

    #[test]
    fn failed_transfer_reports_not_completed() {
        let mut jit = JitDt::bda2021();
        jit.link.stall_probability = 0.9;
        jit.link.stall_mean_s = 100.0;
        jit.stall_timeout_s = 1.0;
        jit.max_restarts = 1;
        let out = jit.transfer(100 * 1024 * 1024, 3);
        assert!(!out.completed);
        assert!(out.duration_s > 0.0);
    }

    #[test]
    fn restart_time_is_accounted() {
        // A transfer with restarts must take longer than the ideal time.
        let mut jit = JitDt::bda2021();
        jit.link = crate::link::LinkModel::degraded();
        jit.stall_timeout_s = 2.0;
        for seed in 0..200 {
            let out = jit.transfer(100 * 1024 * 1024, seed);
            if out.completed && out.restarts > 0 {
                assert!(out.duration_s > jit.link.ideal_seconds(out.bytes));
                return;
            }
        }
        panic!("no completed-with-restart sample found");
    }
}
