//! # bda-jitdt — Just-In-Time Data Transfer analogue
//!
//! JIT-DT (Ishikawa 2020) is the dedicated transfer layer that moved each
//! ~100 MB MP-PAWR volume from Saitama University to the SCALE-LETKF
//! processes on Fugaku over SINET in ~3 seconds, with automatic monitoring
//! and restart on abnormal delays (paper §5).
//!
//! This crate reproduces the three observable behaviours:
//!
//! * [`link::LinkModel`] — a bandwidth/latency/jitter/stall model of the
//!   SINET path, calibrated so a 100 MB volume takes ~3 s.
//! * [`transfer::JitDt`] — chunked transfer with a stall watchdog and
//!   automatic restart (the fail-safe of §5), producing per-transfer timing
//!   used by the workflow's time-to-solution accounting.
//! * [`watcher::FileWatcher`] — new-file detection, the trigger mechanism
//!   ("JIT-DT monitors the new data file creation and transfers it
//!   immediately").
//! * [`pipe`] — a real in-process byte pipe (crossbeam channel) used
//!   by the live end-to-end pipeline example to actually move encoded scan
//!   volumes between threads with integrity checking.
//! * [`sequence`] — sequence-number + scan-timestamp framing on top of the
//!   pipe, so receivers detect duplicates, reordering, stale scans, and
//!   mid-stream truncation as typed outcomes instead of trusting arrival
//!   order.

pub mod link;
pub mod pipe;
pub mod sequence;
pub mod stats;
pub mod transfer;
pub mod watcher;

/// The byte-buffer type flowing through [`pipe`] — re-exported so pipeline
/// code can name it without depending on the `bytes` crate directly.
pub use bytes::Bytes;
pub use link::LinkModel;
pub use sequence::{
    sequenced_pipe, DeliveryDrop, DeliveryError, SeqClass, SeqTracker, SequencedReceiver,
    SequencedSender, SequencedVolume,
};
pub use stats::TransferStats;
pub use transfer::{JitDt, TransferOutcome};
pub use watcher::FileWatcher;
