//! New-file detection — the JIT-DT trigger.
//!
//! "As soon as the MP-PAWR completes a 3-D volume scan ... a data file is
//! created in a server at Saitama University. JIT-DT monitors the new data
//! file creation and transfers it immediately" (paper §5). This watcher
//! polls a directory and reports files it has not seen before, ignoring
//! in-progress files marked with a temporary suffix.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directory watcher with seen-file tracking.
///
/// The seen set is a `BTreeSet`: today it is only probed by key, but
/// `bda-jitdt` feeds transfer logs and sequence decisions, and an ordered
/// set keeps any future iteration (diagnostics, pruning sweeps)
/// deterministic by construction — the `unordered_iter` lint denies hash
/// iteration in this crate.
pub struct FileWatcher {
    dir: PathBuf,
    seen: BTreeSet<PathBuf>,
    /// Suffix marking in-progress writes (skipped until renamed away).
    pub tmp_suffix: String,
}

impl FileWatcher {
    /// Watch `dir`. Existing files are treated as already seen, so only
    /// files created after construction are reported.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let mut w = Self {
            dir,
            seen: BTreeSet::new(),
            tmp_suffix: ".part".to_string(),
        };
        for f in w.list_files()? {
            w.seen.insert(f);
        }
        Ok(w)
    }

    fn list_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Poll once: returns newly completed files in sorted order.
    pub fn poll(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let mut new_files = Vec::new();
        for f in self.list_files()? {
            if f.to_string_lossy().ends_with(&self.tmp_suffix) {
                continue;
            }
            if self.seen.insert(f.clone()) {
                new_files.push(f);
            }
        }
        Ok(new_files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bda_jitdt_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn detects_only_new_files() {
        let dir = tempdir("new");
        fs::write(dir.join("old.dat"), b"x").unwrap();
        let mut w = FileWatcher::new(&dir).unwrap();
        assert!(w.poll().unwrap().is_empty());
        fs::write(dir.join("scan_001.dat"), b"abc").unwrap();
        let found = w.poll().unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].ends_with("scan_001.dat"));
        // Not reported twice.
        assert!(w.poll().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_progress_files_are_skipped_until_renamed() {
        let dir = tempdir("part");
        let mut w = FileWatcher::new(&dir).unwrap();
        fs::write(dir.join("scan_002.dat.part"), b"partial").unwrap();
        assert!(w.poll().unwrap().is_empty());
        fs::rename(dir.join("scan_002.dat.part"), dir.join("scan_002.dat")).unwrap();
        let found = w.poll().unwrap();
        assert_eq!(found.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_new_files_reported_sorted() {
        let dir = tempdir("multi");
        let mut w = FileWatcher::new(&dir).unwrap();
        fs::write(dir.join("b.dat"), b"2").unwrap();
        fs::write(dir.join("a.dat"), b"1").unwrap();
        let found = w.poll().unwrap();
        assert_eq!(found.len(), 2);
        assert!(found[0].ends_with("a.dat"));
        assert!(found[1].ends_with("b.dat"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(FileWatcher::new("/definitely/not/a/dir").is_err());
    }
}
