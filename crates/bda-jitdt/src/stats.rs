//! Transfer statistics — the operational view of JIT-DT health.
//!
//! The campaign monitored transfer activity to trigger the fail-safe
//! restarts; this aggregator provides the same view: throughput, latency
//! percentiles, restart and failure rates over a window of transfers.

use crate::transfer::TransferOutcome;
use serde::{Deserialize, Serialize};

/// Aggregated statistics over a sequence of transfers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransferStats {
    durations: Vec<f64>,
    bytes_total: u64,
    restarts: u64,
    stalls: u64,
    failures: u64,
}

impl TransferStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, outcome: &TransferOutcome) {
        if outcome.completed {
            self.durations.push(outcome.duration_s);
            self.bytes_total += outcome.bytes as u64;
        } else {
            self.failures += 1;
        }
        self.restarts += outcome.restarts as u64;
        self.stalls += outcome.stalls as u64;
    }

    pub fn completed(&self) -> usize {
        self.durations.len()
    }

    pub fn failures(&self) -> u64 {
        self.failures
    }

    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Mean transfer duration, s (completed transfers only).
    pub fn mean_duration(&self) -> f64 {
        if self.durations.is_empty() {
            return 0.0;
        }
        self.durations.iter().sum::<f64>() / self.durations.len() as f64
    }

    /// Duration percentile (0..=100) over completed transfers.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=100.0).contains(&q));
        if self.durations.is_empty() {
            return 0.0;
        }
        let mut sorted = self.durations.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pos = q / 100.0 * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let w = pos - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        }
    }

    /// Aggregate throughput over completed transfers, bits/s.
    pub fn mean_throughput_bps(&self) -> f64 {
        let total_time: f64 = self.durations.iter().sum();
        if total_time <= 0.0 {
            return 0.0;
        }
        self.bytes_total as f64 * 8.0 / total_time
    }

    /// One-line operational summary.
    pub fn summary(&self) -> String {
        format!(
            "{} transfers, mean {:.2} s, p95 {:.2} s, {:.0} Mbps, {} restarts, {} failures",
            self.completed(),
            self.mean_duration(),
            self.percentile(95.0),
            self.mean_throughput_bps() / 1e6,
            self.restarts,
            self.failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JitDt;

    #[test]
    fn aggregates_a_campaign_of_transfers() {
        let jit = JitDt::bda2021();
        let mut stats = TransferStats::new();
        for seed in 0..100 {
            let out = jit.transfer(100 * 1024 * 1024, seed);
            stats.record(&out);
        }
        assert_eq!(stats.completed() as u64 + stats.failures(), 100);
        // Mean ~3 s, p95 within a factor of two of the mean.
        assert!((2.0..4.5).contains(&stats.mean_duration()));
        assert!(stats.percentile(95.0) < 2.0 * stats.mean_duration() + 2.0);
        // Effective throughput in the hundreds of Mbps.
        let mbps = stats.mean_throughput_bps() / 1e6;
        assert!((150.0..400.0).contains(&mbps), "throughput {mbps:.0} Mbps");
    }

    #[test]
    fn percentiles_ordered() {
        let jit = JitDt::bda2021();
        let mut stats = TransferStats::new();
        for seed in 0..50 {
            stats.record(&jit.transfer(50 * 1024 * 1024, seed));
        }
        assert!(stats.percentile(50.0) <= stats.percentile(95.0));
        assert!(stats.percentile(0.0) <= stats.percentile(50.0));
    }

    #[test]
    fn failures_counted_separately() {
        let mut stats = TransferStats::new();
        stats.record(&TransferOutcome {
            bytes: 100,
            duration_s: 9.0,
            restarts: 4,
            stalls: 4,
            completed: false,
        });
        stats.record(&TransferOutcome {
            bytes: 100,
            duration_s: 1.0,
            restarts: 0,
            stalls: 0,
            completed: true,
        });
        assert_eq!(stats.completed(), 1);
        assert_eq!(stats.failures(), 1);
        assert_eq!(stats.restarts(), 4);
        assert_eq!(stats.mean_duration(), 1.0);
    }

    #[test]
    fn empty_stats_are_quiet() {
        let stats = TransferStats::new();
        assert_eq!(stats.mean_duration(), 0.0);
        assert_eq!(stats.percentile(95.0), 0.0);
        assert_eq!(stats.mean_throughput_bps(), 0.0);
        assert!(stats.summary().contains("0 transfers"));
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let jit = JitDt::bda2021();
        let mut stats = TransferStats::new();
        for seed in 0..10 {
            stats.record(&jit.transfer(10 * 1024 * 1024, seed));
        }
        let s = stats.summary();
        assert!(s.contains("10 transfers"));
        assert!(s.contains("Mbps"));
    }
}
