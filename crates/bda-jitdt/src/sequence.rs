//! Sequenced volume delivery over the JIT-DT pipe.
//!
//! The raw [`pipe`](crate::pipe) moves opaque byte volumes with per-hop
//! integrity checking, but it cannot tell the receiver *which* volume it is
//! holding. On a 30-second cadence that matters: a transfer daemon restart
//! can replay a volume (duplicate), a slow hop can deliver scans out of
//! order, and a backlog can deliver a scan so old that assimilating it
//! would move the analysis backwards. This layer prefixes every volume with
//! a sequence number and the scan timestamp, so the receiver can classify
//! each arrival with a typed [`DeliveryError`] instead of trusting arrival
//! order:
//!
//! * **duplicates** (a sequence number seen before) are dropped;
//! * **reordering** (older than the newest delivered) is dropped —
//!   newest-scan-wins, consistent with the supervisor's deadline policy;
//! * **stale scans** (older than a configurable horizon relative to the
//!   receiver's clock) are rejected with the measured age;
//! * **mid-stream truncation** keeps its own variant instead of folding
//!   into a generic pipe error.

use crate::pipe::{PipeError, PipeReceiver, PipeSender};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::time::Duration;

/// Bytes of sequencing prefix per volume: sequence number + scan time.
pub const SEQ_PREFIX_BYTES: usize = 8 + 8;

/// One sequenced volume as the receiver accepted it.
#[derive(Clone, Debug, PartialEq)]
pub struct SequencedVolume {
    pub seq: u64,
    /// Scan completion time (`T_obs`), seconds on the campaign clock.
    pub scan_time: f64,
    pub payload: Bytes,
}

/// A volume the receiver classified and dropped without delivering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeliveryDrop {
    /// Same sequence number as the newest delivered volume: a replay.
    Duplicate { seq: u64 },
    /// Older than the newest delivered volume: newest-scan-wins.
    OutOfOrder { seq: u64, newest: u64 },
}

impl std::fmt::Display for DeliveryDrop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeliveryDrop::Duplicate { seq } => write!(f, "dropped duplicate seq {seq}"),
            DeliveryDrop::OutOfOrder { seq, newest } => {
                write!(f, "dropped out-of-order seq {seq} (newest {newest})")
            }
        }
    }
}

/// Typed receive outcome for everything that is not a clean delivery.
#[derive(Clone, Debug, PartialEq)]
pub enum DeliveryError {
    /// See [`DeliveryDrop::Duplicate`].
    Duplicate { seq: u64 },
    /// See [`DeliveryDrop::OutOfOrder`].
    OutOfOrder { seq: u64, newest: u64 },
    /// Scan older than the configured horizon at receive time.
    Stale {
        seq: u64,
        age_s: f64,
        horizon_s: f64,
    },
    /// The volume arrived shorter than its framing declared.
    Truncated { expected: u64, got: u64 },
    /// The per-hop checksum failed: bytes were damaged in transit.
    Corrupt,
    /// Shorter than the sequencing prefix, or a non-finite scan time.
    Malformed,
    /// Structural pipe failure (disconnect, framing, stall watchdog).
    Pipe(PipeError),
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeliveryError::Duplicate { seq } => write!(f, "duplicate volume seq {seq}"),
            DeliveryError::OutOfOrder { seq, newest } => {
                write!(f, "out-of-order volume seq {seq} (newest {newest})")
            }
            DeliveryError::Stale {
                seq,
                age_s,
                horizon_s,
            } => write!(
                f,
                "stale scan seq {seq}: {age_s:.1}s old > {horizon_s:.1}s horizon"
            ),
            DeliveryError::Truncated { expected, got } => {
                write!(f, "volume truncated in transit: {got}/{expected} bytes")
            }
            DeliveryError::Corrupt => write!(f, "volume corrupted in transit"),
            DeliveryError::Malformed => write!(f, "malformed sequencing prefix"),
            DeliveryError::Pipe(e) => write!(f, "pipe: {e}"),
        }
    }
}

impl std::error::Error for DeliveryError {}

impl From<PipeError> for DeliveryError {
    fn from(e: PipeError) -> Self {
        match e {
            PipeError::LengthMismatch { expected, got } => {
                DeliveryError::Truncated { expected, got }
            }
            PipeError::ChecksumMismatch => DeliveryError::Corrupt,
            other => DeliveryError::Pipe(other),
        }
    }
}

/// How a sequence number relates to the newest one a [`SeqTracker`] has
/// seen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqClass {
    /// Strictly newer than anything seen. `gap` counts the sequence
    /// numbers skipped over to get here (0 for a contiguous advance).
    Fresh { gap: u64 },
    /// Equal to the newest seen: a replay.
    Duplicate { seq: u64 },
    /// Older than the newest seen: late delivery.
    OutOfOrder { seq: u64, newest: u64 },
}

/// Connection-scoped sequence-number classifier.
///
/// This is the policy kernel shared by both directions of the pipeline:
/// the ingest [`SequencedReceiver`] classifies radar volumes with it, and
/// the egress side (`bda-serve`) runs one per subscriber connection so
/// duplicated or gapped tile messages become typed outcomes instead of
/// silent corruption.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqTracker {
    newest: Option<u64>,
}

impl SeqTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Newest sequence number seen so far.
    pub fn newest(&self) -> Option<u64> {
        self.newest
    }

    /// Classify `seq` against history. `Fresh` advances the tracker; the
    /// other classes leave it untouched, so a replay of a gapped message
    /// is still a duplicate.
    pub fn classify(&mut self, seq: u64) -> SeqClass {
        match self.newest {
            Some(newest) if seq == newest => SeqClass::Duplicate { seq },
            Some(newest) if seq < newest => SeqClass::OutOfOrder { seq, newest },
            Some(newest) => {
                self.newest = Some(seq);
                SeqClass::Fresh {
                    gap: seq - newest - 1,
                }
            }
            None => {
                self.newest = Some(seq);
                // Joining mid-stream is not a gap: the first number seen
                // defines the local origin.
                SeqClass::Fresh { gap: 0 }
            }
        }
    }
}

/// Sending half: stamps each volume with a sequence number and scan time.
pub struct SequencedSender {
    inner: PipeSender,
    next_seq: u64,
}

/// Receiving half: tracks the newest delivered sequence number and applies
/// the duplicate / out-of-order / staleness policy.
pub struct SequencedReceiver {
    inner: PipeReceiver,
    tracker: SeqTracker,
    /// Reject scans older than this at receive time; `None` disables the
    /// staleness check.
    pub stale_horizon_s: Option<f64>,
}

/// Create a sequenced pipe (see [`crate::pipe::pipe`] for the transport
/// parameters).
pub fn sequenced_pipe(
    chunk_bytes: usize,
    capacity: usize,
    stale_horizon_s: Option<f64>,
) -> (SequencedSender, SequencedReceiver) {
    let (tx, rx) = crate::pipe::pipe(chunk_bytes, capacity);
    (
        SequencedSender {
            inner: tx,
            next_seq: 0,
        },
        SequencedReceiver {
            inner: rx,
            tracker: SeqTracker::new(),
            stale_horizon_s,
        },
    )
}

fn frame(seq: u64, scan_time: f64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(SEQ_PREFIX_BYTES + payload.len());
    buf.put_u64(seq);
    buf.put_f64(scan_time);
    buf.put_slice(payload);
    buf.freeze()
}

impl SequencedSender {
    /// Send a volume with the next sequence number; returns the number used.
    pub fn send(&mut self, scan_time: f64, payload: &[u8]) -> Result<u64, PipeError> {
        let seq = self.next_seq;
        self.send_with_seq(seq, scan_time, payload)?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Send with an explicit sequence number, leaving the internal counter
    /// untouched. This is how a supervisor tags volumes with its cycle
    /// index, and how fault injectors replay (duplicate) or back-date
    /// (stale) a volume.
    pub fn send_with_seq(
        &mut self,
        seq: u64,
        scan_time: f64,
        payload: &[u8],
    ) -> Result<(), PipeError> {
        self.inner.send(frame(seq, scan_time, payload))
    }
}

impl SequencedReceiver {
    /// Classify a raw pipe delivery. `now` is the receiver's campaign-clock
    /// time, used for the staleness check.
    fn classify(&mut self, raw: Bytes, now: f64) -> Result<SequencedVolume, DeliveryError> {
        if raw.len() < SEQ_PREFIX_BYTES {
            return Err(DeliveryError::Malformed);
        }
        let mut head = &raw[..SEQ_PREFIX_BYTES];
        let seq = head.get_u64();
        let scan_time = head.get_f64();
        if !scan_time.is_finite() {
            return Err(DeliveryError::Malformed);
        }
        // The tracker advances on a fresh number even if the volume turns
        // out stale below, so a replay of it is still a duplicate.
        match self.tracker.classify(seq) {
            SeqClass::Duplicate { seq } => return Err(DeliveryError::Duplicate { seq }),
            SeqClass::OutOfOrder { seq, newest } => {
                return Err(DeliveryError::OutOfOrder { seq, newest })
            }
            SeqClass::Fresh { .. } => {}
        }
        if let Some(horizon_s) = self.stale_horizon_s {
            let age_s = now - scan_time;
            if age_s > horizon_s {
                return Err(DeliveryError::Stale {
                    seq,
                    age_s,
                    horizon_s,
                });
            }
        }
        Ok(SequencedVolume {
            seq,
            scan_time,
            payload: raw.slice(SEQ_PREFIX_BYTES..),
        })
    }

    /// Receive and classify one volume, blocking.
    pub fn recv(&mut self, now: f64) -> Result<SequencedVolume, DeliveryError> {
        let raw = self.inner.recv()?;
        self.classify(raw, now)
    }

    /// Receive and classify one volume under the per-frame stall watchdog
    /// (see [`PipeReceiver::recv_timeout`]).
    pub fn recv_timeout(
        &mut self,
        now: f64,
        timeout: Duration,
    ) -> Result<SequencedVolume, DeliveryError> {
        let raw = self.inner.recv_timeout(timeout)?;
        self.classify(raw, now)
    }

    /// Sequence number of the newest volume seen so far.
    pub fn newest_seq(&self) -> Option<u64> {
        self.tracker.newest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_pipe(horizon: Option<f64>) -> (SequencedSender, SequencedReceiver) {
        sequenced_pipe(64, 64, horizon)
    }

    #[test]
    fn in_order_volumes_deliver_with_metadata() {
        let (mut tx, mut rx) = seq_pipe(None);
        assert_eq!(tx.send(30.0, b"scan-0").unwrap(), 0);
        assert_eq!(tx.send(60.0, b"scan-1").unwrap(), 1);
        let v0 = rx.recv(30.0).unwrap();
        assert_eq!(
            (v0.seq, v0.scan_time, &v0.payload[..]),
            (0, 30.0, &b"scan-0"[..])
        );
        let v1 = rx.recv(60.0).unwrap();
        assert_eq!(v1.seq, 1);
        assert_eq!(rx.newest_seq(), Some(1));
    }

    #[test]
    fn duplicate_is_detected_and_typed() {
        let (mut tx, mut rx) = seq_pipe(None);
        tx.send_with_seq(5, 30.0, b"vol").unwrap();
        tx.send_with_seq(5, 30.0, b"vol").unwrap();
        assert_eq!(rx.recv(30.0).unwrap().seq, 5);
        assert_eq!(
            rx.recv(30.0).unwrap_err(),
            DeliveryError::Duplicate { seq: 5 }
        );
    }

    #[test]
    fn reordered_volume_is_dropped_newest_wins() {
        let (mut tx, mut rx) = seq_pipe(None);
        tx.send_with_seq(7, 210.0, b"new").unwrap();
        tx.send_with_seq(3, 90.0, b"old").unwrap();
        assert_eq!(rx.recv(210.0).unwrap().seq, 7);
        assert_eq!(
            rx.recv(210.0).unwrap_err(),
            DeliveryError::OutOfOrder { seq: 3, newest: 7 }
        );
    }

    #[test]
    fn stale_scan_rejected_beyond_horizon() {
        let (mut tx, mut rx) = seq_pipe(Some(90.0));
        // Scan taken at t=0, received at t=120: 30s past the horizon.
        tx.send_with_seq(0, 0.0, b"ancient").unwrap();
        match rx.recv(120.0).unwrap_err() {
            DeliveryError::Stale {
                seq,
                age_s,
                horizon_s,
            } => {
                assert_eq!(seq, 0);
                assert_eq!(age_s, 120.0);
                assert_eq!(horizon_s, 90.0);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // A replay of the stale volume is a duplicate, not stale again.
        tx.send_with_seq(0, 0.0, b"ancient").unwrap();
        assert_eq!(
            rx.recv(120.0).unwrap_err(),
            DeliveryError::Duplicate { seq: 0 }
        );
    }

    #[test]
    fn fresh_scan_passes_staleness_check() {
        let (mut tx, mut rx) = seq_pipe(Some(90.0));
        tx.send(300.0, b"fresh").unwrap();
        assert_eq!(rx.recv(310.0).unwrap().scan_time, 300.0);
    }

    #[test]
    fn truncation_and_corruption_surface_distinctly() {
        // The pipe's own framing errors map to their own variants.
        assert_eq!(
            DeliveryError::from(PipeError::LengthMismatch {
                expected: 10,
                got: 4
            }),
            DeliveryError::Truncated {
                expected: 10,
                got: 4
            }
        );
        assert_eq!(
            DeliveryError::from(PipeError::ChecksumMismatch),
            DeliveryError::Corrupt
        );
        assert_eq!(
            DeliveryError::from(PipeError::Stalled),
            DeliveryError::Pipe(PipeError::Stalled)
        );
    }

    #[test]
    fn volume_shorter_than_prefix_is_malformed() {
        let (tx, mut rx) = seq_pipe(None);
        // Bypass the sequenced sender: raw bytes shorter than the prefix.
        tx.inner.send(Bytes::from_static(b"short")).unwrap();
        assert_eq!(rx.recv(0.0).unwrap_err(), DeliveryError::Malformed);
    }

    #[test]
    fn non_finite_scan_time_is_malformed() {
        let (mut tx, mut rx) = seq_pipe(None);
        tx.send_with_seq(0, f64::NAN, b"bad clock").unwrap();
        assert_eq!(rx.recv(0.0).unwrap_err(), DeliveryError::Malformed);
    }

    #[test]
    fn stall_watchdog_still_works_through_the_wrapper() {
        let (_tx, mut rx) = seq_pipe(None);
        assert_eq!(
            rx.recv_timeout(0.0, Duration::from_millis(20)).unwrap_err(),
            DeliveryError::Pipe(PipeError::Stalled)
        );
    }

    #[test]
    fn tracker_counts_gaps_and_advances_only_on_fresh() {
        let mut t = SeqTracker::new();
        assert_eq!(t.newest(), None);
        // Mid-stream join defines the local origin: no gap reported.
        assert_eq!(t.classify(10), SeqClass::Fresh { gap: 0 });
        assert_eq!(t.classify(11), SeqClass::Fresh { gap: 0 });
        assert_eq!(t.classify(15), SeqClass::Fresh { gap: 3 });
        assert_eq!(t.classify(15), SeqClass::Duplicate { seq: 15 });
        assert_eq!(
            t.classify(12),
            SeqClass::OutOfOrder {
                seq: 12,
                newest: 15
            }
        );
        // Neither the duplicate nor the straggler moved the tracker.
        assert_eq!(t.newest(), Some(15));
    }

    #[test]
    fn drop_display_is_humane() {
        assert_eq!(
            DeliveryDrop::Duplicate { seq: 4 }.to_string(),
            "dropped duplicate seq 4"
        );
        assert_eq!(
            DeliveryDrop::OutOfOrder { seq: 2, newest: 6 }.to_string(),
            "dropped out-of-order seq 2 (newest 6)"
        );
    }
}
