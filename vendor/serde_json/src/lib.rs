//! Offline stand-in for the `serde_json` crate.
//!
//! Declared as a dependency by the root package and `bda-bench` but unused
//! by any code path; this empty crate satisfies the dependency offline (see
//! `vendor/README.md`). If JSON output is needed later, grow this into a
//! real serializer or restore the upstream crate.
