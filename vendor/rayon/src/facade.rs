//! The checked sync facade: the **only** place the pool touches
//! synchronization primitives.
//!
//! `bda-check`'s `pool_facade` lint rule denies `std::sync::atomic` /
//! `std::sync::Mutex` / `std::thread::scope` tokens anywhere else in this
//! crate, so every atomic the claim/steal/combine protocol performs is
//! guaranteed to route through here — and therefore to run, unmodified,
//! under the loom model checker when the `loom-model` feature swaps the
//! backing implementation. The protocol code in [`crate::protocol`] is
//! byte-for-byte identical in both builds; only these re-exports change.
//!
//! The persistent executor in [`crate::pool`] is production-only (it is
//! compiled out under `loom-model`; the model executes the same
//! [`crate::protocol`] worker loop on scoped model threads instead), so the
//! park/unpark primitives (`Condvar`) are exported from the `std` arm only.

#[cfg(not(feature = "loom-model"))]
mod imp {
    pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    pub use std::sync::{Condvar, Mutex};
}

#[cfg(feature = "loom-model")]
mod imp {
    pub use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    pub use loom::sync::Mutex;
    pub use loom::thread::scope;
}

pub use imp::*;
