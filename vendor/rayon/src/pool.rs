//! The persistent production executor: lazily spawned worker threads that
//! park on a condvar between regions, a type-erased job injector, and the
//! measured sequential fast path.
//!
//! This module is compiled out under the `loom-model` feature — the model
//! checker executes the *protocol* (claim/steal/combine, in
//! [`crate::protocol`]) on scoped model threads instead, because that is
//! the part with interesting interleavings. What lives here is the
//! scheduling shell around it: thread reuse so a 30-second cycle stops
//! paying thread spawn/join for every parallel region, park/unpark idling
//! so idle workers cost nothing, and the dispatch-or-not decision. None of
//! it can affect output: workers only ever run [`Region::worker_loop`],
//! and the region's slots are index-addressed.
//!
//! # Lifecycle of a region
//!
//! 1. The caller (worker 0) claims and executes the region's first chunk
//!    inline, timing it.
//! 2. If the measured remaining work clears the dispatch threshold (a
//!    multiple of the calibrated pool round-trip cost), the caller
//!    publishes a type-erased job to the injector and wakes the pool;
//!    otherwise it simply drains the region sequentially — the fast path.
//! 3. Pool workers attach (acquiring a distinct worker index and bumping
//!    the region's live count *under the injector lock*), run the shared
//!    worker loop, then detach under the same lock.
//! 4. The caller drains until no chunk is claimable, removes its job entry
//!    from the injector (so no further worker can attach), and waits on
//!    the pool condvar until the live count is zero. Only then does the
//!    region's stack state die, which is what makes the raw context
//!    pointers in the injector sound.
//!
//! # Why the latch lives on the pool, not the region
//!
//! The completion wait uses the *global* pool mutex/condvar rather than a
//! per-region latch: the last thing a detaching worker touches is
//! `'static` pool state, never region memory, so there is no
//! use-after-free window between a worker's final notify and the caller
//! freeing the region.

use crate::facade::{AtomicUsize, Condvar, Mutex, Ordering};
use crate::protocol::{self, DepthGuard, Region, MAX_CHUNKS};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Publish to the pool only if the measured remainder of the region costs
/// at least this many calibrated dispatch round trips. Below that, even a
/// perfect speedup cannot repay the wake/steal/latch overhead, so the
/// caller keeps the region on the fast path. The margin is deliberately
/// fat: a wrongly-sequential small region loses microseconds, a
/// wrongly-published one loses the same microseconds *and* perturbs every
/// other worker.
const FAST_PATH_MARGIN: u32 = 4;

/// One published region, type-erased so the injector can hold regions of
/// any item/result type. `ctx` points at an [`Erased`] on the publishing
/// caller's stack.
#[derive(Clone, Copy)]
struct JobEntry {
    /// Identity of the region (the erased context address), used by the
    /// caller to withdraw the entry at completion.
    id: usize,
    ctx: *const (),
    /// Called under the injector lock: bump the live count and hand out
    /// the next worker index.
    attach: unsafe fn(*const ()) -> usize,
    /// Called outside the lock: run the shared worker loop.
    run: unsafe fn(*const (), usize),
    /// Called under the injector lock after `run` returns: drop the live
    /// count (the caller's completion wait watches it).
    detach: unsafe fn(*const ()),
    /// How many more workers may attach (the region wants `threads - 1`
    /// helpers; worker indices stay in bounds because this starts at
    /// `threads - 1` and attach increments from 1).
    remaining: usize,
}

// SAFETY: `ctx` points into the publishing caller's stack frame. The entry
// is only reachable while it sits in the injector queue, the caller
// withdraws it (or workers exhaust `remaining`) before the caller's
// completion wait can finish, and the completion wait does not finish
// until every attached worker has detached — all under the single injector
// mutex. So no worker can observe `ctx` after the region is freed.
unsafe impl Send for JobEntry {}

struct PoolState {
    jobs: Vec<JobEntry>,
    /// Worker threads spawned so far (they never exit; they park).
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Woken for both "new job published" and "worker detached" events;
    /// waiters re-check their predicate and re-park on spurious wakes.
    cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: Vec::new(),
            spawned: 0,
        }),
        cv: Condvar::new(),
    })
}

/// The erased per-region context a [`JobEntry`] points at. Lives on the
/// caller's stack next to the [`Region`] itself.
struct Erased<'a, B, R, W> {
    region: &'a Region<B, R, W>,
    /// Next worker index to hand out; starts at 1 (the caller is 0).
    /// Touched only under the injector lock.
    next_worker: AtomicUsize,
    /// Attached-and-running worker count. Touched only under the injector
    /// lock; the caller's completion wait reads it under the same lock.
    live: AtomicUsize,
}

impl<'a, B, R, W> Erased<'a, B, R, W>
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    fn new(region: &'a Region<B, R, W>) -> Self {
        Erased {
            region,
            next_worker: AtomicUsize::new(1),
            live: AtomicUsize::new(0),
        }
    }

    fn entry(&self) -> JobEntry {
        let ctx: *const () = (self as *const Self).cast();
        JobEntry {
            id: ctx.addr(),
            ctx,
            attach: Self::attach,
            run: Self::run,
            detach: Self::detach,
            remaining: self.region.n_workers() - 1,
        }
    }

    /// SAFETY: `ctx` must be the address of a live `Erased<B, R, W>` of
    /// exactly these type parameters; guaranteed by the injector protocol
    /// (see [`JobEntry`]'s `Send` justification).
    unsafe fn attach(ctx: *const ()) -> usize {
        let e = unsafe { &*ctx.cast::<Self>() };
        // Plain RMWs are enough: every touch of these counters happens
        // under the injector mutex, which supplies the ordering.
        e.live.fetch_add(1, Ordering::Relaxed);
        e.next_worker.fetch_add(1, Ordering::Relaxed)
    }

    /// SAFETY: as for `attach`, plus `w` must be the index `attach`
    /// returned (distinct per worker, in `1..n_workers`).
    unsafe fn run(ctx: *const (), w: usize) {
        let e = unsafe { &*ctx.cast::<Self>() };
        e.region.worker_loop(w);
    }

    /// SAFETY: as for `attach`; called exactly once per successful attach.
    unsafe fn detach(ctx: *const ()) {
        let e = unsafe { &*ctx.cast::<Self>() };
        e.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Body of every pool worker thread: take a job, attach, run the shared
/// worker loop, detach, repeat; park on the condvar when the queue is
/// empty. Workers never exit — an idle pool is N parked threads.
fn worker_main() {
    let p = pool();
    let mut g = p.state.lock().unwrap();
    loop {
        if let Some(i) = g.jobs.iter().position(|j| j.remaining > 0) {
            let job = g.jobs[i];
            g.jobs[i].remaining -= 1;
            if g.jobs[i].remaining == 0 {
                g.jobs.remove(i);
            }
            // SAFETY: the entry was live in the queue a moment ago and we
            // still hold the injector lock, so the caller cannot have
            // passed its completion wait; attach bumps `live` before we
            // release the lock, which keeps it that way until we detach.
            let w = unsafe { (job.attach)(job.ctx) };
            drop(g);
            // SAFETY: `live` > 0 keeps the region alive for the duration.
            unsafe { (job.run)(job.ctx, w) };
            g = p.state.lock().unwrap();
            // SAFETY: attached above; last touch of the region.
            unsafe { (job.detach)(job.ctx) };
            p.cv.notify_all();
        } else {
            g = p.cv.wait(g).unwrap();
        }
    }
}

/// Spawn workers until `want` exist (never despawns). Returns how many
/// exist; spawn failure degrades width instead of erroring.
fn ensure_spawned(g: &mut PoolState, want: usize) -> usize {
    while g.spawned < want {
        let spawned = std::thread::Builder::new()
            .name(format!("bda-pool-{}", g.spawned))
            .spawn(worker_main);
        if spawned.is_err() {
            break;
        }
        g.spawned += 1;
    }
    g.spawned
}

/// Publish `erased` to the injector, waking the pool. Returns the entry id
/// for withdrawal, or `None` if no worker exists to ever take it.
fn inject<B, R, W>(erased: &Erased<'_, B, R, W>) -> Option<usize>
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    let entry = erased.entry();
    let p = pool();
    let mut g = p.state.lock().unwrap();
    if ensure_spawned(&mut g, entry.remaining) == 0 {
        return None;
    }
    let id = entry.id;
    g.jobs.push(entry);
    drop(g);
    p.cv.notify_all();
    Some(id)
}

/// Withdraw the entry (no further attaches) and wait until every attached
/// worker has detached. After this returns, no pool thread holds a
/// reference into the region.
fn complete(id: usize, live: &AtomicUsize) {
    let p = pool();
    let mut g = p.state.lock().unwrap();
    if let Some(i) = g.jobs.iter().position(|j| j.id == id) {
        g.jobs.remove(i);
    }
    while live.load(Ordering::Relaxed) > 0 {
        g = p.cv.wait(g).unwrap();
    }
}

/// Calibration twin of [`complete`]: wait until the entry has been taken
/// *and* the taker detached — the full publish → park-wake → steal →
/// drain → latch round trip the fast-path threshold is priced against.
fn wait_taken_and_drained(id: usize, live: &AtomicUsize) {
    let p = pool();
    let mut g = p.state.lock().unwrap();
    loop {
        let queued = g.jobs.iter().any(|j| j.id == id);
        if !queued && live.load(Ordering::Relaxed) == 0 {
            return;
        }
        g = p.cv.wait(g).unwrap();
    }
}

/// The measured cost of one full dispatch round trip on this host,
/// calibrated once per process by pushing a trivial [`MAX_CHUNKS`]-chunk
/// region through the real injector/worker machinery three times and
/// taking the fastest trip (the first pays worker spawn; the minimum is
/// the steady-state cost the fast path should price against).
fn dispatch_overhead() -> Duration {
    static OVERHEAD: OnceLock<Duration> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let mut best = None;
        for _ in 0..3 {
            // Scheduling telemetry, not simulation state: this timestamp
            // only tunes the dispatch threshold, and output is identical
            // on either side of it.
            // bda-check: allow(wallclock)
            let t0 = Instant::now();
            let tasks = protocol::split_chunks(vec![(); MAX_CHUNKS]);
            let region = Region::new(tasks, 2, |_start: usize, _chunk: Vec<()>| ());
            let erased = Erased::new(&region);
            if let Some(id) = inject(&erased) {
                wait_taken_and_drained(id, &erased.live);
                let trip = t0.elapsed();
                best = Some(best.map_or(trip, |b: Duration| b.min(trip)));
            }
        }
        // No worker could be spawned: an effectively infinite threshold
        // keeps every region on the (correct) sequential fast path.
        best.unwrap_or(Duration::MAX)
    })
}

/// Execute a parallel region on the persistent pool. The caller thread is
/// worker 0; see the module docs for the lifecycle.
pub(crate) fn run_region<B, R, W>(region: &Region<B, R, W>)
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    let _depth = DepthGuard::enter();
    // Scheduling telemetry only (see dispatch_overhead): times the first
    // chunk to estimate whether the rest is worth waking the pool for.
    // bda-check: allow(wallclock)
    let t0 = Instant::now();
    if !region.run_one(0) {
        return;
    }
    let first = t0.elapsed();
    let rest = u32::try_from(region.n_chunks() - 1).unwrap_or(u32::MAX);
    let worth_dispatch = !region.poisoned()
        && first.saturating_mul(rest) >= dispatch_overhead().saturating_mul(FAST_PATH_MARGIN);
    if worth_dispatch {
        let erased = Erased::new(region);
        let id = inject(&erased);
        region.drain(0);
        if let Some(id) = id {
            complete(id, &erased.live);
        }
    } else {
        // Sequential fast path: same chunks, same cells, same slots, same
        // ascending drain order — worker 0 just claims all of them.
        region.drain(0);
    }
}
