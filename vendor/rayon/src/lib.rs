//! Offline stand-in for the `rayon` crate — a real multi-threaded runtime.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This crate reproduces the
//! `par_iter`/`par_iter_mut`/`into_par_iter`/`par_chunks_mut` surface the
//! workspace uses and, unlike the original sequential stand-in, actually
//! executes parallel operations on multiple OS threads.
//!
//! # Execution model
//!
//! Every parallel operation splits its input into contiguous **chunks whose
//! boundaries are a pure function of the input length** (never of the thread
//! count). Chunk indices are pre-partitioned into one contiguous range per
//! worker, each range packed into a single atomic word forming a
//! Chase–Lev-style split deque: the owning worker pops chunks from the
//! front (ascending, cache-friendly), idle workers steal from the back of
//! victim deques, and both directions are a single CAS (see
//! [`protocol`]). Workers are **persistent**: lazily spawned threads that
//! park on a condvar between regions, so a parallel region costs an
//! unpark — not a thread spawn — and an idle pool costs nothing (see the
//! production executor in `pool`). Regions whose measured work cannot
//! repay even that dispatch are kept on a **sequential fast path**: the
//! caller times the region's first chunk, compares the estimated remainder
//! against a once-per-process calibrated pool round trip, and below the
//! threshold simply drains the same chunk structure itself — which side of
//! the threshold a region lands on can never change its output.
//!
//! # Determinism contract
//!
//! N-thread output is bit-identical to 1-thread output:
//!
//! * each item's result is written to its own index-addressed slot and
//!   per-item results are reassembled in input order (`map`/`collect`);
//! * `fold` seeds one accumulator per *chunk* (not per thread) and `reduce`
//!   combines per-chunk results **in ascending chunk order** — because chunk
//!   boundaries depend only on the input length, the floating-point
//!   combination order is the same no matter how many workers ran.
//!
//! The one-thread path executes the *same* chunk structure sequentially, so
//! it is the reference implementation, not a special case.
//!
//! # Nesting
//!
//! A parallel operation launched from inside a worker runs sequentially on
//! that worker (same chunk structure, hence same results). This bounds the
//! total thread count, makes nested `par_iter` deadlock-free by
//! construction, and matches where the workspace wants its parallelism: at
//! the outermost loop (ensemble members, LETKF grid-point blocks).
//!
//! # Sizing
//!
//! The global thread count comes from `BDA_THREADS` (if set and ≥ 1), else
//! `std::thread::available_parallelism()`. `ThreadPoolBuilder` /
//! `ThreadPool::install` provide the rayon-compatible scoped override used
//! by the scaling bench to measure 1/2/4/8-thread runs in one process.

mod facade;
#[cfg(not(feature = "loom-model"))]
mod pool;
pub mod protocol;

use std::cell::Cell;
use std::sync::OnceLock;

pub use protocol::MAX_CHUNKS;

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// `ThreadPool::install` override for the current thread.
    static INSTALLED: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("BDA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(default_threads)
}

/// Threads a parallel operation started on this thread would use right now.
pub fn current_num_threads() -> usize {
    if protocol::in_parallel_region() {
        return 1;
    }
    INSTALLED.with(|c| c.get()).unwrap_or_else(global_threads)
}

/// Errors from [`ThreadPoolBuilder::build`] / `build_global`.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Rayon-compatible builder. `num_threads(0)` (or not calling it) means
/// "use the environment default" (`BDA_THREADS` / available parallelism).
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolve(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { n: self.resolve() })
    }

    /// Fix the process-global thread count. Errors if the global pool was
    /// already sized (explicitly or by first use).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = self.resolve();
        GLOBAL_THREADS.set(n).map_err(|_| ThreadPoolBuildError {
            msg: "global thread pool already initialized",
        })
    }
}

/// A sized handle: parallel operations inside [`ThreadPool::install`] use
/// this pool's thread count instead of the global one. Worker threads are
/// owned by the process-wide persistent pool (see crate docs), so this
/// handle is a *dispatch policy*, deliberately cheap to build.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.n
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED.with(|c| c.replace(Some(self.n)));
        let _restore = Restore(prev);
        op()
    }
}

// ---------------------------------------------------------------------------
// Core executor
// ---------------------------------------------------------------------------

/// Run `work` over every chunk of `items`, returning per-chunk results in
/// chunk order. Chunk boundaries depend only on `items.len()`; execution
/// (1 thread inline vs N scoped workers stealing chunks) never changes the
/// output. The claim/steal/combine protocol itself lives in
/// [`protocol::run_chunks_with`], behind the checked sync facade, so the
/// loom interleaving suite exercises exactly the code that runs here.
fn run_chunks<B, R, W>(items: Vec<B>, work: W) -> Vec<R>
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    protocol::run_chunks_with(current_num_threads(), items, work)
}

// ---------------------------------------------------------------------------
// Parallel iterator surface
// ---------------------------------------------------------------------------

/// A parallel computation over a materialized base: `base[i]` flows through
/// the composed per-item function `f(base_item, global_index)`. Adapters
/// (`map`, `enumerate`) compose `f` lazily; terminal operations
/// (`collect`, `for_each`, `fold`, `reduce`, `sum`, `count`) execute on the
/// pool via [`run_chunks`].
pub struct ParIter<B, F> {
    base: Vec<B>,
    f: F,
}

/// A freshly-created parallel iterator (identity per-item function).
pub type BaseIter<B> = ParIter<B, fn(B, usize) -> B>;

fn ident<B>(b: B, _i: usize) -> B {
    b
}

fn from_vec<B: Send>(items: Vec<B>) -> BaseIter<B> {
    ParIter {
        base: items,
        f: ident::<B>,
    }
}

impl<B: Send, F> ParIter<B, F> {
    /// Pair every item with its index in the source.
    pub fn enumerate<T: Send>(self) -> ParIter<B, impl Fn(B, usize) -> (usize, T) + Sync>
    where
        F: Fn(B, usize) -> T + Sync,
    {
        let f = self.f;
        ParIter {
            base: self.base,
            f: move |b, i| (i, f(b, i)),
        }
    }

    pub fn map<T: Send, R: Send, G>(self, g: G) -> ParIter<B, impl Fn(B, usize) -> R + Sync>
    where
        F: Fn(B, usize) -> T + Sync,
        G: Fn(T) -> R + Sync,
    {
        let f = self.f;
        ParIter {
            base: self.base,
            f: move |b, i| g(f(b, i)),
        }
    }

    pub fn for_each<T: Send, G>(self, g: G)
    where
        F: Fn(B, usize) -> T + Sync,
        G: Fn(T) + Sync,
    {
        let f = self.f;
        run_chunks(self.base, |start, chunk| {
            for (k, b) in chunk.into_iter().enumerate() {
                g(f(b, start + k));
            }
        });
    }

    /// Execute, preserving input order.
    fn run<T: Send>(self) -> Vec<T>
    where
        F: Fn(B, usize) -> T + Sync,
    {
        let f = self.f;
        let parts = run_chunks(self.base, |start, chunk| {
            chunk
                .into_iter()
                .enumerate()
                .map(|(k, b)| f(b, start + k))
                .collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }

    pub fn collect<T: Send, C: FromIterator<T>>(self) -> C
    where
        F: Fn(B, usize) -> T + Sync,
    {
        self.run().into_iter().collect()
    }

    /// Rayon's per-split fold: one accumulator per deterministic chunk; the
    /// result is a parallel iterator over per-chunk accumulators, in chunk
    /// order.
    pub fn fold<T: Send, A: Send, ID, G>(self, identity: ID, g: G) -> BaseIter<A>
    where
        F: Fn(B, usize) -> T + Sync,
        ID: Fn() -> A + Sync,
        G: Fn(A, T) -> A + Sync,
    {
        let f = self.f;
        let accs = run_chunks(self.base, |start, chunk| {
            let mut acc = identity();
            for (k, b) in chunk.into_iter().enumerate() {
                acc = g(acc, f(b, start + k));
            }
            acc
        });
        from_vec(accs)
    }

    /// Rayon's reduce with identity element. Per-chunk partials are
    /// combined in ascending chunk order (the determinism contract); `op`
    /// must be associative with `identity()` as neutral element for the
    /// result to equal a plain left fold.
    pub fn reduce<T: Send, ID, OP>(self, identity: ID, op: OP) -> T
    where
        F: Fn(B, usize) -> T + Sync,
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let f = self.f;
        let parts = run_chunks(self.base, |start, chunk| {
            let mut acc = identity();
            for (k, b) in chunk.into_iter().enumerate() {
                acc = op(acc, f(b, start + k));
            }
            acc
        });
        parts.into_iter().fold(identity(), op)
    }

    pub fn sum<T: Send, S>(self) -> S
    where
        F: Fn(B, usize) -> T + Sync,
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        let f = self.f;
        let parts = run_chunks(self.base, |start, chunk| {
            chunk
                .into_iter()
                .enumerate()
                .map(|(k, b)| f(b, start + k))
                .sum::<S>()
        });
        parts.into_iter().sum()
    }

    pub fn count<T: Send>(self) -> usize
    where
        F: Fn(B, usize) -> T + Sync,
    {
        self.run().len()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> BaseIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> BaseIter<T> {
        from_vec(self.collect())
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> BaseIter<T> {
        from_vec(self)
    }
}

/// `par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    fn par_iter(&'data self) -> BaseIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> BaseIter<&'data T> {
        from_vec(self.iter().collect())
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> BaseIter<&'data T> {
        from_vec(self.iter().collect())
    }
}

/// `par_iter_mut()` on exclusive slices.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send;
    fn par_iter_mut(&'data mut self) -> BaseIter<Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> BaseIter<&'data mut T> {
        from_vec(self.iter_mut().collect())
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> BaseIter<&'data mut T> {
        from_vec(self.iter_mut().collect())
    }
}

/// `par_chunks_mut()` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> BaseIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> BaseIter<&mut [T]> {
        from_vec(self.chunks_mut(chunk_size).collect())
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, ThreadPool, ThreadPoolBuilder};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    // --- behaviour carried over from the sequential stand-in ---

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn fold_map_reduce_chain() {
        let mut data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = data
            .par_chunks_mut(2)
            .enumerate()
            .fold(|| 0u64, |acc, (_, c)| acc + c.iter().sum::<u64>())
            .map(|s| s)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 21);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    // --- pool behaviour ---

    #[test]
    fn empty_input_is_fine_everywhere() {
        pool(4).install(|| {
            let v: Vec<i32> = Vec::new();
            let out: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
            assert!(out.is_empty());
            let total: i32 = Vec::<i32>::new()
                .into_par_iter()
                .fold(|| 0, |a, b| a + b)
                .reduce(|| 0, |a, b| a + b);
            assert_eq!(total, 0);
            let mut empty: [u8; 0] = [];
            empty.par_chunks_mut(3).for_each(|_| unreachable!());
        });
    }

    #[test]
    fn single_item_runs_once() {
        pool(8).install(|| {
            let hits = AtomicUsize::new(0);
            let out: Vec<i32> = vec![41]
                .into_par_iter()
                .map(|x| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    x + 1
                })
                .collect();
            assert_eq!(out, vec![42]);
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn far_fewer_items_than_threads() {
        pool(16).install(|| {
            let v = vec![1u64, 2, 3];
            let out: Vec<u64> = v.par_iter().map(|x| x * x).collect();
            assert_eq!(out, vec![1, 4, 9]);
        });
    }

    #[test]
    fn panic_in_worker_propagates() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 17 {
                        panic!("worker bug");
                    }
                });
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn nested_par_iter_does_not_deadlock() {
        let out: Vec<u64> = pool(4).install(|| {
            (0..8u64)
                .into_par_iter()
                .map(|i| {
                    // Nested region: must serialize on the worker, not spawn
                    // (and certainly not deadlock).
                    let s: u64 = (0..100u64).into_par_iter().map(|j| i * j).sum();
                    s
                })
                .collect()
        });
        let expect: Vec<u64> = (0..8u64).map(|i| i * 4950).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn multiple_threads_actually_participate() {
        // 32 chunks of sleepy work on a 4-thread pool: even on a single
        // core the sleeps yield the CPU, so several OS threads get chunks.
        let ids = Mutex::new(HashSet::new());
        pool(4).install(|| {
            (0..32usize).into_par_iter().for_each(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected work stealing to involve more than one thread"
        );
    }

    #[test]
    fn install_overrides_and_restores() {
        let outer = current_num_threads();
        pool(3).install(|| {
            assert_eq!(current_num_threads(), 3);
            pool(2).install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    /// The determinism contract on a floating-point reduction: bit-identical
    /// across thread counts, because chunk boundaries depend only on len.
    #[test]
    fn float_fold_reduce_bitwise_stable_across_thread_counts() {
        let data: Vec<f64> = (0..1013)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 * 1.0e-3 + 0.1)
            .collect();
        let run = |threads: usize| -> u64 {
            pool(threads).install(|| {
                data.par_iter()
                    .fold(|| 0.0f64, |a, x| a + x.sin())
                    .reduce(|| 0.0, |a, b| a + b)
                    .to_bits()
            })
        };
        let reference = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn par_chunks_mut_slot_addressed_writes() {
        let run = |threads: usize| -> Vec<f32> {
            let mut v: Vec<f32> = (0..997).map(|i| i as f32 * 0.5).collect();
            pool(threads).install(|| {
                v.par_chunks_mut(13).enumerate().for_each(|(c, chunk)| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = x.sqrt() + (c * 13 + k) as f32;
                    }
                });
            });
            v
        };
        assert_eq!(run(1), run(7));
    }
}
