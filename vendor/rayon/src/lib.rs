//! Offline stand-in for the `rayon` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This crate reproduces the
//! `par_iter`/`par_iter_mut`/`into_par_iter`/`par_chunks_mut` surface the
//! workspace uses, executing **sequentially**: every `ParIter` wraps a
//! standard iterator, and `fold(..).map(..).reduce(..)` chains collapse to a
//! single-accumulator fold. Swapping the real rayon back in later changes
//! only Cargo metadata, not call sites.

/// Sequential stand-in for rayon's `ParallelIterator`.
pub struct ParIter<I: Iterator> {
    it: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            it: self.it.enumerate(),
        }
    }

    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter { it: self.it.map(f) }
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.it.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.it.collect()
    }

    /// Rayon's per-split fold; sequentially there is exactly one split, so
    /// this yields a one-element iterator holding the full fold.
    pub fn fold<T, ID, F>(self, mut identity: ID, f: F) -> ParIter<std::iter::Once<T>>
    where
        ID: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.it.fold(identity(), f);
        ParIter {
            it: std::iter::once(acc),
        }
    }

    /// Rayon's reduce with identity element.
    pub fn reduce<ID, OP>(self, mut identity: ID, op: OP) -> I::Item
    where
        ID: FnMut() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.it.fold(identity(), op)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.it.sum()
    }

    pub fn count(self) -> usize {
        self.it.count()
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Iter: Iterator;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator,
{
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { it: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            it: self.into_iter(),
        }
    }
}

/// `par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator;
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { it: self.iter() }
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { it: self.iter() }
    }
}

/// `par_iter_mut()` on exclusive slices.
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: Iterator;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter {
            it: self.iter_mut(),
        }
    }
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = std::slice::IterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter {
            it: self.iter_mut(),
        }
    }
}

/// `par_chunks_mut()` on exclusive slices.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            it: self.chunks_mut(chunk_size),
        }
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn fold_map_reduce_chain() {
        let mut data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = data
            .par_chunks_mut(2)
            .enumerate()
            .fold(|| 0u64, |acc, (_, c)| acc + c.iter().sum::<u64>())
            .map(|s| s)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 21);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }
}
