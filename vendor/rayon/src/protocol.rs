//! The model-checked pool protocol: deterministic chunk splitting,
//! per-worker chunk-range deques with front-pop ownership and back-end
//! stealing, claim-guarded take-once chunk cells, index-addressed result
//! slots, and ascending-order combination.
//!
//! Everything in this module goes through [`crate::facade`] for its
//! synchronization, so the **same code** executes under `std::sync` in
//! production and under the vendored loom model checker in `bda-check`'s
//! interleaving suite (`cargo test -p bda-check --features loom-model`).
//! The suite verifies, over every bounded interleaving at 2 and 3 model
//! threads:
//!
//! * every chunk is claimed and executed exactly once, whether it was
//!   popped by its owning worker or stolen from the back of a victim deque;
//! * per-chunk results are combined in ascending chunk order regardless of
//!   which worker computed them (the determinism contract);
//! * nested regions serialize on the calling worker and cannot deadlock;
//! * a panic in any worker poisons the region and propagates to the caller.
//!
//! # The deque protocol
//!
//! Chunk indices for a region of `n` chunks are pre-partitioned into one
//! contiguous half-open range per worker (the same balanced formula as the
//! chunk split itself). Each range lives **packed into a single atomic
//! word** — `lo * PACK + hi` — so both claiming directions are one CAS:
//!
//! * the owning worker pops from the *front* (`(lo, hi) → (lo+1, hi)`),
//!   walking its chunks in ascending order, cache-friendly;
//! * a thief steals from the *back* (`(lo, hi) → (lo, hi-1)`), taking the
//!   chunk its owner would reach last.
//!
//! Ranges only ever shrink and no chunk index appears in two deques, so a
//! successful CAS is full ownership of exactly one chunk — there is no ABA
//! window and no growth path (nested regions serialize instead of
//! pushing). This is the Chase–Lev split-ended discipline reduced to its
//! essence: because a region's chunk set is fixed up front, the deque
//! never needs a circular buffer, an epoch tag, or a resize fence.
//!
//! # Claim-guarded cells: why the chunks and slots carry no locks
//!
//! The CAS that claims chunk `c` is the *only* path to `c`'s input cell
//! and result slot, and it succeeds exactly once per chunk — so the cells
//! need no mutex of their own. Cell contents are written before the region
//! is shared (and the sharing edge — scope spawn under loom, the
//! injector-mutex publish in production — carries them); the claim CAS
//! (AcqRel) orders the take; the result write is carried back to the
//! caller by the region's quiescence barrier (scope join under loom, the
//! pool's live-count latch in production). The loom suite's exactly-once
//! property is precisely the race-freedom argument for these cells, which
//! is why it is the first thing the suite checks.
//!
//! Who executes a chunk is scheduling-dependent; *what it computes and
//! where the result lands* is not — cells and slots are indexed by chunk,
//! and the caller drains slots in ascending order. That is the entire
//! determinism argument, and it is independent of steal order.

use crate::facade::{AtomicBool, AtomicUsize, Mutex, Ordering};
use std::cell::{Cell, UnsafeCell};
use std::panic::AssertUnwindSafe;

/// Upper bound on work chunks per parallel region. More chunks than the
/// widest realistic worker count gives the stealing loop room to balance
/// uneven per-chunk cost; a bound keeps per-chunk bookkeeping negligible.
pub const MAX_CHUNKS: usize = 32;

/// Packing base for a deque's `(lo, hi)` range: both bounds are chunk
/// indices in `0..=MAX_CHUNKS`, so `lo * PACK + hi` fits one word with
/// room to spare and unpacks by division.
const PACK: usize = MAX_CHUNKS + 1;

#[inline]
fn pack(lo: usize, hi: usize) -> usize {
    debug_assert!(lo < PACK && hi < PACK);
    lo * PACK + hi
}

#[inline]
fn unpack(v: usize) -> (usize, usize) {
    (v / PACK, v % PACK)
}

thread_local! {
    /// How many parallel regions enclose the current thread (> 0 on pool
    /// workers); nested regions run sequentially.
    static POOL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Is the current thread already inside a parallel region?
pub fn in_parallel_region() -> bool {
    POOL_DEPTH.with(|d| d.get()) > 0
}

/// RAII marker that the current thread is executing inside a parallel
/// region, so nested parallel operations serialize instead of spawning.
pub(crate) struct DepthGuard;

impl DepthGuard {
    pub(crate) fn enter() -> Self {
        POOL_DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        POOL_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Split `items` into the deterministic chunk set for its length: balanced
/// contiguous runs whose sizes adapt to the length (every chunk gets
/// `len / n_chunks` items and the first `len % n_chunks` chunks one more),
/// at most [`MAX_CHUNKS`] of them. Returns `(global_start_index,
/// chunk_items)` pairs in input order. Chunk boundaries are a pure
/// function of `items.len()` — never of the thread count — which is what
/// makes N-thread output bit-identical to 1-thread output.
pub fn split_chunks<B>(items: Vec<B>) -> Vec<(usize, Vec<B>)> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let n_chunks = len.min(MAX_CHUNKS);
    let mut tasks = Vec::with_capacity(n_chunks);
    let mut rest = items;
    let mut start = 0;
    for c in 0..n_chunks {
        let end = (c + 1) * len / n_chunks;
        let tail = rest.split_off(end - start);
        tasks.push((start, std::mem::replace(&mut rest, tail)));
        start = end;
    }
    tasks
}

/// Balanced contiguous partition of `0..n` into `workers` ranges — the
/// same formula as the chunk split, reused for deque pre-partitioning.
/// Unlike chunk boundaries this *is* a function of the worker count: it
/// only decides which deque a chunk starts in, never what the chunk
/// computes or where its result lands.
#[inline]
fn deque_range(w: usize, workers: usize, n: usize) -> (usize, usize) {
    (w * n / workers, (w + 1) * n / workers)
}

/// Shared state of one in-flight parallel region.
///
/// Lives on the caller's stack for the duration of the region. Workers —
/// scoped model threads under loom, persistent pool threads in production
/// (see [`crate::pool`]) — run [`Region::worker_loop`] against a shared
/// reference; the caller participates as worker 0 and finally drains the
/// slots in ascending chunk order.
/// A take-once chunk input cell: `(start_index, items)`, consumed exactly
/// once by whichever worker wins the claim CAS for that chunk.
type ChunkCell<B> = UnsafeCell<Option<(usize, Vec<B>)>>;

pub struct Region<B, R, W> {
    /// One packed `(lo, hi)` chunk-index range per worker deque.
    deques: Vec<AtomicUsize>,
    /// Take-once chunk inputs, indexed by chunk and guarded by the claim
    /// CAS (see the module docs): only the claimant of chunk `c` ever
    /// touches `cells[c]`.
    cells: Vec<ChunkCell<B>>,
    /// Index-addressed result slots, written by `c`'s claimant and read by
    /// the caller after the region quiesces.
    slots: Vec<UnsafeCell<Option<R>>>,
    /// Set (with Release) by whichever worker catches a panic in `work`;
    /// checked (with Acquire) by every worker per claim — the region
    /// abandons unexecuted chunks instead of finishing them.
    poisoned: AtomicBool,
    /// First caught panic payload, resumed by the caller after the region
    /// quiesces. A mutex is fine here: the panic path is never hot.
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    work: W,
}

// SAFETY: the `UnsafeCell`s are what stops the auto-impls. Each cell/slot
// pair is touched by at most one worker at a time: `cells[c]`/`slots[c]`
// are only reached through a successful claim CAS on a deque word, which
// hands out each chunk index exactly once (ranges are disjoint and only
// shrink; the loom suite checks the exactly-once property mechanically).
// Initial cell contents are published by the region-sharing edge (scope
// spawn / injector mutex); slot writes are collected only after the
// quiescence barrier. `B: Send`/`R: Send` move the payloads across
// threads; `W: Sync` is shared by reference.
unsafe impl<B: Send, R: Send, W: Sync> Sync for Region<B, R, W> {}

impl<B, R, W> Region<B, R, W>
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    /// Build region state for `tasks` (from [`split_chunks`]) and
    /// pre-partition the chunk indices across `workers` deques.
    pub fn new(tasks: Vec<(usize, Vec<B>)>, workers: usize, work: W) -> Self {
        let n = tasks.len();
        debug_assert!(workers >= 1 && workers <= n.max(1));
        let deques = (0..workers)
            .map(|w| {
                let (lo, hi) = deque_range(w, workers, n);
                AtomicUsize::new(pack(lo, hi))
            })
            .collect();
        Region {
            deques,
            cells: tasks
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
            work,
        }
    }

    pub fn n_chunks(&self) -> usize {
        self.cells.len()
    }

    pub fn n_workers(&self) -> usize {
        self.deques.len()
    }

    /// Owner side: pop the front of deque `w`. The Acquire load / AcqRel
    /// CAS pair makes every successful claim a synchronization edge on the
    /// deque word, so the claim set is totally ordered per deque.
    fn pop_front(&self, w: usize) -> Option<usize> {
        let d = &self.deques[w];
        let mut cur = d.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match d.compare_exchange(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(lo),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: steal the back of deque `v`. Symmetric CAS on the same
    /// packed word; a race with the owner (or another thief) simply retries
    /// on the freshly observed range.
    fn steal_back(&self, v: usize) -> Option<usize> {
        let d = &self.deques[v];
        let mut cur = d.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match d.compare_exchange(cur, pack(lo, hi - 1), Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(hi - 1),
                Err(now) => cur = now,
            }
        }
    }

    /// Claim the next chunk for worker `w`: own deque first (front), then
    /// scan victims round-robin starting at `w + 1`, stealing from the
    /// back. `None` means every deque was observed empty — the region may
    /// still have chunks *executing* on other workers, but none are left to
    /// claim, so the worker leaves instead of spinning.
    fn next_chunk(&self, w: usize) -> Option<usize> {
        if let Some(c) = self.pop_front(w) {
            return Some(c);
        }
        let workers = self.deques.len();
        for off in 1..workers {
            if let Some(c) = self.steal_back((w + off) % workers) {
                return Some(c);
            }
        }
        None
    }

    /// Execute one claimed chunk: take its cell, run `work`, store the slot
    /// — or, on panic, stash the payload and poison the region. `work` runs
    /// outside every lock, so a panic can never poison region state.
    fn execute(&self, c: usize) {
        // SAFETY: `c` came out of a successful claim CAS, which is the
        // exclusive (and exactly-once) path to `cells[c]`/`slots[c]` — see
        // the `Sync` impl justification.
        let (start, chunk) = unsafe { &mut *self.cells[c].get() }
            .take()
            // Unreachable by the claim-CAS exactly-once invariant; if the
            // protocol is broken, loud is better than silently re-running a
            // chunk. bda-check: allow(panic_path)
            .expect("chunk claimed twice");
        match std::panic::catch_unwind(AssertUnwindSafe(|| (self.work)(start, chunk))) {
            // SAFETY: as above — sole claimant of slot `c`.
            Ok(r) => unsafe { *self.slots[c].get() = Some(r) },
            Err(p) => {
                // Poison propagation is the point here: if another worker
                // panicked while stashing, re-raising is correct.
                // bda-check: allow(panic_path)
                let mut payload = self.payload.lock().unwrap();
                if payload.is_none() {
                    *payload = Some(p);
                }
                self.poisoned.store(true, Ordering::Release);
            }
        }
    }

    /// Has any worker caught a panic in this region?
    pub(crate) fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Claim-and-execute exactly one chunk; `false` if nothing was left to
    /// claim. The production executor uses this to time the first chunk for
    /// its fast-path decision before committing to a dispatch (the loom
    /// build has no fast path, hence the allow).
    #[cfg_attr(feature = "loom-model", allow(dead_code))]
    pub(crate) fn run_one(&self, w: usize) -> bool {
        match self.next_chunk(w) {
            Some(c) => {
                self.execute(c);
                true
            }
            None => false,
        }
    }

    /// Claim-and-execute until the region is drained or poisoned. Assumes
    /// the current thread is already marked in-region (see
    /// [`Region::worker_loop`] / the production caller path).
    pub(crate) fn drain(&self, w: usize) {
        while let Some(c) = self.next_chunk(w) {
            if self.poisoned() {
                return;
            }
            self.execute(c);
        }
    }

    /// Full worker entry point: mark the thread in-region (so nested
    /// parallel operations serialize) and drain.
    pub fn worker_loop(&self, w: usize) {
        let _depth = DepthGuard::enter();
        self.drain(w);
    }

    /// Consume the quiesced region: resume the first caught panic, or
    /// return per-chunk results in ascending chunk order. Callers must
    /// ensure no worker still holds a reference (loom: scope join;
    /// production: the executor-count latch in [`crate::pool`]).
    pub fn into_results(self) -> Vec<R> {
        if self.poisoned() {
            let p = self
                .payload
                .lock()
                .unwrap()
                .take()
                .expect("poisoned region without a panic payload");
            std::panic::resume_unwind(p);
        }
        self.slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("worker finished without storing its chunk result")
            })
            .collect()
    }
}

/// Run `work` over every chunk of `items` on up to `threads` workers,
/// returning per-chunk results in ascending chunk order.
///
/// Nested calls (from inside a worker) are forced to the sequential path
/// regardless of `threads`, which bounds the total thread count and makes
/// nesting deadlock-free by construction. A panic inside `work` on any
/// worker propagates to the caller once the region quiesces.
///
/// Under `loom-model` the parallel path runs on scoped model threads so
/// the checker can explore every bounded interleaving of the deque
/// protocol; in production it runs on the persistent parked pool in
/// [`crate::pool`], with a measured sequential fast path for regions too
/// small to amortize a dispatch.
pub fn run_chunks_with<B, R, W>(threads: usize, items: Vec<B>, work: W) -> Vec<R>
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    let tasks = split_chunks(items);
    let n_chunks = tasks.len();
    if n_chunks == 0 {
        return Vec::new();
    }
    let threads = if in_parallel_region() {
        1
    } else {
        threads.clamp(1, n_chunks)
    };
    if threads == 1 {
        // Reference path: identical chunk structure, one worker, no
        // region state at all.
        return tasks.into_iter().map(|(s, chunk)| work(s, chunk)).collect();
    }

    let region = Region::new(tasks, threads, work);
    execute_region(&region);
    region.into_results()
}

/// Model executor: every worker (the caller is worker 0) runs the shared
/// loop on a scoped model thread, and the scope join is the quiescence
/// barrier.
#[cfg(feature = "loom-model")]
fn execute_region<B, R, W>(region: &Region<B, R, W>)
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    crate::facade::scope(|s| {
        for w in 1..region.n_workers() {
            s.spawn(move || region.worker_loop(w));
        }
        region.worker_loop(0);
    });
}

/// Production executor: the persistent parked pool, plus the measured
/// sequential fast path (see [`crate::pool`]).
#[cfg(not(feature = "loom-model"))]
fn execute_region<B, R, W>(region: &Region<B, R, W>)
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    crate::pool::run_region(region);
}
