//! The model-checked pool protocol: deterministic chunk splitting, atomic
//! chunk claiming (work stealing in its simplest form), take-once chunk
//! cells, index-addressed result slots, and ascending-order combination.
//!
//! Everything in this module goes through [`crate::facade`] for its
//! synchronization, so the **same code** executes under `std::sync` in
//! production and under the vendored loom model checker in `bda-check`'s
//! interleaving suite (`cargo test -p bda-check --features loom-model`).
//! The suite verifies, over every bounded interleaving at 2 and 3 model
//! threads:
//!
//! * every chunk is claimed and executed exactly once;
//! * per-chunk results are combined in ascending chunk order regardless of
//!   which worker computed them (the determinism contract);
//! * nested regions serialize on the calling worker and cannot deadlock;
//! * a panic in any worker propagates to the region's caller.

use crate::facade::{scope, AtomicUsize, Mutex, Ordering};
use std::cell::Cell;

/// Upper bound on work chunks per parallel region. More chunks than the
/// widest realistic worker count gives the stealing loop room to balance
/// uneven per-chunk cost; a bound keeps per-chunk bookkeeping negligible.
pub const MAX_CHUNKS: usize = 32;

thread_local! {
    /// How many parallel regions enclose the current thread (> 0 on pool
    /// workers); nested regions run sequentially.
    static POOL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Is the current thread already inside a parallel region?
pub fn in_parallel_region() -> bool {
    POOL_DEPTH.with(|d| d.get()) > 0
}

/// RAII marker that the current thread is executing inside a parallel
/// region, so nested parallel operations serialize instead of spawning.
struct DepthGuard;

impl DepthGuard {
    fn enter() -> Self {
        POOL_DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        POOL_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Split `items` into the deterministic chunk set for its length: balanced
/// contiguous runs, at most [`MAX_CHUNKS`] of them. Returns
/// `(global_start_index, chunk_items)` pairs in input order. Chunk
/// boundaries are a pure function of `items.len()` — never of the thread
/// count — which is what makes N-thread output bit-identical to 1-thread
/// output.
pub fn split_chunks<B>(items: Vec<B>) -> Vec<(usize, Vec<B>)> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let n_chunks = len.min(MAX_CHUNKS);
    let mut tasks = Vec::with_capacity(n_chunks);
    let mut rest = items;
    let mut start = 0;
    for c in 0..n_chunks {
        let end = (c + 1) * len / n_chunks;
        let tail = rest.split_off(end - start);
        tasks.push((start, std::mem::replace(&mut rest, tail)));
        start = end;
    }
    tasks
}

/// Run `work` over every chunk of `items` on up to `threads` workers,
/// returning per-chunk results in ascending chunk order.
///
/// The protocol: one take-once cell per chunk plus a shared atomic claim
/// index. A worker claims chunk `c` by `fetch_add` on the index, takes
/// `(start, chunk)` out of cell `c`, runs `work`, and writes the result
/// into slot `c`. A fast worker that exhausts its claim immediately claims
/// the next unprocessed chunk, so load imbalance is absorbed without
/// per-thread queues. The claim index is the *only* line of mutual
/// exclusion between workers and a chunk cell — which is exactly the kind
/// of invariant the loom suite checks mechanically.
///
/// Nested calls (from inside a worker) are forced to the sequential path
/// regardless of `threads`, which bounds the total thread count and makes
/// nesting deadlock-free by construction. A panic inside `work` on any
/// worker propagates to the caller once the region is joined.
pub fn run_chunks_with<B, R, W>(threads: usize, items: Vec<B>, work: W) -> Vec<R>
where
    B: Send,
    R: Send,
    W: Fn(usize, Vec<B>) -> R + Sync,
{
    let tasks = split_chunks(items);
    let n_chunks = tasks.len();
    if n_chunks == 0 {
        return Vec::new();
    }
    let threads = if in_parallel_region() {
        1
    } else {
        threads.clamp(1, n_chunks)
    };
    if threads == 1 {
        // Reference path: identical chunk structure, one worker.
        return tasks.into_iter().map(|(s, chunk)| work(s, chunk)).collect();
    }

    // One take-once cell per chunk: a worker claims index `c` through the
    // atomic counter, then takes `(start, chunk)` out of its cell.
    type ChunkQueue<B> = Vec<Mutex<Option<(usize, Vec<B>)>>>;
    let queue: ChunkQueue<B> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let (queue, slots, next, work) = (&queue, &slots, &next, &work);
    scope(|s| {
        let worker = move || {
            let _depth = DepthGuard::enter();
            loop {
                // Acquire pairs with the Release below: claiming chunk `c`
                // must also acquire whatever the previous claimant
                // published, and publishing our slot write before the next
                // claim keeps the claim index a synchronization spine for
                // the whole region.
                let c = next.fetch_add(1, Ordering::AcqRel);
                if c >= n_chunks {
                    break;
                }
                let (start, chunk) = queue[c]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("chunk claimed twice");
                let r = work(start, chunk);
                *slots[c].lock().unwrap() = Some(r);
            }
        };
        for _ in 1..threads {
            s.spawn(worker);
        }
        // The calling thread is worker zero.
        worker();
    });
    slots
        .iter()
        .map(|m| {
            m.lock()
                .unwrap()
                .take()
                .expect("worker finished without storing its chunk result")
        })
        .collect()
}
