//! Offline stand-in for the `crossbeam` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This crate provides the
//! subset used by the workspace: `channel::{bounded, unbounded}` MPMC
//! channels with blocking, non-blocking and timed receive, built on a
//! `Mutex<VecDeque>` + two `Condvar`s.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        /// Signalled when an item is pushed or all senders drop.
        not_empty: Condvar,
        /// Signalled when an item is popped or all receivers drop.
        not_full: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half. `Clone` for MPMC use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half. `Clone` for MPMC use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// All receivers disconnected; the unsent value is returned.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is drained.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty disconnected channel")
        }
    }

    /// Channel with at most `cap` queued items; sends block when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    /// Channel with unbounded queue; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is queued or every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.items.len() >= cap.max(1) => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            if let Some(v) = inner.items.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Drain currently queued values without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap();
        }

        #[test]
        fn drop_sender_disconnects() {
            let (tx, rx) = bounded::<u8>(2);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn drop_receiver_fails_send() {
            let (tx, rx) = bounded(2);
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = bounded(2);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(30)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Ok(9));
        }

        #[test]
        fn try_iter_drains_queue() {
            let (tx, rx) = bounded(8);
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
    }
}
