//! Offline stand-in for the `proptest` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This is a *working* mini
//! property-testing engine, not a no-op: the `proptest!` macro samples each
//! strategy `cases` times from a deterministic per-test RNG and runs the
//! body. Supported strategy surface (everything the workspace uses): numeric
//! ranges, `any::<u64|bool>()`, tuples of strategies, and
//! `prop::collection::vec`. No shrinking — failures report the sampled
//! inputs via the deterministic seed instead.

/// Deterministic splitmix64 stream, seeded from the test's module path so
/// every run of a given test sees the same cases.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                assert!(lo < hi, "empty range strategy");
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `any::<T>()` — the full value domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Run-count configuration, settable per block via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count range for `vec`.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};

    /// The `prop::` path alias used by `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples every strategy `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // The body runs inside a zero-argument closure *capturing*
                // the sampled locals (their types are already concrete, so
                // method lookup in the body resolves), and `prop_assume!`
                // can skip the case via an early return.
                let mut __case_fn = move || $body;
                __case_fn();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            n in 3usize..17,
            x in -4.0f64..9.5,
            s in any::<u64>(),
            flag in any::<bool>(),
        ) {
            assert!((3..17).contains(&n));
            assert!((-4.0..9.5).contains(&x));
            let _ = (s, flag);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..100, 2..6)) {
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..10, 0.0f64..1.0), k in 0u64..20) {
            prop_assume!(k != 7);
            assert_ne!(k, 7);
            assert!(pair.0 < 10 && pair.1 < 1.0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
