//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for config/record structs
//! but never serializes at runtime (no serde_json/bincode consumers), so the
//! derives expand to nothing. The `attributes(serde)` registration keeps any
//! future `#[serde(...)]` helper attributes from becoming hard errors.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
