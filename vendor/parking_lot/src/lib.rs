//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). `Mutex`/`RwLock` wrap the
//! std primitives with parking_lot's unpoisoned `lock()` signature.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// parking_lot locks have no poisoning; a poisoned std lock only occurs
    /// after a panic while held, where propagating the panic is acceptable.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
