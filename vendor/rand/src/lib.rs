//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This crate provides
//! `SmallRng` (a splitmix64-seeded xoshiro256**), `SeedableRng`, and the
//! `Rng::gen` surface the workspace uses. The generated stream differs from
//! the real crate, but all consumers treat the stream statistically, not
//! bit-for-bit.

/// Core uniform generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over an `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform in `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.gen::<f64>()
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait SampleUniform {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — small, fast, good quality.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
