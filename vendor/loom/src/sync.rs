//! `loom::sync` — shim atomics and `Mutex` whose every access routes
//! through the model runtime.

use crate::rt;
use std::cell::UnsafeCell;

pub mod atomic {
    use super::*;
    pub use std::sync::atomic::Ordering;

    fn acq(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn rel(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn sc(order: Ordering) -> bool {
        matches!(order, Ordering::SeqCst)
    }

    macro_rules! shim_atomic {
        ($name:ident, $ty:ty) => {
            /// Model-checked atomic: values live in the runtime's
            /// modification-order history, not in a machine word, so loads
            /// can (and do, as explored decisions) observe any value a real
            /// weak-memory execution could.
            #[derive(Debug)]
            pub struct $name {
                id: usize,
            }

            impl $name {
                /// Must be created inside `loom::model` (the atomic
                /// registers with the active execution).
                #[allow(clippy::new_without_default)]
                pub fn new(value: $ty) -> Self {
                    let id = rt::with_ctx(|exec, _| exec.atomic_new(value as u64));
                    $name { id }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    rt::with_ctx(|exec, me| exec.atomic_load(me, self.id, acq(order), sc(order)))
                        as $ty
                }

                pub fn store(&self, value: $ty, order: Ordering) {
                    rt::with_ctx(|exec, me| {
                        exec.atomic_store(me, self.id, value as u64, rel(order), sc(order))
                    })
                }

                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    rt::with_ctx(|exec, me| {
                        exec.atomic_rmw(
                            me,
                            self.id,
                            |_| Some(value as u64),
                            acq(order),
                            rel(order),
                            sc(order),
                        )
                    }) as $ty
                }

                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    rt::with_ctx(|exec, me| {
                        exec.atomic_rmw(
                            me,
                            self.id,
                            |prev| Some((prev as $ty).wrapping_add(value) as u64),
                            acq(order),
                            rel(order),
                            sc(order),
                        )
                    }) as $ty
                }

                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    rt::with_ctx(|exec, me| {
                        exec.atomic_rmw(
                            me,
                            self.id,
                            |prev| Some((prev as $ty).wrapping_sub(value) as u64),
                            acq(order),
                            rel(order),
                            sc(order),
                        )
                    }) as $ty
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    let prev = rt::with_ctx(|exec, me| {
                        exec.atomic_rmw(
                            me,
                            self.id,
                            |prev| (prev == current as u64).then_some(new as u64),
                            // The acquire side applies on both outcomes with
                            // the stronger of the two orderings; the release
                            // side only matters when the store happens.
                            acq(success) || acq(failure),
                            rel(success),
                            sc(success),
                        )
                    }) as $ty;
                    if prev == current {
                        Ok(prev)
                    } else {
                        Err(prev)
                    }
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    // No spurious failures in the model: weak == strong.
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    shim_atomic!(AtomicUsize, usize);
    shim_atomic!(AtomicU64, u64);
    shim_atomic!(AtomicU32, u32);

    /// Bool variant, stored as 0/1 in the shared history machinery.
    #[derive(Debug)]
    pub struct AtomicBool {
        inner: AtomicUsize,
    }

    impl AtomicBool {
        #[allow(clippy::new_without_default)]
        pub fn new(value: bool) -> Self {
            AtomicBool {
                inner: AtomicUsize::new(usize::from(value)),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.inner.load(order) != 0
        }

        pub fn store(&self, value: bool, order: Ordering) {
            self.inner.store(usize::from(value), order)
        }

        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            self.inner.swap(usize::from(value), order) != 0
        }
    }
}

/// Model-checked mutex with the `std::sync::Mutex` API subset the pool
/// protocol uses (`lock().unwrap()`), including poisoning on panic.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the runtime serializes model threads and enforces mutual
// exclusion (a thread blocks in `mutex_lock` until it is the owner), so the
// cell is only touched by the lock holder.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

pub struct PoisonError<G> {
    guard: G,
}

impl<G> PoisonError<G> {
    pub fn into_inner(self) -> G {
        self.guard
    }
}

impl<G> std::fmt::Debug for PoisonError<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoisonError { .. }")
    }
}

impl<G> std::fmt::Display for PoisonError<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("poisoned lock: another task failed inside")
    }
}

pub type LockResult<G> = Result<G, PoisonError<G>>;

impl<T> Mutex<T> {
    /// Must be created inside `loom::model`.
    pub fn new(data: T) -> Self {
        let id = rt::with_ctx(|exec, _| exec.mutex_new());
        Mutex {
            id,
            data: UnsafeCell::new(data),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let poisoned = rt::with_ctx(|exec, me| exec.mutex_lock(me, self.id));
        let guard = MutexGuard { lock: self };
        if poisoned {
            Err(PoisonError { guard })
        } else {
            Ok(guard)
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: we are the model-level owner of the mutex.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: we are the model-level owner of the mutex.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let poison = std::thread::panicking();
        rt::with_ctx(|exec, me| exec.mutex_unlock(me, self.lock.id, poison));
    }
}
