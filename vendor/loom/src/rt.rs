//! The model-checking runtime: one serialized execution of the user closure
//! per *schedule*, where every visible operation (atomic access, mutex
//! acquire, spawn, join, yield) is a decision point recorded in a trace.
//!
//! # Execution model
//!
//! Model threads are real OS threads, but at most one holds the *grant* at
//! any instant: a granted thread runs user code until its next visible
//! operation, where it calls [`Execution::reschedule`] — the scheduler then
//! picks which runnable thread performs the next visible operation. The
//! pick is a [`Trace`] decision, so replaying a trace prefix reproduces an
//! interleaving exactly, and depth-first backtracking over decisions
//! enumerates interleavings systematically (in an order randomized by the
//! seed, so a truncated search still samples broadly).
//!
//! # Memory model
//!
//! Atomics track their full modification order. Every store carries the
//! storing thread's vector clock; release-ordered stores publish it, and
//! RMWs extend the release sequence of the store they displace. A non-RMW
//! load may read *any* coherent store — i.e. any store not already ordered
//! before the reader's view by happens-before, read coherence, or (for
//! `SeqCst` loads) the last `SeqCst` store — and which store it reads is
//! itself an explored decision. That is enough weak-memory fidelity to
//! catch lost updates (racy load/store increments), double-claims, and
//! missed-release publication bugs; it is **not** a complete C++11 model
//! (no fences, and the `SeqCst` total order is approximated — see
//! vendor/README.md).

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear model threads down after a model-level
/// failure (deadlock, op-budget blowout). Swallowed by thread wrappers;
/// never surfaced as a user panic.
pub(crate) struct ModelAbort;

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Hard cap on visible ops per schedule — a spin loop that never yields to
/// the scheduler would otherwise explore forever.
const DEFAULT_MAX_OPS: usize = 100_000;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model-thread indices. Component `t` counts the
/// visible events thread `t` has performed; `a ⊑ b` iff every component of
/// `a` is ≤ the matching component of `b`.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn bump(&mut self, t: usize) -> u64 {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
        self.0[t]
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Does this clock contain the event `(thread, stamp)`?
    fn contains(&self, thread: usize, stamp: u64) -> bool {
        self.get(thread) >= stamp
    }
}

// ---------------------------------------------------------------------------
// Decision trace (DFS with seed-randomized branch order)
// ---------------------------------------------------------------------------

/// One recorded decision: `rank` (0-based, in the seed-permuted order) out
/// of `n` alternatives. Decisions with a single alternative are never
/// recorded — they carry no information and would bloat the search depth.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Decision {
    pub rank: usize,
    pub n: usize,
}

#[derive(Debug, Default)]
pub(crate) struct Trace {
    decisions: Vec<Decision>,
    cursor: usize,
    seed: u64,
}

/// splitmix64 — deterministic per-(seed, position) stream for branch-order
/// permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Trace {
    fn new(seed: u64, prefix: Vec<Decision>) -> Self {
        Trace {
            decisions: prefix,
            cursor: 0,
            seed,
        }
    }

    /// Map a decision rank to a concrete alternative index through a
    /// Fisher-Yates permutation keyed by (seed, decision position). The
    /// DFS backtracks over *ranks*, so with a fixed seed exploration is
    /// deterministic, while different seeds walk the tree in different
    /// branch orders.
    fn alternative(&self, position: usize, n: usize, rank: usize) -> usize {
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = self.seed ^ (position as u64).wrapping_mul(0x6a09_e667_f3bc_c909);
        for i in (1..n).rev() {
            state = splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm[rank]
    }

    /// Choose among `n` alternatives, replaying the prefix when present and
    /// extending the trace (rank 0 first) past it. Returns the concrete
    /// alternative index.
    fn decide(&mut self, n: usize) -> Result<usize, String> {
        debug_assert!(n > 0);
        if n == 1 {
            return Ok(0);
        }
        let position = self.cursor;
        let rank = if position < self.decisions.len() {
            let d = self.decisions[position];
            if d.n != n {
                return Err(format!(
                    "non-deterministic model body: decision {position} had {} alternatives on a \
                     previous run but {n} now (the closure must be a pure function of the schedule)",
                    d.n
                ));
            }
            d.rank
        } else {
            self.decisions.push(Decision { rank: 0, n });
            0
        };
        self.cursor += 1;
        Ok(self.alternative(position, n, rank))
    }
}

// ---------------------------------------------------------------------------
// Per-thread / per-object state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting on a mutex (index) or a thread exit (index).
    BlockedOnMutex(usize),
    BlockedOnJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    panicked: bool,
    joined: bool,
}

/// One store in an atomic's modification order.
#[derive(Debug)]
struct StoreEvent {
    value: u64,
    /// Event stamp `(thread, clock-component)` of the store itself.
    by: (usize, u64),
    /// Published synchronization clock: `Some` for release-ordered stores,
    /// and for RMWs the continuation of the displaced store's release
    /// sequence (joined with the RMW's own clock when release-ordered).
    release: Option<VClock>,
}

#[derive(Debug, Default)]
struct AtomicState {
    stores: Vec<StoreEvent>,
    /// Per-thread index of the newest store each thread has observed
    /// (read-coherence floor).
    seen: Vec<usize>,
    /// Index of the most recent `SeqCst` store, if any.
    last_sc: Option<usize>,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<usize>,
    poisoned: bool,
    /// Acquire/release clock carried by the lock itself.
    clock: VClock,
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    clocks: Vec<VClock>,
    /// Final clocks of finished threads, joined into joiners.
    final_clocks: Vec<Option<VClock>>,
    atomics: Vec<AtomicState>,
    mutexes: Vec<MutexState>,
    running: Option<usize>,
    trace: Trace,
    ops: usize,
    max_ops: usize,
    /// Model-level failure (deadlock, livelock, nondeterminism).
    failure: Option<String>,
    /// First user panic that escaped a model thread's closure.
    panic_payloads: HashMap<usize, PanicPayload>,
    /// Spawned-but-unjoined thread ids per open `thread::scope` frame.
    scope_pending: HashMap<usize, Vec<usize>>,
    next_scope_id: usize,
    all_finished: bool,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(exec: Arc<Execution>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, id)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Run `f` with the current model-thread context, or panic with a clear
/// message when a loom primitive is used outside `loom::model`.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    CTX.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some((exec, id)) => f(exec, *id),
            None => panic!(
                "loom primitive used outside loom::model — this shim's types only work inside \
                 a model run (build without the loom facade for production execution)"
            ),
        }
    })
}

impl Execution {
    fn new(seed: u64, prefix: Vec<Decision>, max_ops: usize) -> Self {
        let mut clocks = vec![VClock::default()];
        clocks[0].bump(0);
        Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    panicked: false,
                    joined: true, // the root thread is implicitly joined by the driver
                }],
                clocks,
                final_clocks: vec![None],
                atomics: Vec::new(),
                mutexes: Vec::new(),
                running: Some(0),
                trace: Trace::new(seed, prefix),
                ops: 0,
                max_ops,
                failure: None,
                panic_payloads: HashMap::new(),
                scope_pending: HashMap::new(),
                next_scope_id: 0,
                all_finished: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Record a model-level failure and wake everyone so they can abort.
    fn fail(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.running = None;
        self.cv.notify_all();
    }

    fn abort_if_failed(&self, st: &ExecState) {
        if st.failure.is_some() {
            panic::panic_any(ModelAbort);
        }
    }

    /// Pick the next thread to perform a visible operation. Assumes the
    /// caller has already updated its own status. A decision point.
    fn pick_next(&self, st: &mut ExecState) {
        st.running = None;
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.all_finished = true;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                .collect();
            self.fail(
                st,
                format!(
                    "deadlock: every live thread is blocked ({})",
                    blocked.join("; ")
                ),
            );
            return;
        }
        match st.trace.decide(runnable.len()) {
            Ok(pick) => {
                st.running = Some(runnable[pick]);
                self.cv.notify_all();
            }
            Err(msg) => self.fail(st, msg),
        }
    }

    /// Block until this thread holds the grant (or the model failed).
    fn wait_for_grant<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            self.abort_if_failed(&st);
            if st.running == Some(me) {
                return st;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// The visible-operation boundary: yield the grant, let the scheduler
    /// pick who goes next, and wait to be granted again. On return the
    /// caller holds both the grant and the state lock, and may perform its
    /// operation atomically with respect to the model.
    fn reschedule(&self, me: usize) -> MutexGuard<'_, ExecState> {
        let mut st = self.lock();
        self.abort_if_failed(&st);
        debug_assert_eq!(st.running, Some(me), "reschedule without the grant");
        st.ops += 1;
        if st.ops > st.max_ops {
            let max = st.max_ops;
            self.fail(
                &mut st,
                format!("op budget ({max}) exceeded — livelock or unbounded spin loop?"),
            );
            self.abort_if_failed(&st);
        }
        self.pick_next(&mut st);
        self.wait_for_grant(st, me)
    }

    /// Like [`reschedule`], but must be called while already holding the
    /// state lock and *not* holding the grant (blocking paths).
    fn wait_until_granted<'a>(
        &'a self,
        st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        self.wait_for_grant(st, me)
    }

    // -- thread lifecycle ---------------------------------------------------

    /// Register a child thread, spawned by `parent` (which holds the
    /// grant). Returns the child's index. Spawn is a release edge: the
    /// child starts with a copy of the parent's clock.
    pub(crate) fn register_thread(self: &Arc<Self>, parent: usize) -> usize {
        let mut st = self.reschedule(parent);
        let id = st.threads.len();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            panicked: false,
            joined: false,
        });
        let mut child_clock = st.clocks[parent].clone();
        child_clock.bump(id);
        st.clocks.push(child_clock);
        st.final_clocks.push(None);
        st.clocks[parent].bump(parent);
        for a in &mut st.atomics {
            a.seen.resize(id + 1, 0);
        }
        id
    }

    /// First wait of a freshly spawned model thread.
    pub(crate) fn wait_first_grant(&self, me: usize) {
        let st = self.lock();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            drop(self.wait_for_grant(st, me));
        }));
        if result.is_err() {
            // Model failed before this thread ever ran; finish quietly.
            self.finish(me, false);
            panic::panic_any(ModelAbort);
        }
    }

    /// Mark a thread finished (normally or by panic), wake joiners, and
    /// hand the grant onward.
    pub(crate) fn finish(&self, me: usize, panicked: bool) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.threads[me].panicked = panicked;
        let final_clock = st.clocks[me].clone();
        st.final_clocks[me] = Some(final_clock);
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::BlockedOnJoin(me))
            .map(|(i, _)| i)
            .collect();
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
        if st.failure.is_none() {
            self.pick_next(&mut st);
        } else {
            self.cv.notify_all();
        }
    }

    pub(crate) fn set_panic_payload(&self, me: usize, payload: PanicPayload) {
        let mut st = self.lock();
        st.panic_payloads.insert(me, payload);
    }

    pub(crate) fn take_panic_payload(&self, id: usize) -> Option<PanicPayload> {
        let mut st = self.lock();
        st.panic_payloads.remove(&id)
    }

    /// Model-level join: block until `target` finishes, then absorb its
    /// final clock (join is an acquire edge). Marks the target joined.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let mut st = self.reschedule(me);
        loop {
            if st.threads[target].status == Status::Finished {
                st.threads[target].joined = true;
                let fc = st.final_clocks[target].clone();
                if let Some(fc) = fc {
                    st.clocks[me].join(&fc);
                }
                st.clocks[me].bump(me);
                return;
            }
            st.threads[me].status = Status::BlockedOnJoin(target);
            self.pick_next(&mut st);
            st = self.wait_until_granted(st, me);
            st.threads[me].status = Status::Runnable;
        }
    }

    /// A bare scheduling point with no attached operation.
    pub(crate) fn yield_now(&self, me: usize) {
        drop(self.reschedule(me));
    }

    // -- scope bookkeeping ---------------------------------------------------

    pub(crate) fn scope_open(&self) -> usize {
        let mut st = self.lock();
        let sid = st.next_scope_id;
        st.next_scope_id += 1;
        st.scope_pending.insert(sid, Vec::new());
        sid
    }

    pub(crate) fn scope_track(&self, sid: usize, tid: usize) {
        let mut st = self.lock();
        if let Some(p) = st.scope_pending.get_mut(&sid) {
            p.push(tid);
        }
    }

    /// An explicit `join` consumed this handle; the scope exit must not
    /// re-join (or re-propagate) it.
    pub(crate) fn scope_consume(&self, sid: usize, tid: usize) {
        let mut st = self.lock();
        if let Some(p) = st.scope_pending.get_mut(&sid) {
            p.retain(|&t| t != tid);
        }
    }

    pub(crate) fn scope_drain(&self, sid: usize) -> Vec<usize> {
        let mut st = self.lock();
        st.scope_pending.remove(&sid).unwrap_or_default()
    }

    // -- mutexes ------------------------------------------------------------

    pub(crate) fn mutex_new(self: &Arc<Self>) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    /// Returns `true` if the mutex was poisoned by a panicking holder.
    pub(crate) fn mutex_lock(&self, me: usize, mid: usize) -> bool {
        let mut st = self.reschedule(me);
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                let mclock = st.mutexes[mid].clock.clone();
                st.clocks[me].join(&mclock);
                st.clocks[me].bump(me);
                return st.mutexes[mid].poisoned;
            }
            st.threads[me].status = Status::BlockedOnMutex(mid);
            self.pick_next(&mut st);
            st = self.wait_until_granted(st, me);
            st.threads[me].status = Status::Runnable;
        }
    }

    /// Release without a scheduling point (the releasing thread keeps the
    /// grant); waiters become runnable for the next decision.
    pub(crate) fn mutex_unlock(&self, me: usize, mid: usize, poison: bool) {
        let mut st = self.lock();
        debug_assert_eq!(st.mutexes[mid].owner, Some(me), "unlock by non-owner");
        st.mutexes[mid].owner = None;
        if poison {
            st.mutexes[mid].poisoned = true;
        }
        st.clocks[me].bump(me);
        let released = st.clocks[me].clone();
        st.mutexes[mid].clock.join(&released);
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::BlockedOnMutex(mid))
            .map(|(i, _)| i)
            .collect();
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
    }

    // -- atomics ------------------------------------------------------------

    pub(crate) fn atomic_new(self: &Arc<Self>, value: u64) -> usize {
        let mut st = self.lock();
        let n_threads = st.threads.len();
        let creator = st.running.unwrap_or(0);
        let by = (creator, st.clocks[creator].get(creator));
        st.atomics.push(AtomicState {
            stores: vec![StoreEvent {
                value,
                by,
                release: None,
            }],
            seen: vec![0; n_threads],
            last_sc: None,
        });
        st.atomics.len() - 1
    }

    /// Coherence floor: the oldest store index thread `me` may still read.
    fn read_floor(st: &ExecState, me: usize, aid: usize, seq_cst_load: bool) -> usize {
        let a = &st.atomics[aid];
        let mut floor = a.seen[me];
        // A store whose event is already in my clock hides everything older.
        for (i, s) in a.stores.iter().enumerate().rev() {
            if st.clocks[me].contains(s.by.0, s.by.1) {
                floor = floor.max(i);
                break;
            }
        }
        if seq_cst_load {
            if let Some(sc) = a.last_sc {
                floor = floor.max(sc);
            }
        }
        floor
    }

    /// Non-RMW load. `acquire` controls the synchronizing side; which
    /// coherent store is read is an explored decision.
    pub(crate) fn atomic_load(&self, me: usize, aid: usize, acquire: bool, seq_cst: bool) -> u64 {
        let mut st = self.reschedule(me);
        let floor = Self::read_floor(&st, me, aid, seq_cst);
        let latest = st.atomics[aid].stores.len() - 1;
        let n = latest - floor + 1;
        let idx = match st.trace.decide(n) {
            Ok(pick) => floor + pick,
            Err(msg) => {
                self.fail(&mut st, msg);
                self.abort_if_failed(&st);
                unreachable!()
            }
        };
        let (value, release) = {
            let s = &st.atomics[aid].stores[idx];
            (s.value, s.release.clone())
        };
        if acquire {
            if let Some(rel) = release {
                st.clocks[me].join(&rel);
            }
        }
        st.atomics[aid].seen[me] = st.atomics[aid].seen[me].max(idx);
        st.clocks[me].bump(me);
        value
    }

    /// Non-RMW store: appended to the modification order.
    pub(crate) fn atomic_store(
        &self,
        me: usize,
        aid: usize,
        value: u64,
        release: bool,
        seq_cst: bool,
    ) {
        let mut st = self.reschedule(me);
        let stamp = st.clocks[me].bump(me);
        let rel = release.then(|| st.clocks[me].clone());
        let a = &mut st.atomics[aid];
        a.stores.push(StoreEvent {
            value,
            by: (me, stamp),
            release: rel,
        });
        let idx = a.stores.len() - 1;
        a.seen[me] = idx;
        if seq_cst {
            a.last_sc = Some(idx);
        }
    }

    /// Read-modify-write: atomically reads the newest store and appends the
    /// transformed value, continuing the displaced store's release
    /// sequence. Returns the previous value.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        aid: usize,
        f: impl FnOnce(u64) -> Option<u64>,
        acquire: bool,
        release: bool,
        seq_cst: bool,
    ) -> u64 {
        let mut st = self.reschedule(me);
        let latest = st.atomics[aid].stores.len() - 1;
        let (prev, prev_release) = {
            let s = &st.atomics[aid].stores[latest];
            (s.value, s.release.clone())
        };
        if acquire {
            if let Some(rel) = &prev_release {
                st.clocks[me].join(rel);
            }
        }
        st.atomics[aid].seen[me] = latest;
        if let Some(new) = f(prev) {
            let stamp = st.clocks[me].bump(me);
            // Release-sequence continuation: an RMW's published clock is
            // the displaced store's chain, extended by our own clock when
            // this RMW is itself release-ordered.
            let rel = match (prev_release, release) {
                (Some(mut chain), true) => {
                    chain.join(&st.clocks[me]);
                    Some(chain)
                }
                (Some(chain), false) => Some(chain),
                (None, true) => Some(st.clocks[me].clone()),
                (None, false) => None,
            };
            let a = &mut st.atomics[aid];
            a.stores.push(StoreEvent {
                value: new,
                by: (me, stamp),
                release: rel,
            });
            let idx = a.stores.len() - 1;
            a.seen[me] = idx;
            if seq_cst {
                a.last_sc = Some(idx);
            }
        } else {
            st.clocks[me].bump(me);
        }
        prev
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Outcome of a [`Builder::check`] run.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Schedules explored.
    pub iterations: usize,
    /// `true` when the whole interleaving space was enumerated before the
    /// budget ran out.
    pub exhausted: bool,
}

/// Exploration parameters. `max_iterations` bounds the number of schedules
/// (env `BDA_LOOM_MAX_ITER` overrides the default); `seed` randomizes the
/// DFS branch order so a budget-truncated search still samples the space
/// broadly (env `BDA_LOOM_SEED`).
#[derive(Clone, Debug)]
pub struct Builder {
    pub max_iterations: usize,
    pub seed: u64,
    pub max_ops: usize,
    /// Fail (panic) if the budget runs out before the space is exhausted.
    pub require_exhaustive: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_iterations: env_usize("BDA_LOOM_MAX_ITER", 8192),
            seed: env_usize("BDA_LOOM_SEED", 0x5eed) as u64,
            max_ops: DEFAULT_MAX_OPS,
            require_exhaustive: false,
        }
    }
}

static PANIC_HOOK: std::sync::Once = std::sync::Once::new();
static HOOK_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Model threads panic on every counterexample candidate (and on aborts);
/// the default hook would spam a backtrace per explored schedule. Install a
/// chained hook, once per process, that silences panics originating on
/// loom-named threads while model runs are active.
fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_loom_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("loom-"));
            if on_loom_thread && HOOK_ACTIVE.load(StdOrdering::Relaxed) {
                return;
            }
            prev(info);
        }));
    });
}

impl Builder {
    /// Explore interleavings of `f`, replaying it once per schedule. Panics
    /// (re-raising the user payload) on the first schedule in which `f`
    /// panics, and on model-level failures (deadlock, livelock).
    pub fn check<F>(&self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        HOOK_ACTIVE.store(true, StdOrdering::Relaxed);
        let result = self.check_inner(Arc::new(f));
        HOOK_ACTIVE.store(false, StdOrdering::Relaxed);
        match result {
            Ok(stats) => stats,
            Err((iteration, trace, outcome)) => {
                let shape: Vec<String> = trace
                    .iter()
                    .map(|d| format!("{}/{}", d.rank, d.n))
                    .collect();
                eprintln!(
                    "loom: counterexample at schedule {iteration} (seed {:#x}): decisions [{}]",
                    self.seed,
                    shape.join(", ")
                );
                match outcome {
                    FailOutcome::UserPanic(payload) => panic::resume_unwind(payload),
                    FailOutcome::Model(msg) => panic!("loom model failure: {msg}"),
                }
            }
        }
    }

    fn check_inner(
        &self,
        f: Arc<dyn Fn() + Send + Sync>,
    ) -> Result<Stats, (usize, Vec<Decision>, FailOutcome)> {
        let mut prefix: Vec<Decision> = Vec::new();
        for iteration in 0..self.max_iterations {
            let exec = Arc::new(Execution::new(self.seed, prefix.clone(), self.max_ops));
            let root = {
                let exec = Arc::clone(&exec);
                let f = Arc::clone(&f);
                std::thread::Builder::new()
                    .name("loom-root".into())
                    .spawn(move || {
                        set_ctx(Arc::clone(&exec), 0);
                        let r = panic::catch_unwind(AssertUnwindSafe(|| f()));
                        clear_ctx();
                        match r {
                            Ok(()) => exec.finish(0, false),
                            Err(p) if p.is::<ModelAbort>() => exec.finish(0, false),
                            Err(p) => {
                                exec.set_panic_payload(0, p);
                                exec.finish(0, true);
                            }
                        }
                    })
                    .expect("spawn loom root thread")
            };
            let _ = root.join();
            // Wait until every model thread (including detached spawns)
            // has reached `finish` so the state below is final.
            {
                let mut st = exec.lock();
                while !st.all_finished && st.failure.is_none() {
                    if st.threads.iter().all(|t| t.status == Status::Finished) {
                        break;
                    }
                    st = match exec.cv.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
            }
            let (failure, root_panic, unjoined_panic, trace) = {
                let mut st = exec.lock();
                let root_panic = st.panic_payloads.remove(&0);
                let unjoined_panic = st
                    .threads
                    .iter()
                    .enumerate()
                    .find(|(_, t)| t.panicked && !t.joined)
                    .map(|(i, _)| i);
                (
                    st.failure.take(),
                    root_panic,
                    unjoined_panic,
                    std::mem::take(&mut st.trace.decisions),
                )
            };
            if let Some(payload) = root_panic {
                return Err((iteration, trace, FailOutcome::UserPanic(payload)));
            }
            if let Some(msg) = failure {
                return Err((iteration, trace, FailOutcome::Model(msg)));
            }
            if let Some(tid) = unjoined_panic {
                return Err((
                    iteration,
                    trace,
                    FailOutcome::Model(format!(
                        "thread {tid} panicked and its handle was never joined"
                    )),
                ));
            }
            // Depth-first backtrack to the next unexplored schedule.
            prefix = trace;
            loop {
                match prefix.last_mut() {
                    None => {
                        return Ok(Stats {
                            iterations: iteration + 1,
                            exhausted: true,
                        })
                    }
                    Some(d) if d.rank + 1 < d.n => {
                        d.rank += 1;
                        break;
                    }
                    Some(_) => {
                        prefix.pop();
                    }
                }
            }
        }
        if self.require_exhaustive {
            return Err((
                self.max_iterations,
                prefix,
                FailOutcome::Model(format!(
                    "schedule budget ({}) exhausted before the interleaving space",
                    self.max_iterations
                )),
            ));
        }
        Ok(Stats {
            iterations: self.max_iterations,
            exhausted: false,
        })
    }
}

enum FailOutcome {
    UserPanic(PanicPayload),
    Model(String),
}

/// Explore interleavings of `f` with default bounds (see [`Builder`]).
pub fn model<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
