//! `loom::thread` — model-aware `spawn`, `scope`, and `yield_now` with the
//! `std::thread` surface the workspace uses.
//!
//! Model threads are real OS threads; the runtime serializes them so that
//! exactly one runs between visible operations. Scoped threads wrap
//! `std::thread::scope`, so borrowing from the enclosing stack works
//! exactly as with std — but joining happens at the *model* level first
//! (so the scheduler can explore orderings), and only then at the OS level
//! (which by construction no longer blocks).

use crate::rt::{self, ModelAbort};
use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type PanicPayload = Box<dyn Any + Send + 'static>;
type ValueSlot<T> = Arc<Mutex<Option<T>>>;

/// Yield the grant back to the scheduler: a pure decision point. Required
/// inside spin loops so the model can interleave (and bound) them.
pub fn yield_now() {
    rt::with_ctx(|exec, me| exec.yield_now(me));
}

/// Body wrapper shared by plain and scoped spawns: wait for the first
/// grant, run, stash the value or panic payload, and hand the grant on.
fn run_wrapped<T, F>(exec: &Arc<rt::Execution>, me: usize, slot: &ValueSlot<T>, f: F)
where
    F: FnOnce() -> T,
{
    rt::set_ctx(Arc::clone(exec), me);
    exec.wait_first_grant(me);
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    rt::clear_ctx();
    match r {
        Ok(v) => {
            if let Ok(mut s) = slot.lock() {
                *s = Some(v);
            }
            exec.finish(me, false);
        }
        Err(p) if p.is::<ModelAbort>() => exec.finish(me, false),
        Err(p) => {
            exec.set_panic_payload(me, p);
            exec.finish(me, true);
        }
    }
}

/// Join-side completion shared by plain and scoped handles.
fn collect_join<T>(
    exec: &Arc<rt::Execution>,
    me: usize,
    id: usize,
    slot: &ValueSlot<T>,
) -> Result<T, PanicPayload> {
    exec.join_thread(me, id);
    if let Some(payload) = exec.take_panic_payload(id) {
        return Err(payload);
    }
    let v = slot
        .lock()
        .ok()
        .and_then(|mut s| s.take())
        .expect("joined model thread left no value and no panic payload");
    Ok(v)
}

/// Handle to a detached (non-scoped) model thread.
pub struct JoinHandle<T> {
    id: usize,
    slot: ValueSlot<T>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> Result<T, PanicPayload> {
        rt::with_ctx(|exec, me| collect_join(exec, me, self.id, &self.slot))
    }
}

/// Spawn a `'static` model thread (the `std::thread::spawn` analogue).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: ValueSlot<T> = Arc::new(Mutex::new(None));
    let id = rt::with_ctx(|exec, me| {
        let id = exec.register_thread(me);
        let exec = Arc::clone(exec);
        let slot = Arc::clone(&slot);
        std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || run_wrapped(&exec, id, &slot, f))
            .expect("spawn loom model thread");
        id
    });
    JoinHandle { id, slot }
}

/// Scoped spawn surface mirroring `std::thread::scope`. `Copy` so it can
/// be handed to the body closure by value — pending-thread bookkeeping
/// lives in the runtime, keyed by scope id, which sidesteps the lifetime
/// invariance of `std::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    sid: usize,
}

pub struct ScopedJoinHandle<T> {
    id: usize,
    sid: usize,
    slot: ValueSlot<T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let slot: ValueSlot<T> = Arc::new(Mutex::new(None));
        let id = rt::with_ctx(|exec, me| {
            let id = exec.register_thread(me);
            exec.scope_track(self.sid, id);
            let exec = Arc::clone(exec);
            let slot = Arc::clone(&slot);
            std::thread::Builder::new()
                .name(format!("loom-{id}"))
                .spawn_scoped(self.std, move || run_wrapped(&exec, id, &slot, f))
                .expect("spawn scoped loom model thread");
            id
        });
        ScopedJoinHandle {
            id,
            sid: self.sid,
            slot,
        }
    }
}

impl<T> ScopedJoinHandle<T> {
    pub fn join(self) -> Result<T, PanicPayload> {
        rt::with_ctx(|exec, me| {
            exec.scope_consume(self.sid, self.id);
            collect_join(exec, me, self.id, &self.slot)
        })
    }
}

/// `std::thread::scope` analogue: joins all scoped model threads before
/// returning and, matching std's contract, propagates a panic from any
/// scoped thread that was not explicitly joined (after the scope body's
/// own panic, which takes precedence).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
{
    let sid = rt::with_ctx(|exec, _| exec.scope_open());
    std::thread::scope(|std_scope| {
        let body = panic::catch_unwind(AssertUnwindSafe(|| {
            f(Scope {
                std: std_scope,
                sid,
            })
        }));
        // Model-join every thread the body did not consume, so the OS-level
        // joins inside `std::thread::scope` cannot block outside the model.
        let mut escaped: Option<PanicPayload> = None;
        rt::with_ctx(|exec, me| {
            for id in exec.scope_drain(sid) {
                exec.join_thread(me, id);
                if let Some(payload) = exec.take_panic_payload(id) {
                    escaped.get_or_insert(payload);
                }
            }
        });
        match body {
            Err(body_panic) => panic::resume_unwind(body_panic),
            Ok(v) => {
                if let Some(payload) = escaped {
                    panic::resume_unwind(payload);
                }
                v
            }
        }
    })
}
