//! Offline stand-in for the `loom` model checker.
//!
//! The build container has no route to a crates registry (see
//! `vendor/README.md`), so this crate reimplements the slice of loom's API
//! the workspace needs: `loom::model`, `loom::thread::{spawn, scope,
//! yield_now}`, `loom::sync::Mutex`, and `loom::sync::atomic::*`.
//!
//! # What it checks
//!
//! [`model`] runs a closure once per *schedule* — an interleaving of the
//! closure's threads at visible-operation granularity, plus a choice of
//! which coherent store each atomic load observes. Schedules are explored
//! depth-first over a decision trace, in a branch order randomized by a
//! seed, and bounded by an iteration budget (`Builder::max_iterations`,
//! env `BDA_LOOM_MAX_ITER`): small spaces are enumerated exhaustively
//! (`Stats::exhausted`), larger ones are sampled deterministically.
//!
//! The memory model tracks per-atomic modification order, vector clocks,
//! release/acquire synchronization (including RMW release-sequence
//! continuation), read coherence, and an approximated `SeqCst` order —
//! enough to catch lost updates, double-claims, and missed-release
//! publication bugs. See `vendor/README.md` for fidelity notes.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let h = loom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     h.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2); // holds on every schedule
//! });
//! ```

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{model, Builder, Stats};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Mutex;
    use super::{model, Builder};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// The checker must fully enumerate a two-thread interleaving space.
    #[test]
    fn exhausts_small_space() {
        let stats = model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let h = crate::thread::spawn(move || x2.store(1, Ordering::Release));
            let _ = x.load(Ordering::Acquire);
            h.join().unwrap();
        });
        assert!(stats.exhausted, "tiny space must be enumerated");
        assert!(stats.iterations >= 2, "both orderings must be visited");
    }

    /// fetch_add is atomic: two concurrent increments always sum.
    #[test]
    fn rmw_increments_never_lose_updates() {
        let stats = model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let h = crate::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            h.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        assert!(stats.exhausted);
    }

    /// A load/yield/store "increment" is racy: the checker must find the
    /// schedule in which one update is lost.
    #[test]
    fn detects_lost_update_from_racy_increment() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let bump = |a: &AtomicUsize| {
                    let v = a.load(Ordering::Relaxed);
                    crate::thread::yield_now();
                    a.store(v + 1, Ordering::Relaxed);
                };
                let h = crate::thread::spawn(move || bump(&n2));
                bump(&n);
                h.join().unwrap();
                assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
            });
        }));
        assert!(result.is_err(), "the racy increment must be caught");
    }

    /// Message passing with release/acquire: the data write must be
    /// visible whenever the flag is observed set, on every schedule.
    #[test]
    fn release_acquire_publication_passes() {
        let stats = model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = crate::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            h.join().unwrap();
        });
        assert!(stats.exhausted);
    }

    /// The same pattern with a relaxed flag store (a missed release) must
    /// be caught: some schedule lets the reader see the flag without the
    /// data.
    #[test]
    fn detects_missed_release_publication() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let data = Arc::new(AtomicUsize::new(0));
                let flag = Arc::new(AtomicUsize::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let h = crate::thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    f2.store(1, Ordering::Relaxed); // BUG: no release edge
                });
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
                }
                h.join().unwrap();
            });
        }));
        assert!(result.is_err(), "missed-release publication must be caught");
    }

    /// Release-sequence continuation: a relaxed RMW between the release
    /// store and the acquire load must not break synchronization.
    #[test]
    fn rmw_continues_release_sequence() {
        let stats = model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = crate::thread::spawn(move || {
                d2.store(7, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
                f2.fetch_add(1, Ordering::Relaxed); // continues the sequence
            });
            if flag.load(Ordering::Acquire) == 2 {
                assert_eq!(data.load(Ordering::Relaxed), 7);
            }
            h.join().unwrap();
        });
        assert!(stats.exhausted);
    }

    /// Classic AB/BA lock ordering: the checker must find the deadlock.
    #[test]
    fn detects_abba_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let a = Arc::new(Mutex::new(0u32));
                let b = Arc::new(Mutex::new(0u32));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = crate::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_gb, _ga));
                h.join().unwrap();
            });
        }));
        let err = result.expect_err("AB/BA ordering must deadlock on some schedule");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "failure message was: {msg}");
    }

    /// Mutexes serialize: concurrent guarded increments never race.
    #[test]
    fn mutex_guards_serialize() {
        let stats = model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&n);
            let h = crate::thread::spawn(move || {
                *n2.lock().unwrap() += 1;
            });
            *n.lock().unwrap() += 1;
            h.join().unwrap();
            assert_eq!(*n.lock().unwrap(), 2);
        });
        assert!(stats.exhausted);
    }

    /// A panic in a spawned thread surfaces through its join handle, and
    /// the mutex it held is poisoned.
    #[test]
    fn panic_flows_through_join_and_poisons() {
        model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = crate::thread::spawn(move || {
                let _g = m2.lock().unwrap();
                panic!("worker bug");
            });
            assert!(h.join().is_err(), "panic must reach the join handle");
            assert!(m.lock().is_err(), "mutex must be poisoned");
        });
    }

    /// Scoped threads borrow from the enclosing stack, exactly like
    /// `std::thread::scope`.
    #[test]
    fn scope_borrows_like_std() {
        let stats = model(|| {
            let n = AtomicUsize::new(0);
            crate::thread::scope(|s| {
                s.spawn(|| n.fetch_add(1, Ordering::Relaxed));
                s.spawn(|| n.fetch_add(1, Ordering::Relaxed));
            });
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        assert!(stats.iterations >= 2);
    }

    /// An unjoined scoped thread's panic propagates at scope exit (std
    /// contract), so user code can catch it around the scope.
    #[test]
    fn scope_propagates_worker_panic() {
        model(|| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                crate::thread::scope(|s| {
                    s.spawn(|| panic!("scoped worker bug"));
                });
            }));
            assert!(r.is_err(), "scope exit must propagate the panic");
        });
    }

    /// The budget bounds exploration and reports non-exhaustion honestly.
    #[test]
    fn budget_bounds_exploration() {
        let stats = Builder {
            max_iterations: 3,
            ..Builder::default()
        }
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..3 {
                let n2 = Arc::clone(&n);
                handles.push(crate::thread::spawn(move || {
                    n2.fetch_add(1, Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(stats.iterations, 3);
        assert!(!stats.exhausted);
    }

    /// Different seeds explore in different orders but agree on the size
    /// of an exhaustively enumerated space.
    #[test]
    fn seeds_agree_on_exhaustive_size() {
        let run = |seed: u64| {
            Builder {
                seed,
                ..Builder::default()
            }
            .check(|| {
                let x = Arc::new(AtomicUsize::new(0));
                let x2 = Arc::clone(&x);
                let h = crate::thread::spawn(move || x2.store(1, Ordering::Release));
                let _ = x.load(Ordering::Acquire);
                h.join().unwrap();
            })
        };
        let a = run(1);
        let b = run(0xdead_beef);
        assert!(a.exhausted && b.exhausted);
        assert_eq!(a.iterations, b.iterations);
    }
}
