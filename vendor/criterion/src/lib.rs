//! Offline stand-in for the `criterion` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This harness runs each
//! benchmark a small fixed number of timed iterations and prints
//! mean/min/max — enough to compare alternatives in the ablation benches,
//! without criterion's statistics, warm-up scheduling, or HTML reports.

use std::time::Instant;

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark label, `group/function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Per-iteration timer handed to the bench closure.
pub struct Bencher {
    iters: u64,
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

pub struct Criterion {
    /// Iterations per bench (criterion's sample_size analogue).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.into().label, self.sample_size, None, f);
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, self.throughput, f);
    }

    pub fn finish(self) {}
}

fn run_bench(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        // Keep stub bench runs short: a handful of iterations is enough for
        // the coarse mean this harness reports.
        iters: sample_size.min(10) as u64,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!("  {:7.1} MiB/s", bytes as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(k)) => format!("  {:7.0} elem/s", k as f64 / mean),
        None => String::new(),
    };
    println!(
        "{label:<60} mean {:>10.3} ms  [{:.3} .. {:.3}]{extra}",
        mean * 1e3,
        min * 1e3,
        max * 1e3
    );
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut hits = 0;
        g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits >= 3);
    }
}
