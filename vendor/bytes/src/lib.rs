//! Offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). This crate reproduces the
//! subset of `bytes` v1 the workspace uses: cheaply-cloneable immutable
//! [`Bytes`] (Arc-backed with offset/length views for `slice`), growable
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of `range` within this buffer, sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Self::from_static(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. All multi-byte getters panic when the
/// source is exhausted, matching the real crate's contract.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn buf_roundtrip_all_widths() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(7);
        m.put_u16(513);
        m.put_u64(1 << 40);
        m.put_f32_le(1.5);
        m.put_f64_le(-2.25);
        let b = m.freeze();
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 513);
        assert_eq!(cur.get_u64(), 1 << 40);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_advance_as_buf() {
        let mut b = Bytes::from(vec![9u8, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
    }
}
