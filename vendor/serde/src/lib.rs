//! Offline stand-in for the `serde` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `vendor/README.md`). The workspace only uses
//! serde to *derive* `Serialize`/`Deserialize` on config/record structs; no
//! code path serializes at runtime. The traits are therefore empty markers
//! and the derives (re-exported from the vendored `serde_derive`) expand to
//! nothing.

/// Marker trait; the vendored derive is a no-op.
pub trait Serialize {}

/// Marker trait; the vendored derive is a no-op.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
