//! # bda — Big Data Assimilation in Rust
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch
//! reproduction of *"Big Data Assimilation: Real-time 30-second-refresh Heavy
//! Rain Forecast Using Fugaku during Tokyo Olympics and Paralympics"*
//! (Miyoshi et al., SC '23).
//!
//! Start with [`core`] for the high-level [`core::osse`] harness and the
//! paper's configuration tables, or run `cargo run --example quickstart`.

pub use bda_core as core;
pub use bda_grid as grid;
pub use bda_io as io;
pub use bda_jitdt as jitdt;
pub use bda_letkf as letkf;
pub use bda_num as num;
pub use bda_pawr as pawr;
pub use bda_scale as scale;
pub use bda_serve as serve;
pub use bda_shard as shard;
pub use bda_verify as verify;
pub use bda_workflow as workflow;
